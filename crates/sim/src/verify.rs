//! Structural validation of completed traces.
//!
//! The engine's accounting is also checked by property tests, but exposing
//! a validator lets downstream users (custom rate models, hand-built
//! schedules) assert the same invariants over their own runs.

use crate::{GpuId, SimTrace, StreamKind, TaskId, Workload};
use std::fmt;

/// Absolute slack allowed on every floating-point comparison.
const EPS: f64 = 1e-9;

/// One violated trace invariant.
///
/// Every task-level variant carries the record index (`task.index()`) in
/// addition to the label, so violations stay unambiguous even when a
/// workload reuses labels (e.g. one `all_gather` per layer per micro-step).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A record ends before it starts.
    EndBeforeStart {
        /// The offending task (its index is `task.index()`).
        task: TaskId,
        /// The task's label.
        label: String,
    },
    /// A record ends after the trace's makespan.
    EndsAfterMakespan {
        /// The offending task.
        task: TaskId,
        /// The task's label.
        label: String,
        /// When the task ended, seconds.
        end_s: f64,
        /// The trace makespan, seconds.
        makespan_s: f64,
    },
    /// A record's co-active time exceeds its wall-clock duration.
    CoactiveExceedsDuration {
        /// The offending task.
        task: TaskId,
        /// The task's label.
        label: String,
    },
    /// A task started before one of its explicit dependencies ended.
    DependencyOrder {
        /// The offending task.
        task: TaskId,
        /// The task's label.
        label: String,
        /// The dependency that had not finished.
        dep: TaskId,
        /// The dependency's label.
        dep_label: String,
        /// When the task started, seconds.
        start_s: f64,
        /// When the dependency ended, seconds.
        dep_end_s: f64,
    },
    /// Two tasks sharing a `(device, stream)` queue ran overlapped.
    QueueOverlap {
        /// The device whose queue was violated.
        gpu: GpuId,
        /// The stream whose queue was violated.
        stream: StreamKind,
        /// The later-pushed task that overlaps.
        task: TaskId,
        /// Its label.
        label: String,
        /// The earlier-pushed task it overlaps with.
        predecessor: TaskId,
        /// The predecessor's label.
        predecessor_label: String,
    },
    /// Two tasks sharing a `(device, stream)` queue ran out of push (FIFO)
    /// order: a later-pushed task started strictly before an earlier one.
    ///
    /// Distinct from [`Violation::QueueOverlap`]: an inverted pair need not
    /// overlap at all, and after an inversion the naive "previous end"
    /// bookkeeping would regress, masking real overlaps — so order is
    /// checked explicitly, with ties (equal starts, e.g. zero-duration
    /// tasks) treated as FIFO-consistent.
    QueueOrder {
        /// The device whose queue was violated.
        gpu: GpuId,
        /// The stream whose queue was violated.
        stream: StreamKind,
        /// The later-pushed task that started early.
        task: TaskId,
        /// Its label.
        label: String,
        /// The earlier-pushed task that started after it.
        predecessor: TaskId,
        /// The predecessor's label.
        predecessor_label: String,
    },
    /// A device with a non-empty timeline has no power segments.
    MissingPowerTrace {
        /// The device.
        gpu: GpuId,
    },
    /// A device's power trace does not start at time zero.
    PowerTraceStart {
        /// The device.
        gpu: GpuId,
        /// Where the first segment actually starts, seconds.
        start_s: f64,
    },
    /// Consecutive power segments leave a gap (or overlap backwards).
    PowerTraceGap {
        /// The device.
        gpu: GpuId,
        /// Where the discontinuity sits, seconds.
        at_s: f64,
    },
    /// A device's power trace does not end at the makespan.
    PowerTraceEnd {
        /// The device.
        gpu: GpuId,
        /// Where the last segment ends, seconds.
        end_s: f64,
        /// The trace makespan, seconds.
        makespan_s: f64,
    },
    /// A power segment carries a non-finite or negative draw, or a
    /// negative-duration window.
    InvalidPowerSegment {
        /// The device.
        gpu: GpuId,
        /// Index of the segment within the device's trace.
        segment: usize,
        /// The recorded draw, watts.
        watts: f64,
    },
    /// A device's power segments do not tile `[0, makespan)` exactly once:
    /// the summed segment durations disagree with the makespan, so the
    /// trace's energy integral (`energy == average_power × makespan`) is
    /// inconsistent.
    EnergyInconsistent {
        /// The device.
        gpu: GpuId,
        /// Sum of segment durations, seconds.
        covered_s: f64,
        /// The trace makespan, seconds.
        makespan_s: f64,
    },
}

impl Violation {
    /// The task this violation is about, when it is task-scoped.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            Violation::EndBeforeStart { task, .. }
            | Violation::EndsAfterMakespan { task, .. }
            | Violation::CoactiveExceedsDuration { task, .. }
            | Violation::DependencyOrder { task, .. }
            | Violation::QueueOverlap { task, .. }
            | Violation::QueueOrder { task, .. } => Some(*task),
            _ => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EndBeforeStart { task, label } => {
                write!(f, "record {} '{label}': end before start", task.index())
            }
            Violation::EndsAfterMakespan {
                task,
                label,
                end_s,
                makespan_s,
            } => write!(
                f,
                "record {} '{label}': ends at {end_s} after makespan {makespan_s}",
                task.index()
            ),
            Violation::CoactiveExceedsDuration { task, label } => write!(
                f,
                "record {} '{label}': coactive exceeds duration",
                task.index()
            ),
            Violation::DependencyOrder {
                task,
                label,
                dep,
                dep_label,
                start_s,
                dep_end_s,
            } => write!(
                f,
                "record {} '{label}': starts at {start_s} before dependency record {} \
                 '{dep_label}' ends at {dep_end_s}",
                task.index(),
                dep.index()
            ),
            Violation::QueueOverlap {
                gpu,
                stream,
                task,
                label,
                predecessor,
                predecessor_label,
            } => write!(
                f,
                "{gpu}/{stream}: record {} '{label}' overlaps queue predecessor record {} \
                 '{predecessor_label}'",
                task.index(),
                predecessor.index()
            ),
            Violation::QueueOrder {
                gpu,
                stream,
                task,
                label,
                predecessor,
                predecessor_label,
            } => write!(
                f,
                "{gpu}/{stream}: record {} '{label}' started before earlier-pushed record {} \
                 '{predecessor_label}' (FIFO order violated)",
                task.index(),
                predecessor.index()
            ),
            Violation::MissingPowerTrace { gpu } => write!(f, "{gpu}: no power segments"),
            Violation::PowerTraceStart { gpu, start_s } => {
                write!(f, "{gpu}: power trace starts at {start_s}, not 0")
            }
            Violation::PowerTraceGap { gpu, at_s } => {
                write!(f, "{gpu}: power trace has a gap at {at_s}")
            }
            Violation::PowerTraceEnd {
                gpu,
                end_s,
                makespan_s,
            } => write!(
                f,
                "{gpu}: power trace ends at {end_s}, makespan {makespan_s}"
            ),
            Violation::InvalidPowerSegment {
                gpu,
                segment,
                watts,
            } => write!(f, "{gpu}: power segment {segment} is invalid ({watts} W)"),
            Violation::EnergyInconsistent {
                gpu,
                covered_s,
                makespan_s,
            } => write!(
                f,
                "{gpu}: power segments cover {covered_s} s of a {makespan_s} s makespan; \
                 energy integral is inconsistent"
            ),
        }
    }
}

/// Checks every structural invariant of a completed trace against its
/// workload. Returns the list of violations (empty = valid).
///
/// Invariants:
/// 1. every record has `start <= end <= makespan`;
/// 2. every dependency finishes before its dependent starts;
/// 3. tasks sharing a `(device, stream)` queue run without overlap, in
///    push (FIFO) order — order is checked explicitly, so inversions are
///    reported even when the inverted pair does not overlap and ties
///    (equal starts) stay FIFO-consistent;
/// 4. co-active time never exceeds task duration;
/// 5. per-device power segments are contiguous, span `[0, makespan)`,
///    carry finite non-negative draws, and tile the makespan exactly once
///    (so `energy_joules == average_power × makespan`).
pub fn verify_trace<P>(workload: &Workload<P>, trace: &SimTrace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let makespan = trace.makespan().as_secs();
    let records = trace.records();

    for rec in records {
        if rec.end.as_secs() < rec.start.as_secs() {
            violations.push(Violation::EndBeforeStart {
                task: rec.id,
                label: rec.label.clone(),
            });
        }
        if rec.end.as_secs() > makespan + EPS {
            violations.push(Violation::EndsAfterMakespan {
                task: rec.id,
                label: rec.label.clone(),
                end_s: rec.end.as_secs(),
                makespan_s: makespan,
            });
        }
        if rec.coactive.as_secs() > rec.duration().as_secs() + EPS {
            violations.push(Violation::CoactiveExceedsDuration {
                task: rec.id,
                label: rec.label.clone(),
            });
        }
    }

    for (i, spec) in workload.tasks().iter().enumerate() {
        let rec = &records[i];
        for dep in &spec.deps {
            let dep_rec = &records[dep.index()];
            if dep_rec.end.as_secs() > rec.start.as_secs() + EPS {
                violations.push(Violation::DependencyOrder {
                    task: rec.id,
                    label: rec.label.clone(),
                    dep: *dep,
                    dep_label: dep_rec.label.clone(),
                    start_s: rec.start.as_secs(),
                    dep_end_s: dep_rec.end.as_secs(),
                });
            }
        }
    }

    for g in 0..workload.n_gpus() {
        let gpu = GpuId(g as u16);
        for stream in StreamKind::ALL {
            // `max_end`/`holder` track the latest completion seen so far —
            // deliberately not "the previous task's end": after an order
            // inversion the previous task may end early, and resetting to
            // it would mask overlaps with the earlier long-runner.
            let mut max_end = 0.0f64;
            let mut holder: Option<TaskId> = None;
            let mut last_start = f64::NEG_INFINITY;
            let mut last_id: Option<TaskId> = None;
            for (i, spec) in workload.tasks().iter().enumerate() {
                if spec.stream != stream || !spec.participants.contains(&gpu) {
                    continue;
                }
                let rec = &records[i];
                let start = rec.start.as_secs();
                if let Some(prev) = holder {
                    if start < max_end - EPS {
                        violations.push(Violation::QueueOverlap {
                            gpu,
                            stream,
                            task: rec.id,
                            label: rec.label.clone(),
                            predecessor: prev,
                            predecessor_label: records[prev.index()].label.clone(),
                        });
                    }
                }
                if let Some(prev) = last_id {
                    if start < last_start - EPS {
                        violations.push(Violation::QueueOrder {
                            gpu,
                            stream,
                            task: rec.id,
                            label: rec.label.clone(),
                            predecessor: prev,
                            predecessor_label: records[prev.index()].label.clone(),
                        });
                    }
                }
                if rec.end.as_secs() > max_end {
                    max_end = rec.end.as_secs();
                    holder = Some(rec.id);
                }
                last_start = start;
                last_id = Some(rec.id);
            }
        }

        let segments = &trace.gpus()[g].power;
        if makespan > 0.0 {
            if segments.is_empty() {
                violations.push(Violation::MissingPowerTrace { gpu });
                continue;
            }
            if segments[0].window.start.as_secs().abs() > EPS {
                violations.push(Violation::PowerTraceStart {
                    gpu,
                    start_s: segments[0].window.start.as_secs(),
                });
            }
            for pair in segments.windows(2) {
                if (pair[0].window.end.as_secs() - pair[1].window.start.as_secs()).abs() > EPS {
                    violations.push(Violation::PowerTraceGap {
                        gpu,
                        at_s: pair[0].window.end.as_secs(),
                    });
                    break;
                }
            }
            let end = segments.last().expect("non-empty").window.end.as_secs();
            if (end - makespan).abs() > EPS {
                violations.push(Violation::PowerTraceEnd {
                    gpu,
                    end_s: end,
                    makespan_s: makespan,
                });
            }

            let mut covered = 0.0f64;
            for (si, seg) in segments.iter().enumerate() {
                let dt = seg.window.end.as_secs() - seg.window.start.as_secs();
                if !seg.watts.is_finite() || seg.watts < 0.0 || dt < -EPS {
                    violations.push(Violation::InvalidPowerSegment {
                        gpu,
                        segment: si,
                        watts: seg.watts,
                    });
                }
                covered += dt.max(0.0);
            }
            // Tolerance scales with the makespan: each comparison above
            // allows EPS of absolute slack per segment boundary.
            let slack = EPS * (segments.len() as f64 + 1.0) + EPS * makespan;
            if (covered - makespan).abs() > slack {
                violations.push(Violation::EnergyInconsistent {
                    gpu,
                    covered_s: covered,
                    makespan_s: makespan,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantRate, Engine, GpuId, TaskSpec};

    #[test]
    fn engine_output_always_validates() {
        let mut w = Workload::new(2);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()).after(a));
        w.push(TaskSpec::collective("ar", vec![GpuId(0), GpuId(1)], ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let violations = verify_trace(&w, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn empty_workload_validates() {
        let w = Workload::<()>::new(1);
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!(verify_trace(&w, &trace).is_empty());
    }

    #[test]
    fn violations_name_the_record_index() {
        // Duplicate labels must stay distinguishable through the index.
        let v = Violation::EndBeforeStart {
            task: crate::TaskId(7),
            label: "all_gather".into(),
        };
        assert_eq!(v.to_string(), "record 7 'all_gather': end before start");
        assert_eq!(v.task(), Some(crate::TaskId(7)));
    }

    #[test]
    fn display_is_implemented_for_every_variant() {
        let samples = [
            Violation::EndsAfterMakespan {
                task: crate::TaskId(1),
                label: "x".into(),
                end_s: 2.0,
                makespan_s: 1.0,
            },
            Violation::QueueOrder {
                gpu: GpuId(0),
                stream: crate::StreamKind::Comm,
                task: crate::TaskId(2),
                label: "b".into(),
                predecessor: crate::TaskId(1),
                predecessor_label: "a".into(),
            },
            Violation::EnergyInconsistent {
                gpu: GpuId(1),
                covered_s: 0.5,
                makespan_s: 1.0,
            },
        ];
        for v in samples {
            assert!(!v.to_string().is_empty());
            assert!(v.task().is_some() || matches!(v, Violation::EnergyInconsistent { .. }));
        }
    }
}
