//! Structural validation of completed traces.
//!
//! The engine's accounting is also checked by property tests, but exposing
//! a validator lets downstream users (custom rate models, hand-built
//! schedules) assert the same invariants over their own runs.

use crate::{SimTrace, StreamKind, Workload};

/// Checks every structural invariant of a completed trace against its
/// workload. Returns the list of violations (empty = valid).
///
/// Invariants:
/// 1. every record has `start <= end <= makespan`;
/// 2. every dependency finishes before its dependent starts;
/// 3. tasks sharing a `(device, stream)` queue run without overlap, in
///    push order;
/// 4. co-active time never exceeds task duration;
/// 5. per-device power segments are contiguous and span `[0, makespan)`.
pub fn verify_trace<P>(workload: &Workload<P>, trace: &SimTrace) -> Vec<String> {
    let mut violations = Vec::new();
    let makespan = trace.makespan().as_secs();
    let records = trace.records();
    const EPS: f64 = 1e-9;

    for rec in records {
        if rec.end.as_secs() < rec.start.as_secs() {
            violations.push(format!("{}: end before start", rec.label));
        }
        if rec.end.as_secs() > makespan + EPS {
            violations.push(format!("{}: ends after makespan", rec.label));
        }
        if rec.coactive.as_secs() > rec.duration().as_secs() + EPS {
            violations.push(format!("{}: coactive exceeds duration", rec.label));
        }
    }

    for (i, spec) in workload.tasks().iter().enumerate() {
        let rec = &records[i];
        for dep in &spec.deps {
            let dep_rec = &records[dep.index()];
            if dep_rec.end.as_secs() > rec.start.as_secs() + EPS {
                violations.push(format!(
                    "{}: starts at {} before dependency {} ends at {}",
                    rec.label, rec.start, dep_rec.label, dep_rec.end
                ));
            }
        }
    }

    for g in 0..workload.n_gpus() {
        for stream in StreamKind::ALL {
            let mut last_end = 0.0f64;
            let mut last_label = "";
            for (i, spec) in workload.tasks().iter().enumerate() {
                if spec.stream != stream || !spec.participants.iter().any(|p| p.index() == g) {
                    continue;
                }
                let rec = &records[i];
                if rec.start.as_secs() < last_end - EPS {
                    violations.push(format!(
                        "gpu{g}/{stream}: {} overlaps predecessor {}",
                        rec.label, last_label
                    ));
                }
                last_end = rec.end.as_secs();
                last_label = &rec.label;
            }
        }

        let segments = &trace.gpus()[g].power;
        if makespan > 0.0 {
            if segments.is_empty() {
                violations.push(format!("gpu{g}: no power segments"));
                continue;
            }
            if segments[0].window.start.as_secs().abs() > EPS {
                violations.push(format!("gpu{g}: power trace does not start at 0"));
            }
            for pair in segments.windows(2) {
                if (pair[0].window.end.as_secs() - pair[1].window.start.as_secs()).abs() > EPS {
                    violations.push(format!("gpu{g}: power trace has a gap"));
                    break;
                }
            }
            let end = segments.last().expect("non-empty").window.end.as_secs();
            if (end - makespan).abs() > EPS {
                violations.push(format!(
                    "gpu{g}: power trace ends at {end}, makespan {makespan}"
                ));
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantRate, Engine, GpuId, TaskSpec};

    #[test]
    fn engine_output_always_validates() {
        let mut w = Workload::new(2);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()).after(a));
        w.push(TaskSpec::collective("ar", vec![GpuId(0), GpuId(1)], ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let violations = verify_trace(&w, &trace);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn empty_workload_validates() {
        let w = Workload::<()>::new(1);
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!(verify_trace(&w, &trace).is_empty());
    }
}
