//! Task specifications and workload construction.

use crate::{GpuId, SimError, StreamKind, TaskId};

/// Specification of one task in a [`Workload`].
///
/// A task occupies the `stream` queue on every device in `participants`.
/// Single-participant tasks model kernels; multi-participant tasks model
/// collectives, which start only when they reach the head of every
/// participant's queue (rendezvous semantics, like NCCL).
#[derive(Debug, Clone)]
pub struct TaskSpec<P> {
    /// Human-readable label, carried into the trace.
    pub label: String,
    /// Devices this task occupies, deduplicated and sorted by [`Workload::push`].
    pub participants: Vec<GpuId>,
    /// The stream the task occupies on each participant.
    pub stream: StreamKind,
    /// Explicit dependencies in addition to stream ordering.
    pub deps: Vec<TaskId>,
    /// Opaque payload interpreted by the [`RateModel`](crate::RateModel).
    pub payload: P,
}

impl<P> TaskSpec<P> {
    /// Creates a task spec with no explicit dependencies.
    pub fn new(
        label: impl Into<String>,
        participants: Vec<GpuId>,
        stream: StreamKind,
        payload: P,
    ) -> Self {
        TaskSpec {
            label: label.into(),
            participants,
            stream,
            deps: Vec::new(),
            payload,
        }
    }

    /// Convenience constructor for a single-device compute task.
    pub fn compute(label: impl Into<String>, gpu: GpuId, payload: P) -> Self {
        Self::new(label, vec![gpu], StreamKind::Compute, payload)
    }

    /// Convenience constructor for a single-device communication task.
    pub fn comm(label: impl Into<String>, gpu: GpuId, payload: P) -> Self {
        Self::new(label, vec![gpu], StreamKind::Comm, payload)
    }

    /// Convenience constructor for a multi-device collective on the comm stream.
    pub fn collective(label: impl Into<String>, participants: Vec<GpuId>, payload: P) -> Self {
        Self::new(label, participants, StreamKind::Comm, payload)
    }

    /// Adds an explicit dependency and returns `self` for chaining.
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds several explicit dependencies and returns `self` for chaining.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// An ordered collection of tasks forming the DAG the engine executes.
///
/// Stream order is implied by push order: two tasks on the same
/// `(device, stream)` queue run in the order they were pushed, exactly like
/// kernels launched on a CUDA stream.
#[derive(Debug, Clone)]
pub struct Workload<P> {
    n_gpus: usize,
    tasks: Vec<TaskSpec<P>>,
}

impl<P> Workload<P> {
    /// Creates an empty workload for a node with `n_gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is zero.
    pub fn new(n_gpus: usize) -> Self {
        assert!(n_gpus > 0, "workload needs at least one device");
        Workload {
            n_gpus,
            tasks: Vec::new(),
        }
    }

    /// Number of devices in the node.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Number of tasks pushed so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task and returns its id.
    ///
    /// Participants are deduplicated and sorted. Dependencies may reference
    /// any task id already pushed; forward references are rejected at
    /// [`Engine::run`](crate::Engine::run) time.
    ///
    /// # Panics
    ///
    /// Panics if the task has no participants or references a device outside
    /// the node.
    pub fn push(&mut self, mut spec: TaskSpec<P>) -> TaskId {
        assert!(
            !spec.participants.is_empty(),
            "task {:?} has no participants",
            spec.label
        );
        spec.participants.sort_unstable();
        spec.participants.dedup();
        for gpu in &spec.participants {
            assert!(
                gpu.index() < self.n_gpus,
                "task {:?} references {} but the node has {} devices",
                spec.label,
                gpu,
                self.n_gpus
            );
        }
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        self.tasks.push(spec);
        id
    }

    /// The tasks in push order.
    pub fn tasks(&self) -> &[TaskSpec<P>] {
        &self.tasks
    }

    /// Looks up one task spec.
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec<P>> {
        self.tasks.get(id.index())
    }

    /// Validates structural invariants (dependency ids in range, no
    /// self-dependency). Called by the engine before running.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, task) in self.tasks.iter().enumerate() {
            for dep in &task.deps {
                if dep.index() >= self.tasks.len() {
                    return Err(SimError::UnknownDependency {
                        task: TaskId(i as u32),
                        dep: *dep,
                    });
                }
                if dep.index() == i {
                    return Err(SimError::SelfDependency {
                        task: TaskId(i as u32),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_ids() {
        let mut w = Workload::new(2);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        let b = w.push(TaskSpec::comm("b", GpuId(1), ()));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn participants_are_deduplicated_and_sorted() {
        let mut w = Workload::new(4);
        let id = w.push(TaskSpec::collective(
            "ar",
            vec![GpuId(3), GpuId(1), GpuId(3), GpuId(0)],
            (),
        ));
        let spec = w.get(id).unwrap();
        assert_eq!(spec.participants, vec![GpuId(0), GpuId(1), GpuId(3)]);
    }

    #[test]
    fn validate_rejects_unknown_and_self_dependencies() {
        let mut w = Workload::new(1);
        w.push(TaskSpec::compute("a", GpuId(0), ()).after(TaskId(5)));
        assert!(matches!(
            w.validate(),
            Err(SimError::UnknownDependency { .. })
        ));

        let mut w = Workload::new(1);
        w.push(TaskSpec::compute("a", GpuId(0), ()).after(TaskId(0)));
        assert!(matches!(w.validate(), Err(SimError::SelfDependency { .. })));
    }

    #[test]
    #[should_panic(expected = "references gpu2")]
    fn out_of_range_device_panics() {
        let mut w = Workload::new(2);
        w.push(TaskSpec::compute("a", GpuId(2), ()));
    }

    #[test]
    fn after_all_extends_dependencies() {
        let mut w = Workload::new(1);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        let b = w.push(TaskSpec::compute("b", GpuId(0), ()));
        let c = TaskSpec::compute("c", GpuId(0), ()).after_all([a, b]);
        assert_eq!(c.deps, vec![a, b]);
    }
}
