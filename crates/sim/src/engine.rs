//! The piecewise-fluid simulation loop.

use crate::obs::{EngineObserver, GpuCounters, NullObserver};
use crate::rate::{RateModel, RunningTask};
use crate::trace::{GpuActivity, PowerSegment, SimTrace, TaskRecord, Window};
use crate::{SimError, SimTime, StreamKind, TaskId, Workload};
use std::cell::RefCell;

/// Work fractions below this are considered complete (guards rounding).
const REMAINING_TOLERANCE: f64 = 1e-12;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Running,
    Done,
}

/// Reusable per-run scratch memory for the engine.
///
/// A cell simulation used to allocate a dozen vectors (dependency lists,
/// one `VecDeque` per device stream, status/progress arrays, per-epoch
/// scratch) and drop them all at the end of the run. An arena keeps those
/// buffers alive between runs: [`SimArena::reset`] rewinds lengths without
/// releasing capacity, so a steady-state sweep performs no per-cell
/// allocations for engine bookkeeping at all (the returned [`SimTrace`]
/// still owns its records).
///
/// The dependency graph and the per-(device, stream) FIFO queues are stored
/// in CSR form (offset table + one flat array); queue contents never change
/// during a run — only a head cursor advances — so "pop front" is an index
/// increment instead of a `VecDeque` rotation.
///
/// [`Engine::run`] and [`Engine::run_observed`] draw an arena from a
/// thread-local pool automatically; [`Engine::run_in`] takes an explicit
/// arena for callers (benchmarks, allocation tests) that want to control
/// reuse.
#[derive(Debug, Default)]
pub struct SimArena {
    /// Unsatisfied dependency count per task.
    deps_left: Vec<u32>,
    /// CSR offsets into `dep_edges`: task `i`'s dependents occupy
    /// `dep_edges[dep_off[i]..dep_off[i + 1]]`.
    dep_off: Vec<u32>,
    dep_edges: Vec<TaskId>,
    /// Fill cursors while building `dep_edges` (dead after setup).
    dep_cursor: Vec<u32>,
    /// CSR offsets into `queue_tasks`: queue `q` occupies
    /// `queue_tasks[queue_off[q]..queue_off[q + 1]]` in push order.
    queue_off: Vec<u32>,
    queue_tasks: Vec<TaskId>,
    /// Absolute index of each queue's current head in `queue_tasks`.
    queue_head: Vec<u32>,
    status: Vec<Status>,
    remaining: Vec<f64>,
    start: Vec<SimTime>,
    end: Vec<SimTime>,
    coactive: Vec<SimTime>,
    running: Vec<TaskId>,
    rates: Vec<f64>,
    power: Vec<f64>,
    counters: Vec<GpuCounters>,
    stream_busy: Vec<[bool; 2]>,
}

impl SimArena {
    /// An empty arena; buffers grow on first use and persist afterwards.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Rewinds every buffer for a workload of `n` tasks on `n_gpus`
    /// devices, building the CSR dependency and queue tables. Capacity from
    /// earlier runs is retained.
    fn reset<P>(&mut self, workload: &Workload<P>) {
        let n = workload.len();
        let n_gpus = workload.n_gpus();
        let n_queues = n_gpus * 2;
        let tasks = workload.tasks();

        let m = crate::metrics::sim_metrics();
        if self.dep_off.capacity() == 0 {
            m.arena_cold_resets.inc();
        } else {
            m.arena_warm_resets.inc();
        }

        self.deps_left.clear();
        self.deps_left.resize(n, 0);
        self.dep_off.clear();
        self.dep_off.resize(n + 1, 0);
        for (i, task) in tasks.iter().enumerate() {
            self.deps_left[i] = task.deps.len() as u32;
            for dep in &task.deps {
                self.dep_off[dep.index() + 1] += 1;
            }
        }
        for i in 0..n {
            self.dep_off[i + 1] += self.dep_off[i];
        }
        self.dep_cursor.clear();
        self.dep_cursor.extend_from_slice(&self.dep_off[..n]);
        self.dep_edges.clear();
        self.dep_edges.resize(self.dep_off[n] as usize, TaskId(0));
        for (i, task) in tasks.iter().enumerate() {
            for dep in &task.deps {
                let slot = &mut self.dep_cursor[dep.index()];
                self.dep_edges[*slot as usize] = TaskId(i as u32);
                *slot += 1;
            }
        }

        self.queue_off.clear();
        self.queue_off.resize(n_queues + 1, 0);
        for task in tasks {
            for gpu in &task.participants {
                self.queue_off[gpu.index() * 2 + task.stream.index() + 1] += 1;
            }
        }
        for q in 0..n_queues {
            self.queue_off[q + 1] += self.queue_off[q];
        }
        self.queue_head.clear();
        self.queue_head
            .extend_from_slice(&self.queue_off[..n_queues]);
        let mut cursor = std::mem::take(&mut self.dep_cursor);
        cursor.clear();
        cursor.extend_from_slice(&self.queue_off[..n_queues]);
        self.queue_tasks.clear();
        self.queue_tasks
            .resize(self.queue_off[n_queues] as usize, TaskId(0));
        for (i, task) in tasks.iter().enumerate() {
            for gpu in &task.participants {
                let q = gpu.index() * 2 + task.stream.index();
                self.queue_tasks[cursor[q] as usize] = TaskId(i as u32);
                cursor[q] += 1;
            }
        }
        self.dep_cursor = cursor;

        self.status.clear();
        self.status.resize(n, Status::Pending);
        self.remaining.clear();
        self.remaining.resize(n, 1.0);
        self.start.clear();
        self.start.resize(n, SimTime::ZERO);
        self.end.clear();
        self.end.resize(n, SimTime::ZERO);
        self.coactive.clear();
        self.coactive.resize(n, SimTime::ZERO);
        self.running.clear();
        self.rates.clear();
        self.power.clear();
        self.counters.clear();
        self.stream_busy.clear();
        self.stream_busy.resize(n_gpus, [false; 2]);
    }
}

thread_local! {
    /// Per-thread arena backing [`Engine::run`] / [`Engine::run_observed`],
    /// so back-to-back cells on one worker reuse the same buffers.
    static SCRATCH: RefCell<SimArena> = RefCell::new(SimArena::new());
}

/// Executes a [`Workload`] under a [`RateModel`].
///
/// The engine is deterministic: identical workloads and models produce
/// identical traces. Each iteration of the main loop ("epoch") runs until the
/// earliest completion among running tasks — or, for time-varying models,
/// until the model's [`next_boundary`](RateModel::next_boundary) — so the
/// number of epochs is bounded by the number of tasks plus the number of
/// distinct model boundaries.
#[derive(Debug)]
pub struct Engine<M> {
    model: M,
}

impl<M: RateModel> Engine<M> {
    /// Creates an engine driving the given rate model.
    pub fn new(model: M) -> Self {
        Engine { model }
    }

    /// Consumes the engine, returning the rate model (useful when the model
    /// accumulates state across a run).
    pub fn into_model(self) -> M {
        self.model
    }

    /// Runs the workload to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if tasks remain but none can start,
    /// [`SimError::UnknownDependency`]/[`SimError::SelfDependency`] for
    /// malformed DAGs, and [`SimError::InvalidRate`]/[`SimError::InvalidPower`]
    /// if the rate model misbehaves.
    pub fn run(&mut self, workload: &Workload<M::Payload>) -> Result<SimTrace, SimError> {
        self.run_observed(workload, &mut NullObserver)
    }

    /// Runs the workload to completion using an explicit [`SimArena`].
    ///
    /// Identical to [`run`](Engine::run) except the caller controls scratch
    /// reuse — benchmarks and allocation tests use this to compare cold
    /// (fresh arena each run) against warm (one arena across runs) cost.
    ///
    /// # Errors
    ///
    /// As for [`run`](Engine::run).
    pub fn run_in(
        &mut self,
        workload: &Workload<M::Payload>,
        arena: &mut SimArena,
    ) -> Result<SimTrace, SimError> {
        self.run_observed_in(workload, &mut NullObserver, arena)
    }

    /// Runs the workload to completion, driving `obs` through every task
    /// start/end and epoch (see [`EngineObserver`]).
    ///
    /// [`run`](Engine::run) is this with the [`NullObserver`], whose
    /// `ENABLED = false` compiles the instrumentation away — observed and
    /// unobserved runs produce identical traces.
    ///
    /// # Errors
    ///
    /// As for [`run`](Engine::run).
    pub fn run_observed<O: EngineObserver>(
        &mut self,
        workload: &Workload<M::Payload>,
        obs: &mut O,
    ) -> Result<SimTrace, SimError> {
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut arena) => self.run_observed_in(workload, obs, &mut arena),
            // A rate model or observer that itself runs an engine would find
            // the thread-local arena busy; give the nested run a fresh one.
            Err(_) => self.run_observed_in(workload, obs, &mut SimArena::new()),
        })
    }

    /// [`run_observed`](Engine::run_observed) with an explicit [`SimArena`].
    ///
    /// # Errors
    ///
    /// As for [`run`](Engine::run).
    pub fn run_observed_in<O: EngineObserver>(
        &mut self,
        workload: &Workload<M::Payload>,
        obs: &mut O,
        arena: &mut SimArena,
    ) -> Result<SimTrace, SimError> {
        workload.validate()?;

        let n = workload.len();
        let n_gpus = workload.n_gpus();
        let n_queues = n_gpus * 2;
        let tasks = workload.tasks();

        arena.reset(workload);
        let SimArena {
            deps_left,
            dep_off,
            dep_edges,
            queue_off,
            queue_tasks,
            queue_head,
            status,
            remaining,
            start,
            end,
            coactive,
            running,
            rates,
            power,
            counters,
            stream_busy,
            ..
        } = arena;

        let mut gpus: Vec<GpuActivity> = vec![GpuActivity::default(); n_gpus];
        // Task views borrow the workload, so they cannot live in the arena;
        // one allocation per run, cleared and rebuilt each epoch.
        let mut views: Vec<RunningTask<'_, M::Payload>> = Vec::with_capacity(n);

        let mut now = SimTime::ZERO;
        let mut done = 0usize;

        while done < n {
            // Promote every task that is at the head of all its queues with
            // satisfied dependencies.
            let mut promoted = true;
            while promoted {
                promoted = false;
                for q in 0..n_queues {
                    let head_at = queue_head[q];
                    if head_at >= queue_off[q + 1] {
                        continue;
                    }
                    let head = queue_tasks[head_at as usize];
                    if status[head.index()] != Status::Pending || deps_left[head.index()] != 0 {
                        continue;
                    }
                    let spec = &tasks[head.index()];
                    let ready = spec.participants.iter().all(|g| {
                        let pq = g.index() * 2 + spec.stream.index();
                        let at = queue_head[pq];
                        at < queue_off[pq + 1] && queue_tasks[at as usize] == head
                    });
                    if ready {
                        status[head.index()] = Status::Running;
                        start[head.index()] = now;
                        running.push(head);
                        promoted = true;
                        if O::ENABLED {
                            obs.on_task_start(
                                now.as_secs(),
                                head,
                                &spec.label,
                                &spec.participants,
                                spec.stream,
                            );
                        }
                    }
                }
            }
            running.sort_unstable();

            if running.is_empty() {
                let stuck: Vec<TaskId> = (0..n)
                    .filter(|&i| status[i] != Status::Done)
                    .map(|i| TaskId(i as u32))
                    .collect();
                return Err(SimError::Deadlock { at: now, stuck });
            }

            // Ask the model for rates and power.
            views.clear();
            views.extend(running.iter().map(|&id| {
                let spec = &tasks[id.index()];
                RunningTask {
                    id,
                    label: &spec.label,
                    participants: &spec.participants,
                    stream: spec.stream,
                    remaining: remaining[id.index()],
                    payload: &spec.payload,
                }
            }));
            rates.clear();
            rates.resize(running.len(), 0.0);
            power.clear();
            power.resize(n_gpus, 0.0);
            self.model
                .assign_rates_at(now.as_secs(), &views, rates, power);

            for (i, &rate) in rates.iter().enumerate() {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(SimError::InvalidRate {
                        task: running[i],
                        rate,
                    });
                }
            }
            for (g, &watts) in power.iter().enumerate() {
                if !(watts.is_finite() && watts >= 0.0) {
                    return Err(SimError::InvalidPower { gpu: g, watts });
                }
            }

            // Advance to the earliest completion.
            let mut dt = f64::INFINITY;
            let mut argmin = 0usize;
            for (i, &id) in running.iter().enumerate() {
                let t = remaining[id.index()] / rates[i];
                if t < dt {
                    dt = t;
                    argmin = i;
                }
            }
            debug_assert!(dt.is_finite());

            // A time-varying model may change rates before the earliest
            // completion; clamp the epoch to the model's next boundary and
            // re-solve there instead of retiring anything. Boundaries at or
            // before `now` (within floating-point slack) are stale and
            // ignored, which keeps a model that repeats an old boundary from
            // stalling the loop.
            let mut completes = true;
            if let Some(boundary) = self.model.next_boundary(now.as_secs()) {
                let until = boundary - now.as_secs();
                let eps = 1e-12f64.max(now.as_secs() * 1e-12);
                if until > eps && until < dt {
                    dt = until;
                    completes = false;
                }
            }

            // Per-device stream occupancy during this epoch.
            for busy in stream_busy.iter_mut() {
                *busy = [false; 2];
            }
            for &id in running.iter() {
                let spec = &tasks[id.index()];
                for gpu in &spec.participants {
                    stream_busy[gpu.index()][spec.stream.index()] = true;
                }
            }

            let epoch = SimTime::from_secs(dt);
            let epoch_end = now + epoch;

            if O::ENABLED {
                counters.clear();
                for (g, &watts) in power.iter().enumerate() {
                    let mut c = self.model.counters(g);
                    c.power_w = watts;
                    counters.push(c);
                }
                obs.on_epoch(now.as_secs(), epoch_end.as_secs(), counters);
            }

            for (g, busy) in stream_busy.iter().enumerate() {
                for s in StreamKind::ALL {
                    if busy[s.index()] {
                        gpus[g].busy[s.index()] += epoch;
                    }
                }
                if busy[0] && busy[1] {
                    push_window(&mut gpus[g].overlap_windows, now, epoch_end);
                }
                push_power(&mut gpus[g].power, now, epoch_end, power[g]);
            }

            for (i, &id) in running.iter().enumerate() {
                let spec = &tasks[id.index()];
                let other_busy = spec
                    .participants
                    .iter()
                    .any(|g| stream_busy[g.index()][spec.stream.other().index()]);
                if other_busy {
                    coactive[id.index()] += epoch;
                }
                remaining[id.index()] = (remaining[id.index()] - rates[i] * dt).max(0.0);
                if completes && i == argmin {
                    remaining[id.index()] = 0.0;
                }
            }

            now = epoch_end;

            // Retire completed tasks in place (`retain` visits in order and
            // compacts without allocating).
            running.retain(|&id| {
                if remaining[id.index()] > REMAINING_TOLERANCE {
                    return true;
                }
                status[id.index()] = Status::Done;
                end[id.index()] = now;
                done += 1;
                let spec = &tasks[id.index()];
                if O::ENABLED {
                    obs.on_task_end(
                        now.as_secs(),
                        id,
                        &spec.label,
                        &spec.participants,
                        spec.stream,
                    );
                }
                for gpu in &spec.participants {
                    let q = gpu.index() * 2 + spec.stream.index();
                    debug_assert_eq!(queue_tasks[queue_head[q] as usize], id);
                    queue_head[q] += 1;
                }
                let lo = dep_off[id.index()] as usize;
                let hi = dep_off[id.index() + 1] as usize;
                for dep in &dep_edges[lo..hi] {
                    deps_left[dep.index()] -= 1;
                }
                false
            });
        }

        let records = (0..n)
            .map(|i| {
                let spec = &tasks[i];
                TaskRecord {
                    id: TaskId(i as u32),
                    label: spec.label.clone(),
                    participants: spec.participants.clone(),
                    stream: spec.stream,
                    start: start[i],
                    end: end[i],
                    coactive: coactive[i],
                }
            })
            .collect();

        crate::metrics::sim_metrics().engine_runs.inc();
        Ok(SimTrace::new(records, gpus, now))
    }
}

/// Appends `[start, end)` to the window list, merging with the previous
/// window when contiguous.
fn push_window(windows: &mut Vec<Window>, start: SimTime, end: SimTime) {
    if let Some(last) = windows.last_mut() {
        if (last.end.as_secs() - start.as_secs()).abs() < 1e-12 {
            last.end = end;
            return;
        }
    }
    windows.push(Window { start, end });
}

/// Appends a power segment, merging with the previous segment when the draw
/// is identical and the windows are contiguous.
fn push_power(segments: &mut Vec<PowerSegment>, start: SimTime, end: SimTime, watts: f64) {
    if let Some(last) = segments.last_mut() {
        let contiguous = (last.window.end.as_secs() - start.as_secs()).abs() < 1e-12;
        if contiguous && (last.watts - watts).abs() < 1e-9 {
            last.window.end = end;
            return;
        }
    }
    segments.push(PowerSegment {
        window: Window { start, end },
        watts,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::ConstantRate;
    use crate::{GpuId, TaskSpec};

    fn unit_workload() -> Workload<()> {
        Workload::new(2)
    }

    #[test]
    fn empty_workload_completes_immediately() {
        let trace = Engine::new(ConstantRate::default())
            .run(&unit_workload())
            .unwrap();
        assert_eq!(trace.makespan(), SimTime::ZERO);
        assert!(trace.records().is_empty());
    }

    #[test]
    fn stream_order_serializes_same_stream_tasks() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::compute("b", GpuId(0), ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!((trace.makespan().as_secs() - 2.0).abs() < 1e-9);
        let a = trace.record(TaskId(0)).unwrap();
        let b = trace.record(TaskId(1)).unwrap();
        assert!(b.start >= a.end);
    }

    #[test]
    fn different_streams_run_concurrently_and_count_coactive_time() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("k", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!((trace.makespan().as_secs() - 1.0).abs() < 1e-9);
        for record in trace.records() {
            assert!((record.coactive.as_secs() - 1.0).abs() < 1e-9);
        }
        assert!((trace.gpu(GpuId(0)).overlap_time().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tasks_on_different_gpus_run_concurrently() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::compute("b", GpuId(1), ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!((trace.makespan().as_secs() - 1.0).abs() < 1e-9);
        // Different devices: no co-activity.
        assert_eq!(trace.records()[0].coactive, SimTime::ZERO);
    }

    #[test]
    fn dependencies_are_honored_across_streams() {
        let mut w = unit_workload();
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()).after(a));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        assert!((trace.makespan().as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(trace.gpu(GpuId(0)).overlap_time(), SimTime::ZERO);
    }

    #[test]
    fn collective_rendezvous_waits_for_all_ranks() {
        let mut w = unit_workload();
        // gpu0 computes 2 tasks before reaching the collective; gpu1 none.
        let a = w.push(TaskSpec::compute("a0", GpuId(0), ()));
        let b = w.push(TaskSpec::compute("a1", GpuId(0), ()).after(a));
        let ar = w.push(TaskSpec::collective("ar", vec![GpuId(0), GpuId(1)], ()).after(b));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let rec = trace.record(ar).unwrap();
        assert!((rec.start.as_secs() - 2.0).abs() < 1e-9);
        assert!((trace.makespan().as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_cycle_is_reported_as_deadlock() {
        let mut w = unit_workload();
        // b (id 1) depends on c (id 2); c depends on b via stream order is
        // not expressible, so use explicit forward dependency: a valid
        // workload where task 0 depends on task 1 and task 1 on task 0
        // cannot be built with `after` (ids are sequential), so emulate a
        // cross-stream deadlock instead: comm task first in queue waits on a
        // compute task that is behind another comm task.
        let mut c1 = TaskSpec::comm("c1", GpuId(0), ());
        c1.deps.push(TaskId(1)); // forward reference to k, pushed next
        w.push(c1);
        w.push(TaskSpec::compute("k", GpuId(0), ()).after(TaskId(2)));
        w.push(TaskSpec::comm("c2", GpuId(0), ()));
        // c2 is behind c1 in the comm queue; c1 waits on k; k waits on c2.
        let err = Engine::new(ConstantRate::default()).run(&w).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn invalid_rate_is_reported() {
        struct Broken;
        impl RateModel for Broken {
            type Payload = ();
            fn assign_rates(
                &mut self,
                _running: &[RunningTask<'_, ()>],
                _rates: &mut [f64],
                _power: &mut [f64],
            ) {
                // leaves rates at 0.0
            }
        }
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        let err = Engine::new(Broken).run(&w).unwrap_err();
        assert!(matches!(err, SimError::InvalidRate { rate, .. } if rate == 0.0));
    }

    /// Rate 1.0 before `switch_at`, `late_rate` after; boundary reported at
    /// `switch_at`. Exercises the fault-injection hook points.
    struct SteppedRate {
        switch_at: f64,
        late_rate: f64,
    }

    impl RateModel for SteppedRate {
        type Payload = ();
        fn assign_rates(
            &mut self,
            _running: &[RunningTask<'_, ()>],
            _rates: &mut [f64],
            _power: &mut [f64],
        ) {
            unreachable!("engine must call assign_rates_at");
        }
        fn assign_rates_at(
            &mut self,
            now: f64,
            running: &[RunningTask<'_, ()>],
            rates: &mut [f64],
            _power: &mut [f64],
        ) {
            let rate = if now < self.switch_at {
                1.0
            } else {
                self.late_rate
            };
            for r in rates.iter_mut().take(running.len()) {
                *r = rate;
            }
        }
        fn next_boundary(&mut self, now: f64) -> Option<f64> {
            (now < self.switch_at).then_some(self.switch_at)
        }
    }

    #[test]
    fn model_boundary_splits_the_epoch_and_rates_are_requeried() {
        // One 1.0-unit task: rate 1.0 until t=0.4 (0.4 done), then rate 0.5
        // for the remaining 0.6 units -> finishes at 0.4 + 1.2 = 1.6 s.
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        let trace = Engine::new(SteppedRate {
            switch_at: 0.4,
            late_rate: 0.5,
        })
        .run(&w)
        .unwrap();
        assert!((trace.makespan().as_secs() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn boundary_beyond_completion_does_not_delay_retirement() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        let trace = Engine::new(SteppedRate {
            switch_at: 10.0,
            late_rate: 0.5,
        })
        .run(&w)
        .unwrap();
        assert!((trace.makespan().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stale_boundaries_are_ignored() {
        // Always reports a boundary at t=0; after the first epoch that is in
        // the past and must not stall the loop or block retirement.
        struct Stale;
        impl RateModel for Stale {
            type Payload = ();
            fn assign_rates(
                &mut self,
                running: &[RunningTask<'_, ()>],
                rates: &mut [f64],
                _power: &mut [f64],
            ) {
                for r in rates.iter_mut().take(running.len()) {
                    *r = 1.0;
                }
            }
            fn next_boundary(&mut self, _now: f64) -> Option<f64> {
                Some(0.0)
            }
        }
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::compute("b", GpuId(0), ()));
        let trace = Engine::new(Stale).run(&w).unwrap();
        assert!((trace.makespan().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_segments_cover_the_busy_span_and_merge() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::compute("b", GpuId(0), ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let segs = &trace.gpu(GpuId(0)).power;
        assert_eq!(segs.len(), 1, "equal-power contiguous segments merge");
        assert!((segs[0].window.end.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(segs[0].watts, 100.0);
    }

    #[derive(Default)]
    struct Recording {
        events: Vec<String>,
        epoch_s: f64,
        epochs: usize,
    }

    impl crate::EngineObserver for Recording {
        fn on_task_start(
            &mut self,
            now_s: f64,
            _id: TaskId,
            label: &str,
            _participants: &[GpuId],
            _stream: StreamKind,
        ) {
            self.events.push(format!("start {label} @{now_s}"));
        }
        fn on_task_end(
            &mut self,
            now_s: f64,
            _id: TaskId,
            label: &str,
            _participants: &[GpuId],
            _stream: StreamKind,
        ) {
            self.events.push(format!("end {label} @{now_s}"));
        }
        fn on_epoch(&mut self, start_s: f64, end_s: f64, counters: &[crate::GpuCounters]) {
            assert_eq!(counters.len(), 2, "one counter set per device");
            self.epoch_s += end_s - start_s;
            self.epochs += 1;
        }
    }

    #[test]
    fn observer_sees_task_edges_and_epochs_covering_the_makespan() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::compute("b", GpuId(0), ()));
        let mut obs = Recording::default();
        let trace = Engine::new(ConstantRate::default())
            .run_observed(&w, &mut obs)
            .unwrap();
        assert_eq!(
            obs.events,
            vec!["start a @0", "end a @1", "start b @1", "end b @2"]
        );
        assert!((obs.epoch_s - trace.makespan().as_secs()).abs() < 1e-9);
        assert_eq!(obs.epochs, 2);
    }

    #[test]
    fn observed_and_unobserved_runs_produce_identical_traces() {
        let mut w = unit_workload();
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()).after(a));
        w.push(TaskSpec::compute("b", GpuId(1), ()));
        let plain = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let mut obs = Recording::default();
        let observed = Engine::new(ConstantRate::default())
            .run_observed(&w, &mut obs)
            .unwrap();
        assert_eq!(plain.makespan(), observed.makespan());
        assert_eq!(plain.records().len(), observed.records().len());
        for (p, o) in plain.records().iter().zip(observed.records()) {
            assert_eq!(p.start, o.start);
            assert_eq!(p.end, o.end);
        }
        // Epoch counters carry the engine's power and the model default
        // clock, so the observer's integral matches the trace's.
        assert!(obs.epochs > 0);
    }

    #[test]
    fn busy_time_accumulates_per_stream() {
        let mut w = unit_workload();
        w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let activity = trace.gpu(GpuId(0));
        assert!((activity.busy_time(StreamKind::Compute).as_secs() - 1.0).abs() < 1e-9);
        assert!((activity.busy_time(StreamKind::Comm).as_secs() - 1.0).abs() < 1e-9);
    }
}
