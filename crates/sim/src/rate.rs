//! The rate-model trait: where domain physics plugs into the engine.

use crate::{GpuCounters, GpuId, StreamKind, TaskId};

/// A view of one currently-running task handed to the [`RateModel`].
#[derive(Debug)]
pub struct RunningTask<'a, P> {
    /// The task's id.
    pub id: TaskId,
    /// The task's label.
    pub label: &'a str,
    /// Devices the task occupies.
    pub participants: &'a [GpuId],
    /// The stream it occupies on each device.
    pub stream: StreamKind,
    /// Fraction of the task still to be done, in `(0, 1]`.
    pub remaining: f64,
    /// The opaque payload.
    pub payload: &'a P,
}

/// Supplies execution rates and instantaneous power for running tasks.
///
/// The engine calls [`assign_rates`](RateModel::assign_rates) every time the
/// set of running tasks changes (an *epoch boundary*). Within an epoch, rates
/// and power are constant — the simulation is piecewise-fluid.
///
/// Implementations express contention by inspecting the whole running set:
/// e.g. if a communication task shares a device with a compute kernel, the
/// model may hand the kernel a lower rate than it would get alone, and report
/// a higher device power. This is exactly the mechanism the overlap-lab
/// harness uses to model the paper's SM/bandwidth/power contention.
pub trait RateModel {
    /// Payload type the model can interpret.
    type Payload;

    /// Assigns a rate to every running task and a power draw to every device.
    ///
    /// * `rates[i]` must be set to the progress rate of `running[i]` in
    ///   fraction-of-task per second; values must be finite and positive.
    /// * `power[g]` must be set to the instantaneous draw of device `g` in
    ///   watts (devices with no running task should report idle power).
    ///
    /// Both slices arrive zero-filled (`rates.len() == running.len()`,
    /// `power.len() == n_gpus`).
    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Self::Payload>],
        rates: &mut [f64],
        power: &mut [f64],
    );

    /// Time-aware variant of [`assign_rates`](RateModel::assign_rates).
    ///
    /// `now` is the simulation time at the start of the epoch, in seconds.
    /// Models whose physics depend on wall-clock position (fault windows,
    /// scheduled throttles) override this; the default ignores `now` and
    /// delegates, so stationary models need not change.
    fn assign_rates_at(
        &mut self,
        now: f64,
        running: &[RunningTask<'_, Self::Payload>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        let _ = now;
        self.assign_rates(running, rates, power)
    }

    /// The next instant strictly after `now` at which this model's rates
    /// change for a reason *other than* a task completing (a fault window
    /// opening or closing, a watchdog deadline, ...).
    ///
    /// The engine clamps each epoch to the earlier of the next task
    /// completion and this boundary, re-querying rates at the boundary so a
    /// piecewise-constant external timeline is honored exactly. Stationary
    /// models keep the default `None`. Boundaries at or before `now` are
    /// ignored by the engine, so returning a stale boundary is safe (but
    /// each *distinct* boundary must eventually advance, or the model set is
    /// malformed).
    fn next_boundary(&mut self, now: f64) -> Option<f64> {
        let _ = now;
        None
    }

    /// Telemetry counters for device `gpu` over the epoch whose rates were
    /// just assigned — what a simulated NVML poll would read during that
    /// epoch (SM occupancy, HBM/link utilization, clock factor).
    ///
    /// The engine queries this only for observed runs, after
    /// [`assign_rates_at`](RateModel::assign_rates_at), and overwrites
    /// [`GpuCounters::power_w`] with the power the model already reported.
    /// The default reports an idle device at nominal clock, so models
    /// without telemetry need not change.
    fn counters(&self, gpu: usize) -> GpuCounters {
        let _ = gpu;
        GpuCounters::default()
    }
}

impl<M: RateModel + ?Sized> RateModel for &mut M {
    type Payload = M::Payload;

    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Self::Payload>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        (**self).assign_rates(running, rates, power)
    }

    fn assign_rates_at(
        &mut self,
        now: f64,
        running: &[RunningTask<'_, Self::Payload>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        (**self).assign_rates_at(now, running, rates, power)
    }

    fn next_boundary(&mut self, now: f64) -> Option<f64> {
        (**self).next_boundary(now)
    }

    fn counters(&self, gpu: usize) -> GpuCounters {
        (**self).counters(gpu)
    }
}

/// A trivial rate model: every task takes `duration_secs` seconds and every
/// device draws `busy_watts` while any task runs on it. Useful in tests.
#[derive(Debug, Clone, Copy)]
pub struct ConstantRate {
    /// Seconds each task takes when running.
    pub duration_secs: f64,
    /// Watts drawn by a device with at least one running task.
    pub busy_watts: f64,
}

impl Default for ConstantRate {
    fn default() -> Self {
        ConstantRate {
            duration_secs: 1.0,
            busy_watts: 100.0,
        }
    }
}

impl RateModel for ConstantRate {
    type Payload = ();

    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, ()>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        for (i, task) in running.iter().enumerate() {
            rates[i] = 1.0 / self.duration_secs;
            for gpu in task.participants {
                power[gpu.index()] = self.busy_watts;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_fills_rates_and_power() {
        let mut model = ConstantRate::default();
        let payload = ();
        let running = [RunningTask {
            id: TaskId(0),
            label: "k",
            participants: &[GpuId(1)],
            stream: StreamKind::Compute,
            remaining: 1.0,
            payload: &payload,
        }];
        let mut rates = [0.0];
        let mut power = [0.0, 0.0];
        model.assign_rates(&running, &mut rates, &mut power);
        assert_eq!(rates[0], 1.0);
        assert_eq!(power, [0.0, 100.0]);
    }
}
