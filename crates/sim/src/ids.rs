//! Identifier newtypes used across the simulation.

use std::fmt;

/// Identifies a GPU (device) in the simulated node.
///
/// Device indices are dense: a system with `n` GPUs uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u16);

impl GpuId {
    /// The id as a `usize` index, for indexing per-device arrays.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl From<u16> for GpuId {
    fn from(v: u16) -> Self {
        GpuId(v)
    }
}

/// Identifies a task within a [`Workload`](crate::Workload).
///
/// Ids are handed out sequentially by [`Workload::push`](crate::Workload::push).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// The two in-order execution queues of a device, mirroring the way
/// distributed-training frameworks dedicate one CUDA/HIP stream to compute
/// kernels and one to communication (NCCL/RCCL) kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKind {
    /// The compute stream (GEMMs, attention, normalization, optimizer, ...).
    Compute,
    /// The communication stream (collectives, point-to-point transfers).
    Comm,
}

impl StreamKind {
    /// All stream kinds, in index order.
    pub const ALL: [StreamKind; 2] = [StreamKind::Compute, StreamKind::Comm];

    /// Dense index of the stream kind (compute = 0, comm = 1).
    pub fn index(self) -> usize {
        match self {
            StreamKind::Compute => 0,
            StreamKind::Comm => 1,
        }
    }

    /// The other stream on the same device.
    pub fn other(self) -> StreamKind {
        match self {
            StreamKind::Compute => StreamKind::Comm,
            StreamKind::Comm => StreamKind::Compute,
        }
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamKind::Compute => write!(f, "compute"),
            StreamKind::Comm => write!(f, "comm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_id_round_trips_through_index() {
        assert_eq!(GpuId::from(3).index(), 3);
        assert_eq!(format!("{}", GpuId(7)), "gpu7");
    }

    #[test]
    fn stream_other_is_involutive() {
        for kind in StreamKind::ALL {
            assert_eq!(kind.other().other(), kind);
            assert_ne!(kind.other(), kind);
        }
    }

    #[test]
    fn stream_indices_are_dense() {
        assert_eq!(StreamKind::Compute.index(), 0);
        assert_eq!(StreamKind::Comm.index(), 1);
    }
}
