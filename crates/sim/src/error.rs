//! Engine error type.

use crate::{SimTime, TaskId};
use std::error::Error;
use std::fmt;

/// Errors produced while validating or running a [`Workload`](crate::Workload).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task depends on an id that does not exist in the workload.
    UnknownDependency {
        /// The task holding the bad edge.
        task: TaskId,
        /// The referenced id.
        dep: TaskId,
    },
    /// A task depends on itself.
    SelfDependency {
        /// The offending task.
        task: TaskId,
    },
    /// No task can make progress but tasks remain — a dependency cycle or a
    /// cross-stream ordering conflict (e.g. a collective behind a task that
    /// waits on the collective).
    Deadlock {
        /// Simulation time at which progress stopped.
        at: SimTime,
        /// Tasks that never completed.
        stuck: Vec<TaskId>,
    },
    /// The rate model assigned a non-positive or non-finite rate.
    InvalidRate {
        /// The task that received the invalid rate.
        task: TaskId,
        /// The rate value the model produced.
        rate: f64,
    },
    /// The rate model produced a negative or non-finite power reading.
    InvalidPower {
        /// Device index with the invalid reading.
        gpu: usize,
        /// The power value the model produced.
        watts: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDependency { task, dep } => {
                write!(f, "{task} depends on unknown {dep}")
            }
            SimError::SelfDependency { task } => write!(f, "{task} depends on itself"),
            SimError::Deadlock { at, stuck } => write!(
                f,
                "deadlock at {at}: {} task(s) can never start (first: {})",
                stuck.len(),
                stuck.first().map(|t| t.to_string()).unwrap_or_default()
            ),
            SimError::InvalidRate { task, rate } => {
                write!(f, "rate model produced invalid rate {rate} for {task}")
            }
            SimError::InvalidPower { gpu, watts } => {
                write!(
                    f,
                    "rate model produced invalid power {watts} W for gpu{gpu}"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::UnknownDependency {
            task: TaskId(1),
            dep: TaskId(9),
        };
        assert_eq!(e.to_string(), "task1 depends on unknown task9");

        let e = SimError::Deadlock {
            at: SimTime::from_secs(1.0),
            stuck: vec![TaskId(3), TaskId(4)],
        };
        assert!(e.to_string().contains("2 task(s)"));
        assert!(e.to_string().contains("task3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
