//! Critical-path analysis over completed traces.
//!
//! After a run, the makespan is determined by a chain of tasks linked by
//! dependency edges, stream (FIFO) order, and collective rendezvous. This
//! module reconstructs that chain and per-task slack — the first question a
//! scheduling engineer asks of a timeline ("what do I shorten to make the
//! iteration faster?").

use crate::{SimTrace, StreamKind, TaskId, Workload};

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// The task.
    pub id: TaskId,
    /// Its label (copied out of the trace).
    pub label: String,
    /// Its stream.
    pub stream: StreamKind,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
}

/// Result of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Tasks on the path, in execution order.
    pub steps: Vec<CriticalStep>,
    /// Total makespan, seconds.
    pub makespan_s: f64,
    /// Seconds of the path spent in communication tasks.
    pub comm_s: f64,
    /// Seconds of the path spent in compute tasks.
    pub compute_s: f64,
    /// Seconds of the path not covered by any task (rendezvous waits where
    /// the predecessor chain has gaps; ~0 on well-formed schedules).
    pub idle_s: f64,
}

impl CriticalPath {
    /// Fraction of the makespan attributable to communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.comm_s / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Reconstructs the critical path of a completed run.
///
/// Walks backwards from the task that finishes last: at each step the
/// predecessor is the latest-finishing task among (a) explicit
/// dependencies, (b) the previous task on each of the task's stream queues,
/// where "previous" is identified by matching end time to start time —
/// choosing whichever finished last and no later than the current task's
/// start.
pub fn critical_path<P>(workload: &Workload<P>, trace: &SimTrace) -> CriticalPath {
    let records = trace.records();
    if records.is_empty() {
        return CriticalPath {
            steps: Vec::new(),
            makespan_s: 0.0,
            comm_s: 0.0,
            compute_s: 0.0,
            idle_s: 0.0,
        };
    }

    let last = records
        .iter()
        .max_by(|a, b| a.end.as_secs().total_cmp(&b.end.as_secs()))
        .expect("non-empty trace");

    let mut steps_rev: Vec<CriticalStep> = Vec::new();
    let mut current = last.id;
    let mut guard = records.len() + 1;
    loop {
        let rec = &records[current.index()];
        steps_rev.push(CriticalStep {
            id: rec.id,
            label: rec.label.clone(),
            stream: rec.stream,
            duration_s: rec.duration().as_secs(),
        });
        guard -= 1;
        if guard == 0 {
            break;
        }

        let start = rec.start.as_secs();
        if start <= 1e-12 {
            break;
        }

        // Candidate predecessors: explicit deps + any task on a shared
        // queue that ends exactly when (or before) this one starts.
        let spec = &workload.tasks()[current.index()];
        let mut best: Option<TaskId> = None;
        let mut best_end = f64::NEG_INFINITY;
        let mut consider = |id: TaskId| {
            let end = records[id.index()].end.as_secs();
            if end <= start + 1e-12 && end > best_end {
                best_end = end;
                best = Some(id);
            }
        };
        for dep in &spec.deps {
            consider(*dep);
        }
        for other in records {
            if other.id == current {
                continue;
            }
            let other_spec = &workload.tasks()[other.id.index()];
            let shares_queue = other_spec.stream == spec.stream
                && other_spec
                    .participants
                    .iter()
                    .any(|g| spec.participants.contains(g));
            // Rendezvous: a collective also waits for each participant's
            // compute stream to release the head-of-queue slot.
            let blocks_rendezvous = spec.participants.len() > 1
                && other_spec
                    .participants
                    .iter()
                    .any(|g| spec.participants.contains(g));
            if shares_queue || blocks_rendezvous {
                consider(other.id);
            }
        }

        match best {
            Some(prev) => current = prev,
            None => break,
        }
    }

    steps_rev.reverse();
    let comm_s: f64 = steps_rev
        .iter()
        .filter(|s| s.stream == StreamKind::Comm)
        .map(|s| s.duration_s)
        .sum();
    let compute_s: f64 = steps_rev
        .iter()
        .filter(|s| s.stream == StreamKind::Compute)
        .map(|s| s.duration_s)
        .sum();
    let makespan_s = trace.makespan().as_secs();
    CriticalPath {
        steps: steps_rev,
        makespan_s,
        comm_s,
        compute_s,
        idle_s: (makespan_s - comm_s - compute_s).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantRate, Engine, GpuId, TaskSpec};

    #[test]
    fn chain_path_includes_every_task() {
        let mut w = Workload::new(1);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        let b = w.push(TaskSpec::compute("b", GpuId(0), ()).after(a));
        let _c = w.push(TaskSpec::comm("c", GpuId(0), ()).after(b));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let path = critical_path(&w, &trace);
        assert_eq!(path.steps.len(), 3);
        assert_eq!(path.steps[0].label, "a");
        assert_eq!(path.steps[2].label, "c");
        assert!((path.comm_s - 1.0).abs() < 1e-9);
        assert!((path.compute_s - 2.0).abs() < 1e-9);
        assert!(path.idle_s < 1e-9);
    }

    #[test]
    fn parallel_branches_pick_the_longer_one() {
        // gpu0 runs two tasks; gpu1 runs one; a collective joins them.
        let mut w = Workload::new(2);
        let a0 = w.push(TaskSpec::compute("a0", GpuId(0), ()));
        let a1 = w.push(TaskSpec::compute("a1", GpuId(0), ()).after(a0));
        let _b0 = w.push(TaskSpec::compute("b0", GpuId(1), ()));
        let _coll = w.push(TaskSpec::collective("coll", vec![GpuId(0), GpuId(1)], ()).after(a1));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let path = critical_path(&w, &trace);
        let labels: Vec<&str> = path.steps.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["a0", "a1", "coll"], "the gpu0 chain dominates");
        assert!((path.makespan_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn comm_fraction_reflects_path_composition() {
        let mut w = Workload::new(1);
        let a = w.push(TaskSpec::compute("a", GpuId(0), ()));
        w.push(TaskSpec::comm("c", GpuId(0), ()).after(a));
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let path = critical_path(&w, &trace);
        assert!((path.comm_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let w = Workload::<()>::new(1);
        let trace = Engine::new(ConstantRate::default()).run(&w).unwrap();
        let path = critical_path(&w, &trace);
        assert!(path.steps.is_empty());
        assert_eq!(path.makespan_s, 0.0);
    }
}
