//! Simulation clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point on (or span of) the simulation clock, in seconds.
///
/// `SimTime` is a thin newtype over `f64` seconds. The engine only ever moves
/// the clock forward by strictly positive amounts, so values are always finite
/// and non-negative in engine output.
///
/// ```rust
/// use olab_sim::SimTime;
/// let t = SimTime::from_millis(1.5) + SimTime::from_micros(500.0);
/// assert!((t.as_millis() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// This time expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This time expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// This time expressed in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Saturating difference `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.4} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.4} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_round_trip() {
        let t = SimTime::from_millis(250.0);
        assert!((t.as_secs() - 0.25).abs() < 1e-12);
        assert!((t.as_micros() - 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(1.0));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_accumulates() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert!((total.as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.5000 s");
        assert_eq!(format!("{}", SimTime::from_millis(1.5)), "1.5000 ms");
        assert_eq!(format!("{}", SimTime::from_micros(1.5)), "1.500 us");
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_time_is_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}
