//! Engine self-telemetry families owned by this crate.
//!
//! All families register together on first touch so an exposition always
//! contains the full set (zeros included) once the engine has been used —
//! or once [`touch`] was called — regardless of which code paths ran.

use olab_metrics::{counter, Counter, Determinism};
use std::sync::OnceLock;

pub(crate) struct SimMetrics {
    /// One per completed engine run: equals the number of simulated cells,
    /// identical between serial and parallel sweeps.
    pub engine_runs: &'static Counter,
    /// Arena resets that found buffers from an earlier run to reuse.
    /// Thread-count dependent: each worker warms its own scratch arena.
    pub arena_warm_resets: &'static Counter,
    /// Arena resets on a fresh (never-used) arena.
    pub arena_cold_resets: &'static Counter,
}

pub(crate) fn sim_metrics() -> &'static SimMetrics {
    static M: OnceLock<SimMetrics> = OnceLock::new();
    M.get_or_init(|| SimMetrics {
        engine_runs: counter(
            "olab_sim_engine_runs_total",
            Determinism::CrossRun,
            "Completed event-loop engine runs (one per simulated cell).",
        ),
        arena_warm_resets: counter(
            "olab_sim_arena_warm_resets_total",
            Determinism::Wall,
            "Arena resets that reused buffer capacity from an earlier run.",
        ),
        arena_cold_resets: counter(
            "olab_sim_arena_cold_resets_total",
            Determinism::Wall,
            "Arena resets on a fresh arena with no capacity to reuse.",
        ),
    })
}

/// Forces registration of this crate's metric families so expositions are
/// complete even before (or without) any engine run.
pub fn touch() {
    let _ = sim_metrics();
}
