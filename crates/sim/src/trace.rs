//! Simulation output: task records, power segments, overlap windows.

use crate::{GpuId, SimTime, StreamKind, TaskId};

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
}

impl Window {
    /// Duration of the window.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Constant power draw of one device over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// The window the reading covers.
    pub window: Window,
    /// Instantaneous draw in watts, constant over the window.
    pub watts: f64,
}

/// Completion record for one task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The task's id.
    pub id: TaskId,
    /// The task's label.
    pub label: String,
    /// Devices the task occupied.
    pub participants: Vec<GpuId>,
    /// The stream it occupied.
    pub stream: StreamKind,
    /// When the task started running.
    pub start: SimTime,
    /// When the task completed.
    pub end: SimTime,
    /// Time during which, on at least one shared device, a task of the
    /// *other* stream was simultaneously running. For compute tasks this is
    /// the "overlapped with communication" time of the paper's Eq. (2).
    pub coactive: SimTime,
}

impl TaskRecord {
    /// Wall-clock duration of the task.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Per-device activity summary.
#[derive(Debug, Clone, Default)]
pub struct GpuActivity {
    /// Piecewise-constant power trace (contiguous, covering `[0, makespan)`).
    pub power: Vec<PowerSegment>,
    /// Windows during which both streams were simultaneously busy.
    pub overlap_windows: Vec<Window>,
    /// Total busy time per stream (indexed by [`StreamKind::index`]).
    pub busy: [SimTime; 2],
}

impl GpuActivity {
    /// Total busy time of a stream on this device.
    pub fn busy_time(&self, stream: StreamKind) -> SimTime {
        self.busy[stream.index()]
    }

    /// Total time both streams were busy simultaneously.
    pub fn overlap_time(&self) -> SimTime {
        self.overlap_windows.iter().map(|w| w.duration()).sum()
    }

    /// Mean power over `[0, horizon)`, counting idle gaps at their recorded
    /// power. Returns 0 for an empty trace.
    pub fn average_power(&self) -> f64 {
        let mut energy = 0.0;
        let mut span = 0.0;
        for seg in &self.power {
            let dt = seg.window.duration().as_secs();
            energy += seg.watts * dt;
            span += dt;
        }
        if span > 0.0 {
            energy / span
        } else {
            0.0
        }
    }

    /// Total energy in joules over the trace.
    pub fn energy_joules(&self) -> f64 {
        self.power
            .iter()
            .map(|seg| seg.watts * seg.window.duration().as_secs())
            .sum()
    }
}

/// Full output of one engine run.
#[derive(Debug, Clone)]
pub struct SimTrace {
    records: Vec<TaskRecord>,
    gpus: Vec<GpuActivity>,
    makespan: SimTime,
}

impl SimTrace {
    pub(crate) fn new(records: Vec<TaskRecord>, gpus: Vec<GpuActivity>, makespan: SimTime) -> Self {
        SimTrace {
            records,
            gpus,
            makespan,
        }
    }

    /// Assembles a trace from externally computed parts.
    ///
    /// This exists for analytic schedulers that derive the same quantities
    /// the engine would record without running the event loop; the result is
    /// indistinguishable from an engine-produced trace and should satisfy
    /// [`verify_trace`](crate::verify::verify_trace) for the same workload.
    pub fn from_parts(records: Vec<TaskRecord>, gpus: Vec<GpuActivity>, makespan: SimTime) -> Self {
        SimTrace::new(records, gpus, makespan)
    }

    /// Completion records in task-id order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Record of one task.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Per-device activity, indexed by device.
    pub fn gpus(&self) -> &[GpuActivity] {
        &self.gpus
    }

    /// Activity of one device.
    pub fn gpu(&self, gpu: GpuId) -> &GpuActivity {
        &self.gpus[gpu.index()]
    }

    /// Time at which the last task completed.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Sum of task durations on a given stream across all devices,
    /// counting a multi-device task once per participant.
    pub fn stream_time(&self, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| {
                let d = r.duration().as_secs() * r.participants.len() as f64;
                SimTime::from_secs(d)
            })
            .sum()
    }

    /// Sum of per-task durations on a stream for one device.
    pub fn stream_time_on(&self, gpu: GpuId, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.participants.contains(&gpu))
            .map(|r| r.duration())
            .sum()
    }

    /// Sum of co-active time for tasks of a stream on one device.
    pub fn coactive_time_on(&self, gpu: GpuId, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.participants.contains(&gpu))
            .map(|r| r.coactive)
            .sum()
    }

    /// The trace clipped to `[0, at)`: records starting at or after `at`
    /// are dropped, records straddling the cut are clamped (co-active time
    /// is clamped to the clipped duration), power segments and overlap
    /// windows are clipped, and per-stream busy time is recomputed from the
    /// clipped records.
    ///
    /// This is the first half of a mid-run regime transition: a run that
    /// stops making useful progress at `at` (a fatal fault, an elastic
    /// shrink) keeps exactly the activity it completed before the cut.
    pub fn truncated(&self, at: SimTime) -> SimTrace {
        let cut = at.min(self.makespan);
        let records: Vec<TaskRecord> = self
            .records
            .iter()
            .filter(|r| r.start < cut)
            .map(|r| {
                let end = r.end.min(cut);
                let duration = end - r.start;
                TaskRecord {
                    id: r.id,
                    label: r.label.clone(),
                    participants: r.participants.clone(),
                    stream: r.stream,
                    start: r.start,
                    end,
                    coactive: r.coactive.min(duration),
                }
            })
            .collect();
        let gpus: Vec<GpuActivity> = self
            .gpus
            .iter()
            .enumerate()
            .map(|(g, activity)| {
                let gpu = GpuId(g as u16);
                let power = activity
                    .power
                    .iter()
                    .filter(|seg| seg.window.start < cut)
                    .map(|seg| PowerSegment {
                        window: Window {
                            start: seg.window.start,
                            end: seg.window.end.min(cut),
                        },
                        watts: seg.watts,
                    })
                    .collect();
                let overlap_windows = activity
                    .overlap_windows
                    .iter()
                    .filter(|w| w.start < cut)
                    .map(|w| Window {
                        start: w.start,
                        end: w.end.min(cut),
                    })
                    .collect();
                let busy_of = |stream: StreamKind| {
                    records
                        .iter()
                        .filter(|r| r.stream == stream && r.participants.contains(&gpu))
                        .map(|r| r.duration())
                        .sum()
                };
                GpuActivity {
                    power,
                    overlap_windows,
                    busy: [busy_of(StreamKind::Compute), busy_of(StreamKind::Comm)],
                }
            })
            .collect();
        SimTrace {
            records,
            gpus,
            makespan: cut,
        }
    }

    /// Composes this trace with a `later` trace separated by an idle `gap`
    /// (a recovery epoch: checkpoint restore, communicator rebuild, state
    /// re-shard). The later trace — possibly over a *different* device
    /// count, the mid-run world-size transition — is shifted to start at
    /// `makespan + gap`; devices present here but absent from the later
    /// phase (evicted ranks) draw `gap_watts` until the stitched trace
    /// ends. The gap itself is priced at `gap_watts` on every device, and
    /// later-phase task ids are renumbered past this trace's ids.
    pub fn then(&self, gap: SimTime, gap_watts: f64, later: &SimTrace) -> SimTrace {
        let offset = self.makespan + gap;
        let id_base = self
            .records
            .iter()
            .map(|r| r.id.0 + 1)
            .max()
            .unwrap_or_default();
        let mut records = self.records.clone();
        records.extend(later.records.iter().map(|r| TaskRecord {
            id: TaskId(r.id.0 + id_base),
            label: r.label.clone(),
            participants: r.participants.clone(),
            stream: r.stream,
            start: r.start + offset,
            end: r.end + offset,
            coactive: r.coactive,
        }));
        let makespan = offset + later.makespan;
        let n_gpus = self.gpus.len().max(later.gpus.len());
        let empty = GpuActivity::default();
        let gpus: Vec<GpuActivity> = (0..n_gpus)
            .map(|g| {
                let first = self.gpus.get(g).unwrap_or(&empty);
                let second = later.gpus.get(g);
                let mut power = first.power.clone();
                let gap_end = match second {
                    Some(_) => offset,
                    // An evicted rank stays parked at `gap_watts` for the
                    // rest of the stitched run.
                    None => makespan,
                };
                if gap_end > self.makespan {
                    power.push(PowerSegment {
                        window: Window {
                            start: self.makespan,
                            end: gap_end,
                        },
                        watts: gap_watts,
                    });
                }
                let mut overlap_windows = first.overlap_windows.clone();
                let mut busy = first.busy;
                if let Some(act) = second {
                    power.extend(act.power.iter().map(|seg| PowerSegment {
                        window: Window {
                            start: seg.window.start + offset,
                            end: seg.window.end + offset,
                        },
                        watts: seg.watts,
                    }));
                    overlap_windows.extend(act.overlap_windows.iter().map(|w| Window {
                        start: w.start + offset,
                        end: w.end + offset,
                    }));
                    busy = [busy[0] + act.busy[0], busy[1] + act.busy[1]];
                }
                GpuActivity {
                    power,
                    overlap_windows,
                    busy,
                }
            })
            .collect();
        SimTrace {
            records,
            gpus,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(a: f64, b: f64) -> Window {
        Window {
            start: SimTime::from_secs(a),
            end: SimTime::from_secs(b),
        }
    }

    #[test]
    fn activity_statistics() {
        let activity = GpuActivity {
            power: vec![
                PowerSegment {
                    window: window(0.0, 1.0),
                    watts: 100.0,
                },
                PowerSegment {
                    window: window(1.0, 3.0),
                    watts: 400.0,
                },
            ],
            overlap_windows: vec![window(0.5, 1.5)],
            busy: [SimTime::from_secs(3.0), SimTime::from_secs(1.0)],
        };
        assert!((activity.average_power() - 300.0).abs() < 1e-9);
        assert!((activity.energy_joules() - 900.0).abs() < 1e-9);
        assert!((activity.overlap_time().as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(
            activity.busy_time(StreamKind::Comm),
            SimTime::from_secs(1.0)
        );
    }

    #[test]
    fn empty_activity_average_power_is_zero() {
        assert_eq!(GpuActivity::default().average_power(), 0.0);
    }

    fn two_phase_traces() -> (SimTrace, SimTrace) {
        let first = SimTrace::new(
            vec![
                TaskRecord {
                    id: TaskId(0),
                    label: "k0".into(),
                    participants: vec![GpuId(0)],
                    stream: StreamKind::Compute,
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(1.0),
                    coactive: SimTime::from_secs(0.5),
                },
                TaskRecord {
                    id: TaskId(1),
                    label: "ar".into(),
                    participants: vec![GpuId(0), GpuId(1)],
                    stream: StreamKind::Comm,
                    start: SimTime::from_secs(0.5),
                    end: SimTime::from_secs(2.0),
                    coactive: SimTime::from_secs(0.5),
                },
            ],
            vec![
                GpuActivity {
                    power: vec![PowerSegment {
                        window: window(0.0, 2.0),
                        watts: 300.0,
                    }],
                    overlap_windows: vec![window(0.5, 1.0)],
                    busy: [SimTime::from_secs(1.0), SimTime::from_secs(1.5)],
                },
                GpuActivity {
                    power: vec![PowerSegment {
                        window: window(0.0, 2.0),
                        watts: 200.0,
                    }],
                    overlap_windows: vec![],
                    busy: [SimTime::ZERO, SimTime::from_secs(1.5)],
                },
            ],
            SimTime::from_secs(2.0),
        );
        let second = SimTrace::new(
            vec![TaskRecord {
                id: TaskId(0),
                label: "k1".into(),
                participants: vec![GpuId(0)],
                stream: StreamKind::Compute,
                start: SimTime::ZERO,
                end: SimTime::from_secs(1.0),
                coactive: SimTime::ZERO,
            }],
            vec![GpuActivity {
                power: vec![PowerSegment {
                    window: window(0.0, 1.0),
                    watts: 250.0,
                }],
                overlap_windows: vec![],
                busy: [SimTime::from_secs(1.0), SimTime::ZERO],
            }],
            SimTime::from_secs(1.0),
        );
        (first, second)
    }

    #[test]
    fn truncation_clips_records_power_and_busy_time() {
        let (trace, _) = two_phase_traces();
        let cut = trace.truncated(SimTime::from_secs(1.0));
        assert_eq!(cut.makespan(), SimTime::from_secs(1.0));
        assert_eq!(cut.records().len(), 2);
        // The straddling collective is clamped, and its co-active time can
        // never exceed the clipped duration.
        let ar = cut.record(TaskId(1)).unwrap();
        assert_eq!(ar.end, SimTime::from_secs(1.0));
        assert_eq!(ar.coactive, SimTime::from_secs(0.5));
        assert_eq!(
            cut.gpu(GpuId(0)).power,
            vec![PowerSegment {
                window: window(0.0, 1.0),
                watts: 300.0
            }]
        );
        assert_eq!(
            cut.stream_time_on(GpuId(1), StreamKind::Comm),
            SimTime::from_secs(0.5)
        );
        assert_eq!(
            cut.gpu(GpuId(1)).busy_time(StreamKind::Comm),
            SimTime::from_secs(0.5)
        );
        // Truncating past the makespan is the identity on the horizon.
        assert_eq!(
            trace.truncated(SimTime::from_secs(10.0)).makespan(),
            trace.makespan()
        );
    }

    #[test]
    fn stitching_shifts_the_later_phase_and_prices_the_gap() {
        let (first, second) = two_phase_traces();
        let stitched = first.then(SimTime::from_secs(0.5), 60.0, &second);
        assert_eq!(stitched.makespan(), SimTime::from_secs(3.5));
        assert_eq!(stitched.records().len(), 3);
        // Later-phase ids are renumbered past the first phase's ids.
        let k1 = stitched.record(TaskId(2)).expect("renumbered");
        assert_eq!(k1.label, "k1");
        assert_eq!(k1.start, SimTime::from_secs(2.5));
        assert_eq!(k1.end, SimTime::from_secs(3.5));
        // The world shrank: gpu1 is parked at the gap draw to the end.
        assert_eq!(stitched.gpus().len(), 2);
        let parked = stitched.gpu(GpuId(1));
        assert_eq!(
            parked.power.last().unwrap(),
            &PowerSegment {
                window: window(2.0, 3.5),
                watts: 60.0
            }
        );
        // The survivor pays the gap, then resumes with the shifted phase.
        let survivor = stitched.gpu(GpuId(0));
        assert_eq!(
            survivor.power,
            vec![
                PowerSegment {
                    window: window(0.0, 2.0),
                    watts: 300.0
                },
                PowerSegment {
                    window: window(2.0, 2.5),
                    watts: 60.0
                },
                PowerSegment {
                    window: window(2.5, 3.5),
                    watts: 250.0
                },
            ]
        );
        assert_eq!(
            survivor.busy_time(StreamKind::Compute),
            SimTime::from_secs(2.0)
        );
        // Energy is conserved: both phases plus the priced gap.
        let expected = 300.0 * 2.0 + 60.0 * 0.5 + 250.0 * 1.0;
        assert!((survivor.energy_joules() - expected).abs() < 1e-9);
    }

    #[test]
    fn stream_time_counts_multi_device_tasks_per_participant() {
        let records = vec![TaskRecord {
            id: TaskId(0),
            label: "ar".into(),
            participants: vec![GpuId(0), GpuId(1)],
            stream: StreamKind::Comm,
            start: SimTime::ZERO,
            end: SimTime::from_secs(2.0),
            coactive: SimTime::ZERO,
        }];
        let trace = SimTrace::new(
            records,
            vec![GpuActivity::default(); 2],
            SimTime::from_secs(2.0),
        );
        assert!((trace.stream_time(StreamKind::Comm).as_secs() - 4.0).abs() < 1e-12);
        assert!((trace.stream_time_on(GpuId(0), StreamKind::Comm).as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(trace.stream_time(StreamKind::Compute), SimTime::ZERO);
    }
}
