//! Simulation output: task records, power segments, overlap windows.

use crate::{GpuId, SimTime, StreamKind, TaskId};

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
}

impl Window {
    /// Duration of the window.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Constant power draw of one device over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// The window the reading covers.
    pub window: Window,
    /// Instantaneous draw in watts, constant over the window.
    pub watts: f64,
}

/// Completion record for one task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The task's id.
    pub id: TaskId,
    /// The task's label.
    pub label: String,
    /// Devices the task occupied.
    pub participants: Vec<GpuId>,
    /// The stream it occupied.
    pub stream: StreamKind,
    /// When the task started running.
    pub start: SimTime,
    /// When the task completed.
    pub end: SimTime,
    /// Time during which, on at least one shared device, a task of the
    /// *other* stream was simultaneously running. For compute tasks this is
    /// the "overlapped with communication" time of the paper's Eq. (2).
    pub coactive: SimTime,
}

impl TaskRecord {
    /// Wall-clock duration of the task.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Per-device activity summary.
#[derive(Debug, Clone, Default)]
pub struct GpuActivity {
    /// Piecewise-constant power trace (contiguous, covering `[0, makespan)`).
    pub power: Vec<PowerSegment>,
    /// Windows during which both streams were simultaneously busy.
    pub overlap_windows: Vec<Window>,
    /// Total busy time per stream (indexed by [`StreamKind::index`]).
    pub busy: [SimTime; 2],
}

impl GpuActivity {
    /// Total busy time of a stream on this device.
    pub fn busy_time(&self, stream: StreamKind) -> SimTime {
        self.busy[stream.index()]
    }

    /// Total time both streams were busy simultaneously.
    pub fn overlap_time(&self) -> SimTime {
        self.overlap_windows.iter().map(|w| w.duration()).sum()
    }

    /// Mean power over `[0, horizon)`, counting idle gaps at their recorded
    /// power. Returns 0 for an empty trace.
    pub fn average_power(&self) -> f64 {
        let mut energy = 0.0;
        let mut span = 0.0;
        for seg in &self.power {
            let dt = seg.window.duration().as_secs();
            energy += seg.watts * dt;
            span += dt;
        }
        if span > 0.0 {
            energy / span
        } else {
            0.0
        }
    }

    /// Total energy in joules over the trace.
    pub fn energy_joules(&self) -> f64 {
        self.power
            .iter()
            .map(|seg| seg.watts * seg.window.duration().as_secs())
            .sum()
    }
}

/// Full output of one engine run.
#[derive(Debug, Clone)]
pub struct SimTrace {
    records: Vec<TaskRecord>,
    gpus: Vec<GpuActivity>,
    makespan: SimTime,
}

impl SimTrace {
    pub(crate) fn new(records: Vec<TaskRecord>, gpus: Vec<GpuActivity>, makespan: SimTime) -> Self {
        SimTrace {
            records,
            gpus,
            makespan,
        }
    }

    /// Completion records in task-id order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Record of one task.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Per-device activity, indexed by device.
    pub fn gpus(&self) -> &[GpuActivity] {
        &self.gpus
    }

    /// Activity of one device.
    pub fn gpu(&self, gpu: GpuId) -> &GpuActivity {
        &self.gpus[gpu.index()]
    }

    /// Time at which the last task completed.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Sum of task durations on a given stream across all devices,
    /// counting a multi-device task once per participant.
    pub fn stream_time(&self, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| {
                let d = r.duration().as_secs() * r.participants.len() as f64;
                SimTime::from_secs(d)
            })
            .sum()
    }

    /// Sum of per-task durations on a stream for one device.
    pub fn stream_time_on(&self, gpu: GpuId, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.participants.contains(&gpu))
            .map(|r| r.duration())
            .sum()
    }

    /// Sum of co-active time for tasks of a stream on one device.
    pub fn coactive_time_on(&self, gpu: GpuId, stream: StreamKind) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.stream == stream && r.participants.contains(&gpu))
            .map(|r| r.coactive)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(a: f64, b: f64) -> Window {
        Window {
            start: SimTime::from_secs(a),
            end: SimTime::from_secs(b),
        }
    }

    #[test]
    fn activity_statistics() {
        let activity = GpuActivity {
            power: vec![
                PowerSegment {
                    window: window(0.0, 1.0),
                    watts: 100.0,
                },
                PowerSegment {
                    window: window(1.0, 3.0),
                    watts: 400.0,
                },
            ],
            overlap_windows: vec![window(0.5, 1.5)],
            busy: [SimTime::from_secs(3.0), SimTime::from_secs(1.0)],
        };
        assert!((activity.average_power() - 300.0).abs() < 1e-9);
        assert!((activity.energy_joules() - 900.0).abs() < 1e-9);
        assert!((activity.overlap_time().as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(
            activity.busy_time(StreamKind::Comm),
            SimTime::from_secs(1.0)
        );
    }

    #[test]
    fn empty_activity_average_power_is_zero() {
        assert_eq!(GpuActivity::default().average_power(), 0.0);
    }

    #[test]
    fn stream_time_counts_multi_device_tasks_per_participant() {
        let records = vec![TaskRecord {
            id: TaskId(0),
            label: "ar".into(),
            participants: vec![GpuId(0), GpuId(1)],
            stream: StreamKind::Comm,
            start: SimTime::ZERO,
            end: SimTime::from_secs(2.0),
            coactive: SimTime::ZERO,
        }];
        let trace = SimTrace::new(
            records,
            vec![GpuActivity::default(); 2],
            SimTime::from_secs(2.0),
        );
        assert!((trace.stream_time(StreamKind::Comm).as_secs() - 4.0).abs() < 1e-12);
        assert!((trace.stream_time_on(GpuId(0), StreamKind::Comm).as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(trace.stream_time(StreamKind::Compute), SimTime::ZERO);
    }
}
