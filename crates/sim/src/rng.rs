//! A small, seedable, dependency-free PRNG for measurement-noise models.
//!
//! The harness needs reproducible run-to-run jitter (the paper's
//! average-over-25-runs methodology) but must build offline, so instead of
//! the external `rand` crate this module carries a self-contained
//! xoshiro256++ generator seeded through SplitMix64 — the same
//! construction `rand`'s 64-bit `SmallRng` uses. It is a *statistical*
//! generator: excellent equidistribution for noise modeling, explicitly
//! **not** cryptographic.

/// A seedable xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so nearby seeds (0, 1, 2…)
    /// still produce decorrelated streams — exactly the property jittered
    /// multi-run sweeps rely on when they seed runs `0..n`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SeededRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SeededRng::seed_from_u64(0);
        let mut b = SeededRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut rng = SeededRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn matches_reference_xoshiro256plusplus() {
        // First outputs of xoshiro256++ from the canonical state
        // {1, 2, 3, 4} (Blackman & Vigna's reference implementation).
        let mut rng = SeededRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }
}
