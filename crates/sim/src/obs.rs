//! Engine instrumentation: the observer hook the telemetry layer plugs
//! into.
//!
//! The engine drives an [`EngineObserver`] through every run: task
//! lifecycle edges (start/end) and one callback per epoch carrying the
//! piecewise-constant per-GPU counters the rate model reported for that
//! epoch. Observation is strictly pull-free and allocation-free on the
//! engine side: every callback borrows engine state, and the default
//! [`NullObserver`] sets [`EngineObserver::ENABLED`] to `false` so the
//! instrumentation compiles away entirely for unobserved runs.

use crate::{GpuId, StreamKind, TaskId};

/// Per-GPU telemetry counters for one engine epoch, as a simulated NVML
/// poll would see them: all values are held constant over the epoch.
///
/// Rate models report these through [`RateModel::counters`]
/// (`crate::RateModel`); models that do not override it report an idle
/// device. The engine overwrites [`power_w`](GpuCounters::power_w) with
/// the power it already collects, so the two never disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCounters {
    /// Fraction of SMs doing work (compute kernel plus any co-resident
    /// collective's channel kernels), in `[0, 1]`.
    pub sm_occupancy: f64,
    /// HBM bandwidth utilization, in `[0, 1]`.
    pub hbm_util: f64,
    /// Link/copy-engine utilization, in `[0, 1]`.
    pub link_util: f64,
    /// Core-clock factor selected by DVFS, in `(0, 1]`.
    pub freq_factor: f64,
    /// Instantaneous board power, watts.
    pub power_w: f64,
}

impl Default for GpuCounters {
    fn default() -> Self {
        GpuCounters {
            sm_occupancy: 0.0,
            hbm_util: 0.0,
            link_util: 0.0,
            freq_factor: 1.0,
            power_w: 0.0,
        }
    }
}

/// Receives engine instrumentation callbacks during a run.
///
/// All callbacks borrow engine state — an observer that wants to keep an
/// event must copy what it needs. Every method has an empty default, so
/// sinks implement only what they consume.
pub trait EngineObserver {
    /// Compile-time switch: when `false` (the [`NullObserver`]) the engine
    /// skips all instrumentation work, including assembling the per-epoch
    /// counter slice, so unobserved runs pay nothing.
    const ENABLED: bool = true;

    /// A task was promoted to running at `now_s`.
    fn on_task_start(
        &mut self,
        now_s: f64,
        id: TaskId,
        label: &str,
        participants: &[GpuId],
        stream: StreamKind,
    ) {
        let _ = (now_s, id, label, participants, stream);
    }

    /// A task retired at `now_s`.
    fn on_task_end(
        &mut self,
        now_s: f64,
        id: TaskId,
        label: &str,
        participants: &[GpuId],
        stream: StreamKind,
    ) {
        let _ = (now_s, id, label, participants, stream);
    }

    /// One engine epoch `[start_s, end_s)` elapsed with the given per-GPU
    /// counters (indexed by device) held constant throughout.
    fn on_epoch(&mut self, start_s: f64, end_s: f64, counters: &[GpuCounters]) {
        let _ = (start_s, end_s, counters);
    }
}

/// The do-nothing observer behind [`Engine::run`](crate::Engine::run):
/// `ENABLED = false` compiles every instrumentation point away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_counters_are_an_idle_device_at_nominal_clock() {
        let c = GpuCounters::default();
        assert_eq!(c.sm_occupancy, 0.0);
        assert_eq!(c.hbm_util, 0.0);
        assert_eq!(c.link_util, 0.0);
        assert_eq!(c.freq_factor, 1.0);
        assert_eq!(c.power_w, 0.0);
    }

    #[test]
    fn null_observer_is_compile_time_disabled() {
        const { assert!(!NullObserver::ENABLED) };
        // The default methods are callable no-ops.
        let mut obs = NullObserver;
        obs.on_task_start(0.0, TaskId(0), "k", &[GpuId(0)], StreamKind::Compute);
        obs.on_task_end(1.0, TaskId(0), "k", &[GpuId(0)], StreamKind::Compute);
        obs.on_epoch(0.0, 1.0, &[GpuCounters::default()]);
    }
}
