//! # olab-sim — fluid discrete-event simulation engine
//!
//! A small, deterministic simulation engine specialized for modeling GPU
//! execution timelines. It is the substrate under the overlap-lab
//! characterization harness (see the `olab-core` crate), but is fully generic:
//! it knows nothing about GPUs beyond the notion of *devices* with two
//! in-order *streams* (compute and communication), mirroring the CUDA/HIP
//! stream semantics that distributed-training frameworks build on.
//!
//! ## Model
//!
//! A [`Workload`] is a DAG of [`TaskSpec`]s. Each task:
//!
//! * occupies one [`StreamKind`] slot on one or more participant devices
//!   (collectives occupy the comm stream of *every* rank, which gives
//!   rendezvous semantics for free: the task starts only when it reaches the
//!   head of each rank's queue);
//! * carries an opaque payload interpreted by a user-supplied [`RateModel`];
//! * progresses *fluidly*: the rate model assigns each running task a rate in
//!   "fraction of the task completed per second", re-evaluated every time the
//!   running set changes. This is what lets contention (shared memory
//!   bandwidth, SM occupancy, DVFS throttling) be expressed naturally — rates
//!   drop when competing tasks are co-resident.
//!
//! The engine records per-task start/end times, per-task *co-active* time
//! (time during which the other stream on a shared device was busy — the
//! quantity behind the paper's "overlapped computation" ratio), per-device
//! power segments, and per-device overlap windows.
//!
//! ## Example
//!
//! ```rust
//! use olab_sim::{Engine, GpuId, RateModel, RunningTask, StreamKind, TaskSpec, Workload};
//!
//! /// Every task takes exactly one second, devices draw 100 W while busy.
//! struct Unit;
//! impl RateModel for Unit {
//!     type Payload = ();
//!     fn assign_rates(
//!         &mut self,
//!         running: &[RunningTask<'_, ()>],
//!         rates: &mut [f64],
//!         power: &mut [f64],
//!     ) {
//!         for (i, task) in running.iter().enumerate() {
//!             rates[i] = 1.0;
//!             for gpu in task.participants {
//!                 power[gpu.index()] = 100.0;
//!             }
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), olab_sim::SimError> {
//! let mut workload = Workload::new(1);
//! let a = workload.push(TaskSpec::compute("a", GpuId(0), ()));
//! let mut b = TaskSpec::new("b", vec![GpuId(0)], StreamKind::Comm, ());
//! b.deps.push(a);
//! workload.push(b);
//! let trace = Engine::new(Unit).run(&workload)?;
//! assert!((trace.makespan().as_secs() - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical;
mod engine;
mod error;
mod ids;
pub mod metrics;
mod obs;
mod rate;
pub mod rng;
mod task;
mod time;
mod trace;
pub mod verify;

pub use critical::{critical_path, CriticalPath, CriticalStep};
pub use engine::{Engine, SimArena};
pub use error::SimError;
pub use ids::{GpuId, StreamKind, TaskId};
pub use obs::{EngineObserver, GpuCounters, NullObserver};
pub use rate::{ConstantRate, RateModel, RunningTask};
pub use rng::SeededRng;
pub use task::{TaskSpec, Workload};
pub use time::SimTime;
pub use trace::{GpuActivity, PowerSegment, SimTrace, TaskRecord, Window};
pub use verify::{verify_trace, Violation};
