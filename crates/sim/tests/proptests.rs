//! Property-based tests: random forward DAGs must run to completion and the
//! resulting trace must satisfy the engine's accounting identities.

use olab_sim::{Engine, GpuId, RateModel, RunningTask, SimTime, StreamKind, TaskSpec, Workload};
use proptest::prelude::*;

/// Payload carrying the isolated duration of the task in seconds.
#[derive(Debug, Clone, Copy)]
struct Dur(f64);

/// Rate model: rate is 1/duration, slowed by 2x whenever the other stream is
/// busy on a shared device (a toy contention model). Power is 50 W idle plus
/// 25 W per running task on the device.
struct ToyContention;

impl RateModel for ToyContention {
    type Payload = Dur;

    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Dur>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        let mut busy = vec![[false; 2]; power.len()];
        for task in running {
            for gpu in task.participants {
                busy[gpu.index()][task.stream.index()] = true;
            }
        }
        for watts in power.iter_mut() {
            *watts = 50.0;
        }
        for (i, task) in running.iter().enumerate() {
            let contended = task
                .participants
                .iter()
                .any(|g| busy[g.index()][task.stream.other().index()]);
            let slowdown = if contended { 2.0 } else { 1.0 };
            rates[i] = 1.0 / (task.payload.0 * slowdown);
            for gpu in task.participants {
                power[gpu.index()] += 25.0;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct RandomTask {
    gpus: Vec<u16>,
    stream: StreamKind,
    duration: f64,
    /// Dependencies as offsets back from this task's index.
    dep_offsets: Vec<usize>,
}

fn random_task(n_gpus: u16) -> impl Strategy<Value = RandomTask> {
    (
        proptest::collection::vec(0..n_gpus, 1..=usize::from(n_gpus)),
        prop_oneof![Just(StreamKind::Compute), Just(StreamKind::Comm)],
        0.001f64..1.0,
        proptest::collection::vec(1usize..20, 0..3),
    )
        .prop_map(|(gpus, stream, duration, dep_offsets)| RandomTask {
            gpus,
            stream,
            duration,
            dep_offsets,
        })
}

fn build_workload(tasks: &[RandomTask], n_gpus: usize) -> Workload<Dur> {
    let mut w = Workload::new(n_gpus);
    for (i, t) in tasks.iter().enumerate() {
        let mut spec = TaskSpec::new(
            format!("t{i}"),
            t.gpus.iter().map(|&g| GpuId(g)).collect(),
            t.stream,
            Dur(t.duration),
        );
        for &off in &t.dep_offsets {
            if off <= i {
                spec.deps.push(olab_sim::TaskId((i - off) as u32));
            }
        }
        w.push(spec);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward-only DAGs never deadlock: the lowest-id incomplete task is
    /// always at the head of its queues with its (earlier-id) deps complete.
    #[test]
    fn random_forward_dags_complete(
        tasks in proptest::collection::vec(random_task(4), 1..60)
    ) {
        let w = build_workload(&tasks, 4);
        let trace = Engine::new(ToyContention).run(&w).expect("no deadlock");
        prop_assert_eq!(trace.records().len(), tasks.len());
    }

    /// Structural identities of the trace.
    #[test]
    fn trace_identities_hold(
        tasks in proptest::collection::vec(random_task(3), 1..40)
    ) {
        let w = build_workload(&tasks, 3);
        let trace = Engine::new(ToyContention).run(&w).expect("no deadlock");
        let makespan = trace.makespan().as_secs();

        // Every record is well-formed.
        for rec in trace.records() {
            prop_assert!(rec.end >= rec.start);
            prop_assert!(rec.end.as_secs() <= makespan + 1e-9);
            prop_assert!(rec.coactive.as_secs() <= rec.duration().as_secs() + 1e-9);
        }

        // Dependencies finish before dependents start.
        for (i, t) in w.tasks().iter().enumerate() {
            let rec = &trace.records()[i];
            for dep in &t.deps {
                let dep_rec = &trace.records()[dep.index()];
                prop_assert!(dep_rec.end.as_secs() <= rec.start.as_secs() + 1e-9);
            }
        }

        // Same-queue tasks never overlap and run in push order.
        for g in 0..3u16 {
            for s in StreamKind::ALL {
                let mut last_end = 0.0f64;
                for rec in trace.records() {
                    if rec.stream == s && rec.participants.contains(&GpuId(g)) {
                        prop_assert!(rec.start.as_secs() >= last_end - 1e-9);
                        last_end = rec.end.as_secs();
                    }
                }
            }
        }

        for g in 0..3u16 {
            let activity = trace.gpu(GpuId(g));
            // Busy time never exceeds the makespan.
            for s in StreamKind::ALL {
                prop_assert!(activity.busy_time(s).as_secs() <= makespan + 1e-9);
            }
            // Overlap time is bounded by either stream's busy time.
            let overlap = activity.overlap_time().as_secs();
            prop_assert!(overlap <= activity.busy_time(StreamKind::Compute).as_secs() + 1e-9);
            prop_assert!(overlap <= activity.busy_time(StreamKind::Comm).as_secs() + 1e-9);

            // Power segments are contiguous and span [0, makespan).
            let segs = &activity.power;
            if makespan > 0.0 {
                prop_assert!(!segs.is_empty());
                prop_assert!(segs[0].window.start == SimTime::ZERO);
                for pair in segs.windows(2) {
                    prop_assert!(
                        (pair[0].window.end.as_secs() - pair[1].window.start.as_secs()).abs()
                            < 1e-9
                    );
                }
                prop_assert!(
                    (segs.last().unwrap().window.end.as_secs() - makespan).abs() < 1e-9
                );
            }
        }
    }

    /// Makespan bounds: at least the longest single task, at most the sum of
    /// all isolated durations times the worst contention factor.
    #[test]
    fn makespan_bounds(
        tasks in proptest::collection::vec(random_task(2), 1..30)
    ) {
        let w = build_workload(&tasks, 2);
        let trace = Engine::new(ToyContention).run(&w).expect("no deadlock");
        let longest = tasks.iter().map(|t| t.duration).fold(0.0, f64::max);
        let total: f64 = tasks.iter().map(|t| t.duration).sum();
        prop_assert!(trace.makespan().as_secs() >= longest - 1e-9);
        prop_assert!(trace.makespan().as_secs() <= 2.0 * total + 1e-9);
    }
}
