//! The arena contract of the engine hot path: once a [`SimArena`] is warm,
//! a run allocates only for the *output* it hands back (the `SimTrace` and
//! its per-task/per-GPU vectors) — the event loop itself is allocation-free.
//!
//! Pinned with a counting global allocator, like `olab-obs/tests/alloc.rs`
//! (the library forbids unsafe code; a separate integration-test crate is
//! the only place Rust lets us count).

use olab_sim::{ConstantRate, Engine, GpuId, SimArena, TaskSpec, Workload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const N_GPUS: usize = 4;
const TASKS_PER_GPU: usize = 16;
const N_TASKS: usize = N_GPUS * TASKS_PER_GPU;

/// A dependency-chained compute/comm mix: every GPU alternates streams,
/// with a cross-GPU dependency every fourth task so promotion and retire
/// both do real work.
fn workload() -> Workload<()> {
    let mut w = Workload::new(N_GPUS);
    let mut ids = Vec::new();
    for i in 0..N_TASKS {
        let gpu = GpuId((i % N_GPUS) as u16);
        let mut spec = if i % 2 == 0 {
            TaskSpec::compute(format!("k{i}"), gpu, ())
        } else {
            TaskSpec::comm(format!("c{i}"), gpu, ())
        };
        if i >= 4 && i % 4 == 0 {
            spec = spec.after(ids[i - 4]);
        }
        ids.push(w.push(spec));
    }
    w
}

fn allocations_per_run(engine: &mut Engine<ConstantRate>, w: &Workload<()>, warm: bool) -> usize {
    const RUNS: usize = 10;
    let mut arena = SimArena::new();
    // Warm-up: grow the arena (and the trace-side capacities) to steady state.
    engine.run_in(w, &mut arena).expect("workload runs");
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..RUNS {
        if warm {
            engine.run_in(w, &mut arena).expect("workload runs");
        } else {
            engine
                .run_in(w, &mut SimArena::new())
                .expect("workload runs");
        }
    }
    (ALLOCATIONS.load(Ordering::SeqCst) - before) / RUNS
}

/// The documented steady-state budget, derived from what legitimately
/// escapes the run:
///
/// * 2 allocations per task record — its label `String` and participants
///   `Vec<GpuId>` (the trace owns both);
/// * ~1 allocation per task of vector *growth* across the records vec, the
///   per-GPU window/power/overlap vecs and the per-epoch coactive clips
///   (amortized doubling, counted at its worst);
/// * a constant handful for the trace itself, the per-GPU activity vec and
///   the per-epoch view buffer.
///
/// 3 per task is comfortable headroom over the measured ~2.1/task without
/// letting a per-epoch or per-dependency regression (O(epochs × tasks))
/// hide: the pre-arena engine paid an extra ~1 allocation per task per run
/// in queue/dependency scaffolding alone, before any growth churn.
const WARM_BUDGET: usize = 3 * N_TASKS + 32;

#[test]
fn warm_arena_runs_stay_within_the_allocation_budget() {
    let w = workload();
    let mut engine = Engine::new(ConstantRate::default());
    let per_run = allocations_per_run(&mut engine, &w, true);
    assert!(
        per_run <= WARM_BUDGET,
        "warm steady-state run allocates {per_run} times for {N_TASKS} tasks \
         (budget {WARM_BUDGET}) — the engine hot path regressed"
    );
}

/// Self-telemetry must be invisible to the arena contract: recording is
/// pure atomics, so the warm budget holds with the registry disabled
/// (default) *and* enabled. Registration itself allocates, which is why
/// the families are touched before counting starts — that cost is paid
/// once per process, never per run.
#[test]
fn metrics_recording_stays_within_the_warm_budget() {
    let w = workload();
    let mut engine = Engine::new(ConstantRate::default());
    olab_sim::metrics::touch();

    olab_metrics::set_enabled(true);
    let enabled = allocations_per_run(&mut engine, &w, true);
    olab_metrics::set_enabled(false);
    let disabled = allocations_per_run(&mut engine, &w, true);

    assert!(
        enabled <= WARM_BUDGET,
        "warm run with metrics enabled allocates {enabled} times \
         (budget {WARM_BUDGET}) — recording must stay allocation-free"
    );
    assert!(
        disabled <= WARM_BUDGET,
        "warm run with metrics disabled allocates {disabled} times \
         (budget {WARM_BUDGET}) — the disabled path regressed"
    );
}

#[test]
fn warm_arena_beats_a_cold_arena() {
    let w = workload();
    let mut engine = Engine::new(ConstantRate::default());
    let warm = allocations_per_run(&mut engine, &w, true);
    let cold = allocations_per_run(&mut engine, &w, false);
    assert!(
        warm < cold,
        "arena reuse must save allocations: warm {warm} vs cold {cold}"
    );
}
