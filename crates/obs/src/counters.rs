//! Simulated-NVML counter sampling: the merged counter timeline polled at
//! a fixed cadence into deterministic per-GPU time series.
//!
//! Sampling mirrors `olab_power::PowerTrace::sample` exactly: window `k`
//! covers `[k*dt, min((k+1)*dt, makespan))` with boundaries computed as
//! `k as f64 * dt` (no accumulation drift), the final partial window is
//! included and averages only the span it covers, zero-duration epochs
//! carry nothing, and each sample is stamped at the center of its window.
//! The series is a pure function of the recorded epochs, so the same seed
//! yields byte-identical `counters.csv` no matter how the sweep around it
//! was parallelized.

use crate::record::CounterEpoch;
use olab_core::CounterTrack;
use olab_sim::GpuCounters;
use std::fmt::Write as _;

/// One polled sample: every counter of one GPU at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Sample timestamp (window center), seconds.
    pub t_s: f64,
    /// Window-averaged counters.
    pub counters: GpuCounters,
}

/// The sampled series of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSeries {
    /// Device index.
    pub gpu: usize,
    /// Samples in time order.
    pub samples: Vec<CounterSample>,
}

/// The counter column names, in the order they appear in
/// [`counters_csv`] rows and [`counter_tracks`] output.
pub const COUNTER_NAMES: [&str; 5] = [
    "power_w",
    "sm_occupancy",
    "hbm_util",
    "link_util",
    "freq_factor",
];

fn fields(c: &GpuCounters) -> [f64; 5] {
    [
        c.power_w,
        c.sm_occupancy,
        c.hbm_util,
        c.link_util,
        c.freq_factor,
    ]
}

/// Polls the merged epoch timeline at `interval_s`, returning one series
/// per GPU (all series share timestamps).
///
/// # Panics
///
/// Panics when `interval_s` is not a positive finite number — a
/// zero-interval poll would loop forever, exactly as in
/// `olab_power::PowerTrace::sample`.
pub fn sample_epochs(epochs: &[CounterEpoch], n_gpus: usize, interval_s: f64) -> Vec<GpuSeries> {
    assert!(
        interval_s.is_finite() && interval_s > 0.0,
        "invalid sampling interval {interval_s}"
    );
    let mut series: Vec<GpuSeries> = (0..n_gpus)
        .map(|gpu| GpuSeries {
            gpu,
            samples: Vec::new(),
        })
        .collect();
    let dur = epochs.last().map_or(0.0, |e| e.end_s);
    let mut k = 0u64;
    loop {
        let t = k as f64 * interval_s;
        if t >= dur {
            break;
        }
        let end = (t + interval_s).min(dur);
        let mut sums = vec![[0.0f64; 5]; n_gpus];
        let mut covered = 0.0;
        for epoch in epochs {
            let lo = epoch.start_s.max(t);
            let hi = epoch.end_s.min(end);
            if hi <= lo {
                continue;
            }
            let w = hi - lo;
            covered += w;
            for (gpu, c) in epoch.counters.iter().enumerate().take(n_gpus) {
                for (sum, field) in sums[gpu].iter_mut().zip(fields(c)) {
                    *sum += field * w;
                }
            }
        }
        let t_mid = (t + end) / 2.0;
        for (gpu, line) in series.iter_mut().enumerate() {
            let avg = if covered > 0.0 {
                let s = sums[gpu];
                GpuCounters {
                    power_w: s[0] / covered,
                    sm_occupancy: s[1] / covered,
                    hbm_util: s[2] / covered,
                    link_util: s[3] / covered,
                    freq_factor: s[4] / covered,
                }
            } else {
                GpuCounters::default()
            };
            line.samples.push(CounterSample {
                t_s: t_mid,
                counters: avg,
            });
        }
        k += 1;
    }
    series
}

/// Renders the sampled series as CSV: header
/// `gpu,t_ms,power_w,sm_occupancy,hbm_util,link_util,freq_factor`, rows
/// grouped by GPU in time order, fixed-precision throughout.
pub fn counters_csv(series: &[GpuSeries]) -> String {
    let mut out = String::from("gpu,t_ms");
    for name in COUNTER_NAMES {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for line in series {
        for s in &line.samples {
            let _ = write!(out, "{},{:.3}", line.gpu, s.t_s * 1e3);
            for v in fields(&s.counters) {
                let _ = write!(out, ",{v:.6}");
            }
            out.push('\n');
        }
    }
    out
}

/// Converts the sampled series into Perfetto counter tracks — one track
/// per counter per GPU (5 tracks/GPU), named `gpu<N>/<counter>`.
pub fn counter_tracks(series: &[GpuSeries]) -> Vec<CounterTrack> {
    let mut tracks = Vec::with_capacity(series.len() * COUNTER_NAMES.len());
    for line in series {
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            tracks.push(CounterTrack {
                name: format!("gpu{}/{name}", line.gpu),
                gpu: line.gpu,
                points: line
                    .samples
                    .iter()
                    .map(|s| (s.t_s, fields(&s.counters)[i]))
                    .collect(),
            });
        }
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(start_s: f64, end_s: f64, power: f64, occ: f64) -> CounterEpoch {
        CounterEpoch {
            start_s,
            end_s,
            counters: vec![GpuCounters {
                sm_occupancy: occ,
                hbm_util: 0.5,
                link_util: 0.25,
                freq_factor: 1.0,
                power_w: power,
            }],
        }
    }

    #[test]
    fn windows_average_over_their_covered_span() {
        // 0.15 s timeline at dt = 0.1: full window [0, 0.1) then partial
        // [0.1, 0.15). Power 100 W then 300 W split at t = 0.1.
        let epochs = vec![epoch(0.0, 0.1, 100.0, 0.2), epoch(0.1, 0.15, 300.0, 0.8)];
        let series = sample_epochs(&epochs, 1, 0.1);
        assert_eq!(series.len(), 1);
        let s = &series[0].samples;
        assert_eq!(s.len(), 2, "ceil(0.15/0.1) windows");
        assert!((s[0].t_s - 0.05).abs() < 1e-12);
        assert!((s[0].counters.power_w - 100.0).abs() < 1e-9);
        // Final partial window: centered at 0.125, averages only [0.1, 0.15).
        assert!((s[1].t_s - 0.125).abs() < 1e-12);
        assert!((s[1].counters.power_w - 300.0).abs() < 1e-9);
        assert!((s[1].counters.sm_occupancy - 0.8).abs() < 1e-9);
    }

    #[test]
    fn a_window_straddling_an_edge_blends_time_weighted() {
        let epochs = vec![epoch(0.0, 0.05, 100.0, 0.0), epoch(0.05, 0.1, 300.0, 1.0)];
        let series = sample_epochs(&epochs, 1, 0.1);
        let s = &series[0].samples;
        assert_eq!(s.len(), 1);
        assert!((s[0].counters.power_w - 200.0).abs() < 1e-9);
        assert!((s[0].counters.sm_occupancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_yields_no_samples() {
        let series = sample_epochs(&[], 2, 0.1);
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.samples.is_empty()));
    }

    #[test]
    #[should_panic(expected = "invalid sampling interval")]
    fn zero_interval_is_rejected() {
        let _ = sample_epochs(&[epoch(0.0, 1.0, 100.0, 0.5)], 1, 0.0);
    }

    #[test]
    fn csv_has_the_documented_header_and_one_row_per_sample() {
        let epochs = vec![epoch(0.0, 0.2, 150.0, 0.4)];
        let series = sample_epochs(&epochs, 1, 0.1);
        let csv = counters_csv(&series);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "gpu,t_ms,power_w,sm_occupancy,hbm_util,link_util,freq_factor"
        );
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            "0,50.000,150.000000,0.400000,0.500000,0.250000,1.000000"
        );
    }

    #[test]
    fn tracks_cover_every_counter_for_every_gpu() {
        let epochs = vec![CounterEpoch {
            start_s: 0.0,
            end_s: 0.1,
            counters: vec![GpuCounters::default(); 3],
        }];
        let tracks = counter_tracks(&sample_epochs(&epochs, 3, 0.1));
        assert_eq!(tracks.len(), 3 * COUNTER_NAMES.len());
        assert!(tracks
            .iter()
            .any(|t| t.name == "gpu2/power_w" && t.gpu == 2));
        assert!(tracks.iter().all(|t| t.points.len() == 1));
    }
}
