//! # olab-obs — observability for overlap-lab
//!
//! The paper's methodology is measurement: NVML/rocm-smi polling at a
//! fixed cadence, Nsight-style timelines, per-run power series. This
//! crate gives the simulator the same observability surface, so every
//! simulated cell can leave the artifacts a real characterization run
//! would:
//!
//! * a typed **event bus** ([`ObsEvent`], [`EventBus`]) carrying task and
//!   collective lifecycle edges, DVFS transitions, fault windows,
//!   watchdog episodes, and cache hits/misses — borrowed events, zero
//!   cost when nobody subscribes;
//! * a **recorder** ([`Recorder`]) that plugs into the engine's
//!   `EngineObserver` hook and turns raw epochs into the minimal merged
//!   counter timeline;
//! * a **simulated-NVML sampler** ([`sample_epochs`]) polling each GPU at
//!   a configurable cadence (default 100 ms of simulated time) for board
//!   power, SM occupancy, HBM-bandwidth utilization, link utilization
//!   and clock frequency — deterministic per-GPU series, byte-identical
//!   for the same seed regardless of sweep parallelism;
//! * **Perfetto counter tracks** ([`counter_tracks`]) rendered into the
//!   Chrome-trace export;
//! * a **run-artifact writer** ([`RunArtifact`]) emitting a
//!   self-describing directory per observed cell (`manifest.json`,
//!   `metrics.csv`, `counters.csv`, `trace.json`, `events.jsonl`) —
//!   fault cells and aborted runs included;
//! * **live sweep progress** ([`StderrProgress`], [`JsonlProgress`])
//!   behind `olab_grid::ProgressSink`.
//!
//! Determinism is a hard requirement throughout: no wall-clock value
//! reaches any artifact, so `--jobs 1` and `--jobs N` produce
//! byte-identical bytes (pinned by `tests/determinism.rs`). The progress
//! feed is the one deliberate exception — it reports wall-clock pacing
//! and completion order, and says so.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod counters;
mod event;
mod progress;
mod record;
mod run;

pub use artifact::{
    metrics_csv, FaultManifest, Manifest, RecoveryManifest, RunArtifact, ARTIFACT_FILES,
    ARTIFACT_SCHEMA_VERSION,
};
pub use counters::{
    counter_tracks, counters_csv, sample_epochs, CounterSample, GpuSeries, COUNTER_NAMES,
};
pub use event::{to_jsonl, EventBus, JsonlSink, ObsEvent, Observer};
pub use progress::{JsonlProgress, MultiSink, StderrProgress};
pub use record::{CounterEpoch, Recorder};
pub use run::{observe_cell, observe_fault_cell, observe_recovery_cell, ObserveConfig};
