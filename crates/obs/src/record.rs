//! The [`Recorder`]: an [`EngineObserver`] that turns raw engine
//! callbacks into the typed event stream and a merged piecewise-constant
//! counter timeline.
//!
//! The engine reports one callback per epoch; epochs are often much finer
//! than anything telemetry cares about (a task edge elsewhere on the node
//! splits an epoch without changing any counter). The recorder merges
//! contiguous epochs whose counters are identical, so the stored timeline
//! is the minimal piecewise-constant representation — sampling cost then
//! scales with actual telemetry changes, not engine granularity. DVFS
//! transitions are detected here too: whenever a GPU's clock factor
//! changes between epochs, a [`ObsEvent::DvfsTransition`] is emitted.

use crate::event::{EventBus, ObsEvent};
use olab_sim::{EngineObserver, GpuCounters, GpuId, StreamKind, TaskId};

/// One maximal run of engine epochs with identical per-GPU counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEpoch {
    /// Epoch start, seconds.
    pub start_s: f64,
    /// Epoch end, seconds.
    pub end_s: f64,
    /// Per-GPU counters, indexed by device, constant over the epoch.
    pub counters: Vec<GpuCounters>,
}

/// Collects events and counters from one observed run.
#[derive(Debug, Default)]
pub struct Recorder {
    bus: EventBus,
    epochs: Vec<CounterEpoch>,
    last_freq: Vec<f64>,
}

impl Recorder {
    /// A recorder delivering events to `bus`.
    pub fn new(bus: EventBus) -> Self {
        Recorder {
            bus,
            epochs: Vec::new(),
            last_freq: Vec::new(),
        }
    }

    /// The merged counter timeline recorded so far, in time order.
    pub fn epochs(&self) -> &[CounterEpoch] {
        &self.epochs
    }

    /// End of the recorded timeline, seconds (0 before any epoch).
    pub fn makespan_s(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.end_s)
    }

    /// Mutable access to the bus, for emitting prologue/epilogue events
    /// (fault windows, watchdog episodes) around the engine run.
    pub fn bus(&mut self) -> &mut EventBus {
        &mut self.bus
    }
}

impl EngineObserver for Recorder {
    fn on_task_start(
        &mut self,
        now_s: f64,
        id: TaskId,
        label: &str,
        participants: &[GpuId],
        stream: StreamKind,
    ) {
        let event = match stream {
            StreamKind::Compute => ObsEvent::TaskStart {
                t_s: now_s,
                id: u64::from(id.0),
                label,
                gpus: participants,
            },
            StreamKind::Comm => ObsEvent::CollectiveStart {
                t_s: now_s,
                id: u64::from(id.0),
                label,
                gpus: participants,
            },
        };
        self.bus.emit(&event);
    }

    fn on_task_end(
        &mut self,
        now_s: f64,
        id: TaskId,
        label: &str,
        participants: &[GpuId],
        stream: StreamKind,
    ) {
        let event = match stream {
            StreamKind::Compute => ObsEvent::TaskEnd {
                t_s: now_s,
                id: u64::from(id.0),
                label,
                gpus: participants,
            },
            StreamKind::Comm => ObsEvent::CollectiveEnd {
                t_s: now_s,
                id: u64::from(id.0),
                label,
                gpus: participants,
            },
        };
        self.bus.emit(&event);
    }

    fn on_epoch(&mut self, start_s: f64, end_s: f64, counters: &[GpuCounters]) {
        // DVFS edges: compare each GPU's clock factor with the previous
        // epoch's (first epoch establishes the baseline silently when the
        // clock is nominal).
        if self.last_freq.len() < counters.len() {
            self.last_freq.resize(counters.len(), 1.0);
        }
        for (gpu, c) in counters.iter().enumerate() {
            let prev = self.last_freq[gpu];
            if c.freq_factor != prev {
                self.bus.emit(&ObsEvent::DvfsTransition {
                    t_s: start_s,
                    gpu,
                    from: prev,
                    to: c.freq_factor,
                });
                self.last_freq[gpu] = c.freq_factor;
            }
        }

        // Zero-duration epochs carry no time and would only split merges.
        if end_s <= start_s {
            return;
        }
        if let Some(last) = self.epochs.last_mut() {
            if last.end_s == start_s && last.counters.as_slice() == counters {
                last.end_s = end_s;
                return;
            }
        }
        self.epochs.push(CounterEpoch {
            start_s,
            end_s,
            counters: counters.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::JsonlSink;

    fn counters(freq: f64, power: f64) -> Vec<GpuCounters> {
        vec![GpuCounters {
            sm_occupancy: 0.5,
            hbm_util: 0.25,
            link_util: 0.0,
            freq_factor: freq,
            power_w: power,
        }]
    }

    fn recorder_with_log() -> (Recorder, std::rc::Rc<std::cell::RefCell<String>>) {
        let (sink, buf) = JsonlSink::new();
        let mut bus = EventBus::new();
        bus.subscribe(Box::new(sink));
        (Recorder::new(bus), buf)
    }

    #[test]
    fn contiguous_equal_epochs_merge() {
        let (mut rec, _) = recorder_with_log();
        rec.on_epoch(0.0, 1.0, &counters(1.0, 500.0));
        rec.on_epoch(1.0, 2.0, &counters(1.0, 500.0));
        rec.on_epoch(2.0, 3.0, &counters(1.0, 400.0));
        assert_eq!(rec.epochs().len(), 2);
        assert_eq!(rec.epochs()[0].start_s, 0.0);
        assert_eq!(rec.epochs()[0].end_s, 2.0);
        assert_eq!(rec.makespan_s(), 3.0);
    }

    #[test]
    fn zero_duration_epochs_are_dropped_without_splitting_merges() {
        let (mut rec, _) = recorder_with_log();
        rec.on_epoch(0.0, 1.0, &counters(1.0, 500.0));
        rec.on_epoch(1.0, 1.0, &counters(1.0, 999.0));
        rec.on_epoch(1.0, 2.0, &counters(1.0, 500.0));
        assert_eq!(rec.epochs().len(), 1, "{:?}", rec.epochs());
        assert_eq!(rec.epochs()[0].end_s, 2.0);
    }

    #[test]
    fn clock_changes_emit_dvfs_transitions() {
        let (mut rec, buf) = recorder_with_log();
        rec.on_epoch(0.0, 1.0, &counters(1.0, 500.0));
        rec.on_epoch(1.0, 2.0, &counters(0.75, 420.0));
        rec.on_epoch(2.0, 3.0, &counters(0.75, 420.0));
        rec.on_epoch(3.0, 4.0, &counters(1.0, 500.0));
        let text = buf.borrow();
        let dvfs: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("dvfs_transition"))
            .collect();
        assert_eq!(dvfs.len(), 2, "{text}");
        assert!(dvfs[0].contains("\"from\": 1.000000") && dvfs[0].contains("\"to\": 0.750000"));
        assert!(dvfs[1].contains("\"from\": 0.750000") && dvfs[1].contains("\"to\": 1.000000"));
    }

    #[test]
    fn task_edges_route_by_stream_kind() {
        let (mut rec, buf) = recorder_with_log();
        let gpus = [GpuId(0)];
        rec.on_task_start(0.0, TaskId(0), "gemm", &gpus, StreamKind::Compute);
        rec.on_task_start(0.0, TaskId(1), "ar", &gpus, StreamKind::Comm);
        rec.on_task_end(1.0, TaskId(0), "gemm", &gpus, StreamKind::Compute);
        rec.on_task_end(2.0, TaskId(1), "ar", &gpus, StreamKind::Comm);
        let text = buf.borrow();
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| {
                l.split("\"event\": \"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "task_start",
                "collective_start",
                "task_end",
                "collective_end"
            ]
        );
    }
}
