//! Self-describing run artifacts: one directory per observed cell.
//!
//! Every observed run — healthy or faulted — leaves the same five files:
//!
//! * `manifest.json` — what ran: cell descriptor, content-addressed cache
//!   key, schema/calibration versions, sampling cadence, and (for fault
//!   cells) the scenario seed/severity and any abort. Never a wall-clock
//!   timestamp: the manifest is part of the deterministic record.
//! * `metrics.csv` — `metric,value` rows of every derived number.
//! * `counters.csv` — the simulated-NVML per-GPU counter series.
//! * `trace.json` — the Chrome/Perfetto trace with counter tracks.
//! * `events.jsonl` — the typed event log, one JSON object per line.

use olab_core::fmtutil::json_escape;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the artifact directory layout and manifest schema.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Fault-scenario fields of a manifest (absent for healthy cells).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultManifest {
    /// Scenario seed.
    pub seed: u64,
    /// Scenario severity label.
    pub severity: String,
    /// Fault-schema version the scenario expanded under.
    pub fault_schema_version: u32,
    /// Human-readable abort description when the watchdog killed the run.
    pub aborted: Option<String>,
}

/// Recovery-policy fields of a manifest (present for resilience cells).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryManifest {
    /// Recovery-policy descriptor (covers the checkpoint interval).
    pub policy: String,
    /// Whether the job finished its workload under the policy.
    pub completed: bool,
    /// World size at job end (N−1 after an elastic shrink).
    pub final_world_size: u32,
    /// Checkpoints written over the whole job.
    pub checkpoints_written: u32,
    /// Recovery-schema version the policy expanded under.
    pub recovery_schema_version: u32,
}

/// Everything `manifest.json` records about one observed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// `"experiment"` or `"fault"`.
    pub kind: &'static str,
    /// The cell's display label.
    pub label: String,
    /// The canonical cell descriptor (covers every result-changing input).
    pub descriptor: String,
    /// FNV-1a 64 of the descriptor — the content address of the cell.
    pub cell_key: u64,
    /// Cell wire-schema version baked into the descriptor.
    pub cell_schema_version: u32,
    /// Calibration-constant version baked into the descriptor.
    pub calibration_version: u32,
    /// Counter sampling cadence, milliseconds of simulated time.
    pub sample_ms: f64,
    /// GPUs in the node.
    pub n_gpus: usize,
    /// Makespan of the observed run, seconds.
    pub makespan_s: f64,
    /// Fault-scenario fields, when this was a fault cell.
    pub fault: Option<FaultManifest>,
    /// Recovery-policy fields, when this was a resilience cell.
    pub recovery: Option<RecoveryManifest>,
}

impl Manifest {
    /// Renders the manifest as pretty-printed JSON (valid per
    /// [`olab_core::fmtutil::validate_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"artifact_schema\": {},", ARTIFACT_SCHEMA_VERSION);
        let _ = writeln!(out, "  \"kind\": \"{}\",", json_escape(self.kind));
        let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&self.label));
        let _ = writeln!(
            out,
            "  \"descriptor\": \"{}\",",
            json_escape(&self.descriptor)
        );
        let _ = writeln!(out, "  \"cell_key\": {},", self.cell_key);
        let _ = writeln!(out, "  \"cell_schema\": {},", self.cell_schema_version);
        let _ = writeln!(out, "  \"calibration\": {},", self.calibration_version);
        let _ = writeln!(out, "  \"sample_ms\": {:.3},", self.sample_ms);
        let _ = writeln!(out, "  \"n_gpus\": {},", self.n_gpus);
        let _ = writeln!(out, "  \"makespan_s\": {:.6},", self.makespan_s);
        match &self.fault {
            None => out.push_str("  \"fault\": null,\n"),
            Some(f) => {
                out.push_str("  \"fault\": {\n");
                let _ = writeln!(out, "    \"seed\": {},", f.seed);
                let _ = writeln!(out, "    \"severity\": \"{}\",", json_escape(&f.severity));
                let _ = writeln!(out, "    \"fault_schema\": {},", f.fault_schema_version);
                match &f.aborted {
                    None => out.push_str("    \"aborted\": null\n"),
                    Some(msg) => {
                        let _ = writeln!(out, "    \"aborted\": \"{}\"", json_escape(msg));
                    }
                }
                out.push_str("  },\n");
            }
        }
        match &self.recovery {
            None => out.push_str("  \"recovery\": null\n"),
            Some(r) => {
                out.push_str("  \"recovery\": {\n");
                let _ = writeln!(out, "    \"policy\": \"{}\",", json_escape(&r.policy));
                let _ = writeln!(out, "    \"completed\": {},", r.completed);
                let _ = writeln!(out, "    \"final_world_size\": {},", r.final_world_size);
                let _ = writeln!(
                    out,
                    "    \"checkpoints_written\": {},",
                    r.checkpoints_written
                );
                let _ = writeln!(
                    out,
                    "    \"recovery_schema\": {}",
                    r.recovery_schema_version
                );
                out.push_str("  }\n");
            }
        }
        out.push('}');
        out
    }
}

/// Renders `metric,value` CSV rows with a header.
pub fn metrics_csv(rows: &[(&str, f64)]) -> String {
    let mut out = String::from("metric,value\n");
    for (name, value) in rows {
        let _ = writeln!(out, "{name},{value:.9}");
    }
    out
}

/// The complete in-memory artifact of one observed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// The manifest (serialized to `manifest.json`).
    pub manifest: Manifest,
    /// `metric,value` rows (`metrics.csv`).
    pub metrics_csv: String,
    /// Per-GPU counter series (`counters.csv`).
    pub counters_csv: String,
    /// Chrome/Perfetto trace with counter tracks (`trace.json`).
    pub trace_json: String,
    /// Typed event log (`events.jsonl`).
    pub events_jsonl: String,
}

/// File names every artifact directory contains, in write order.
pub const ARTIFACT_FILES: [&str; 5] = [
    "manifest.json",
    "metrics.csv",
    "counters.csv",
    "trace.json",
    "events.jsonl",
];

impl RunArtifact {
    /// Writes the five artifact files under `dir` (created if missing),
    /// returning their paths in [`ARTIFACT_FILES`] order.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or writing a file.
    pub fn write_to(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let contents = [
            self.manifest.to_json(),
            self.metrics_csv.clone(),
            self.counters_csv.clone(),
            self.trace_json.clone(),
            self.events_jsonl.clone(),
        ];
        let mut paths = Vec::with_capacity(ARTIFACT_FILES.len());
        for (name, content) in ARTIFACT_FILES.iter().zip(contents) {
            let path = dir.join(name);
            fs::write(&path, content)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::fmtutil::validate_json;

    fn manifest() -> Manifest {
        Manifest {
            kind: "fault",
            label: "MI250x4 LLaMA-2 13B FSDP b8".into(),
            descriptor: "olab-cell schema=1 \"quoted\"".into(),
            cell_key: 0xdead_beef,
            cell_schema_version: 1,
            calibration_version: 3,
            sample_ms: 100.0,
            n_gpus: 4,
            makespan_s: 1.25,
            fault: Some(FaultManifest {
                seed: 7,
                severity: "Severe".into(),
                fault_schema_version: 1,
                aborted: None,
            }),
            recovery: None,
        }
    }

    #[test]
    fn manifest_is_valid_json_with_escaped_descriptor() {
        let json = manifest().to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{json}\n{e}"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"seed\": 7"));
    }

    #[test]
    fn healthy_manifest_has_a_null_fault_block() {
        let mut m = manifest();
        m.kind = "experiment";
        m.fault = None;
        let json = m.to_json();
        validate_json(&json).expect("valid");
        assert!(json.contains("\"fault\": null"));
        assert!(json.contains("\"recovery\": null"));
    }

    #[test]
    fn resilience_manifest_records_the_policy_verdict() {
        let mut m = manifest();
        m.kind = "resilience";
        m.recovery = Some(RecoveryManifest {
            policy: "recovery schema=1 policy=elastic".into(),
            completed: true,
            final_world_size: 3,
            checkpoints_written: 0,
            recovery_schema_version: 1,
        });
        let json = m.to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{json}\n{e}"));
        assert!(json.contains("\"policy\": \"recovery schema=1 policy=elastic\""));
        assert!(json.contains("\"completed\": true"));
        assert!(json.contains("\"final_world_size\": 3"));
    }

    #[test]
    fn metrics_csv_rows_are_fixed_precision() {
        let csv = metrics_csv(&[("e2e_s", 1.5), ("retries", 3.0)]);
        assert_eq!(
            csv,
            "metric,value\ne2e_s,1.500000000\nretries,3.000000000\n"
        );
    }

    #[test]
    fn write_to_creates_all_five_files() {
        let dir = std::env::temp_dir().join(format!("olab-obs-artifact-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let artifact = RunArtifact {
            manifest: manifest(),
            metrics_csv: "metric,value\n".into(),
            counters_csv: "gpu,t_ms\n".into(),
            trace_json: "[]".into(),
            events_jsonl: String::new(),
        };
        let paths = artifact.write_to(&dir).expect("writes");
        assert_eq!(paths.len(), 5);
        for (path, name) in paths.iter().zip(ARTIFACT_FILES) {
            assert!(path.ends_with(name), "{path:?}");
            assert!(path.exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
