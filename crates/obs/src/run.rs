//! Observed cell execution: run one experiment (or fault scenario) with
//! full instrumentation and assemble the run artifact.
//!
//! Everything here is a pure function of the cell configuration plus the
//! [`ObserveConfig`]: no wall-clock, no environment, no thread-count
//! dependence leaks into the artifact, so the same cell observed with
//! `jobs = 1` and `jobs = N` produces byte-identical bytes in every file.

use crate::artifact::{metrics_csv, FaultManifest, Manifest, RecoveryManifest, RunArtifact};
use crate::counters::{counter_tracks, counters_csv, sample_epochs};
use crate::event::{EventBus, JsonlSink, ObsEvent};
use crate::record::Recorder;
use olab_core::sweep::{cell_descriptor, cell_key, CELL_SCHEMA_VERSION};
use olab_core::{
    execute, execute_model_observed, execute_observed, to_chrome_trace_full, Experiment,
    ExperimentError, Machine, OverlapMetrics, RunResult,
};
use olab_faults::{
    fault_annotations, FaultCell, FaultError, FaultScenarioSpec, FaultTimeline, FaultyMachine,
};
use olab_grid::{GridJob, Pool};
use olab_parallel::{ExecutionMode, Op};
use olab_resilience::{
    run_with_recovery, RecoveryError, RecoveryPolicy, RecoveryReport, ResilienceCell,
    RECOVERY_SCHEMA_VERSION,
};
use olab_sim::Workload;

/// How to observe a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveConfig {
    /// Counter sampling cadence, milliseconds of simulated time.
    pub sample_ms: f64,
    /// Worker threads for the auxiliary (sequential/ideal) runs. Purely a
    /// wall-clock knob: the artifact is byte-identical for any value.
    pub jobs: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            sample_ms: 100.0,
            jobs: 1,
        }
    }
}

fn recorder_with_log() -> (Recorder, std::rc::Rc<std::cell::RefCell<String>>) {
    let (sink, buf) = JsonlSink::new();
    let mut bus = EventBus::new();
    bus.subscribe(Box::new(sink));
    (Recorder::new(bus), buf)
}

/// Runs `exp` fully instrumented and assembles its artifact: the
/// overlapped run drives the recorder (events + counters), while the
/// sequential and contention-free runs — needed only for derived metrics —
/// fan out across `cfg.jobs` workers.
///
/// # Errors
///
/// Same as [`Experiment::run`].
pub fn observe_cell(exp: &Experiment, cfg: &ObserveConfig) -> Result<RunArtifact, ExperimentError> {
    let policy = exp.validate()?;
    let machine = exp.machine();

    let (mut recorder, events) = recorder_with_log();
    let overlapped = execute_observed(
        &exp.timeline(ExecutionMode::Overlapped, policy)?,
        &machine,
        &mut recorder,
    )?;

    // The unobserved auxiliary runs are independent: fan out.
    let aux: Vec<(Workload<Op>, Machine)> = vec![
        (
            exp.timeline(ExecutionMode::Sequential, policy)?,
            machine.clone(),
        ),
        (
            exp.timeline(ExecutionMode::Overlapped, policy)?,
            machine.uncontended(),
        ),
    ];
    let mut aux_runs = Pool::new(cfg.jobs).map(&aux, |(w, m)| execute(w, m));
    let ideal = aux_runs.pop().expect("ideal run present")?;
    let sequential = aux_runs.pop().expect("sequential run present")?;

    let metrics = OverlapMetrics::derive(&overlapped, &sequential);
    let series = sample_epochs(recorder.epochs(), exp.n_gpus, cfg.sample_ms / 1e3);
    let tracks = counter_tracks(&series);
    let events_jsonl = events.borrow().clone();

    Ok(RunArtifact {
        manifest: Manifest {
            kind: "experiment",
            label: exp.label(),
            descriptor: cell_descriptor(exp),
            cell_key: cell_key(exp),
            cell_schema_version: CELL_SCHEMA_VERSION,
            calibration_version: olab_gpu::CALIBRATION_VERSION,
            sample_ms: cfg.sample_ms,
            n_gpus: exp.n_gpus,
            makespan_s: overlapped.e2e_s,
            fault: None,
            recovery: None,
        },
        metrics_csv: metrics_csv(&[
            ("compute_slowdown", metrics.compute_slowdown),
            ("overlap_ratio", metrics.overlap_ratio),
            ("e2e_overlapped_s", metrics.e2e_overlapped_s),
            ("e2e_ideal_s", metrics.e2e_ideal_s),
            ("e2e_sequential_derived_s", metrics.e2e_sequential_derived_s),
            (
                "e2e_sequential_measured_s",
                metrics.e2e_sequential_measured_s,
            ),
            ("avg_power_w", metrics.avg_power_w),
            ("peak_power_w", metrics.peak_power_w),
            ("avg_power_sequential_w", metrics.avg_power_sequential_w),
            ("peak_power_sequential_w", metrics.peak_power_sequential_w),
            ("energy_j", metrics.energy_j),
            ("ideal_simulated_e2e_s", ideal.e2e_s),
            ("comm_s", overlapped.comm_s()),
            ("overlapped_compute_s", overlapped.overlapped_compute_s()),
            ("hidden_comm_s", overlapped.hidden_comm_s()),
        ]),
        counters_csv: counters_csv(&series),
        trace_json: to_chrome_trace_full(&overlapped.trace, &[], &tracks),
        events_jsonl,
    })
}

fn emit_fault_prologue(recorder: &mut Recorder, timeline: &FaultTimeline) {
    // Fault windows are known before the run starts: emit them up front so
    // the event log reads prologue -> engine events -> watchdog epilogue.
    for w in &timeline.throttles {
        recorder.bus().emit(&ObsEvent::FaultThrottle {
            start_s: w.start_s,
            end_s: w.end_s,
            gpu: w.gpu,
            freq_factor: w.freq_factor,
        });
    }
    for l in &timeline.link_faults {
        let link = l.link.to_string();
        recorder.bus().emit(&ObsEvent::FaultLink {
            start_s: l.start_s,
            end_s: l.end_s,
            link: &link,
            bw_factor: l.bw_factor,
        });
    }
}

fn emit_fault_epilogue(recorder: &mut Recorder, injected: &FaultyMachine) {
    for e in &injected.stats().events {
        let event = match e.kind {
            olab_faults::FaultEventKind::Stall => ObsEvent::WatchdogStall {
                start_s: e.start_s,
                end_s: e.end_s,
                label: &e.label,
            },
            olab_faults::FaultEventKind::Rebuild => ObsEvent::WatchdogRebuild {
                start_s: e.start_s,
                end_s: e.end_s,
                label: &e.label,
            },
        };
        recorder.bus().emit(&event);
    }
    if let Some(abort) = injected.abort() {
        recorder.bus().emit(&ObsEvent::WatchdogAbort {
            t_s: abort.at_s,
            label: &abort.collective,
            retries: abort.retries,
        });
    }
}

/// Runs `exp` under the fault scenario `spec`, fully instrumented.
///
/// Unlike `olab_faults::run_with_faults`, a watchdog abort is *not* an
/// error here: the whole point of observability is that failed cells
/// leave a record too. The abort lands in the event log and in
/// `manifest.fault.aborted`.
///
/// # Errors
///
/// [`FaultError::Experiment`] when the experiment is infeasible or fails
/// to simulate.
pub fn observe_fault_cell(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
    cfg: &ObserveConfig,
) -> Result<RunArtifact, FaultError> {
    let policy = exp.validate().map_err(FaultError::Experiment)?;
    let machine = exp.machine();
    let workload = exp.timeline(ExecutionMode::Overlapped, policy)?;
    let fault_free: RunResult = execute(&workload, &machine).map_err(ExperimentError::from)?;

    let timeline = FaultTimeline::generate(spec, exp.n_gpus, fault_free.e2e_s);
    let (mut recorder, events) = recorder_with_log();
    emit_fault_prologue(&mut recorder, &timeline);

    let mut injected = FaultyMachine::new(machine, timeline.clone());
    let faulty = execute_model_observed(&workload, &mut injected, &mut recorder)
        .map_err(ExperimentError::from)?;
    emit_fault_epilogue(&mut recorder, &injected);

    let stats = injected.stats();
    let base_overlap = fault_free.overlap_ratio();
    let faulty_overlap = faulty.overlap_ratio();
    let series = sample_epochs(recorder.epochs(), exp.n_gpus, cfg.sample_ms / 1e3);
    let tracks = counter_tracks(&series);
    let notes = fault_annotations(&timeline, stats, faulty.e2e_s);
    let descriptor = FaultCell::new(exp.clone(), *spec).descriptor();
    let events_jsonl = events.borrow().clone();

    Ok(RunArtifact {
        manifest: Manifest {
            kind: "fault",
            label: exp.label(),
            cell_key: olab_grid::fnv1a_64(descriptor.as_bytes()),
            descriptor,
            cell_schema_version: CELL_SCHEMA_VERSION,
            calibration_version: olab_gpu::CALIBRATION_VERSION,
            sample_ms: cfg.sample_ms,
            n_gpus: exp.n_gpus,
            makespan_s: faulty.e2e_s,
            fault: Some(FaultManifest {
                seed: spec.seed,
                severity: format!("{:?}", spec.severity),
                fault_schema_version: olab_faults::FAULT_SCHEMA_VERSION,
                aborted: injected.abort().map(|a| {
                    format!(
                        "collective '{}' unreachable after {} retries at {:.3}s",
                        a.collective, a.retries, a.at_s
                    )
                }),
            }),
            recovery: None,
        },
        metrics_csv: metrics_csv(&[
            ("fault_free_e2e_s", fault_free.e2e_s),
            ("faulty_e2e_s", faulty.e2e_s),
            ("time_lost_s", faulty.e2e_s - fault_free.e2e_s),
            ("stall_s", stats.stall_s),
            ("retries", f64::from(stats.retries)),
            (
                "degraded_collectives",
                f64::from(stats.degraded_collectives),
            ),
            ("ecc_kernels", f64::from(stats.ecc_kernels)),
            ("fault_free_overlap_ratio", base_overlap),
            ("faulty_overlap_ratio", faulty_overlap),
            (
                "overlap_efficiency",
                if base_overlap > 0.0 {
                    faulty_overlap / base_overlap
                } else {
                    1.0
                },
            ),
        ]),
        counters_csv: counters_csv(&series),
        trace_json: to_chrome_trace_full(&faulty.trace, &notes, &tracks),
        events_jsonl,
    })
}

fn emit_recovery_epilogue(recorder: &mut Recorder, report: &RecoveryReport) {
    // Checkpoint writes pace the job every `interval` seconds of progress;
    // the event log places each back-to-back with its write cost.
    if let (Some(model), Some(interval)) = (&report.checkpoint, report.interval_s) {
        for seq in 1..=report.metrics.checkpoints_written {
            let start = f64::from(seq) * interval + f64::from(seq - 1) * model.write_s;
            recorder.bus().emit(&ObsEvent::Checkpoint {
                start_s: start,
                end_s: start + model.write_s,
                sequence: seq,
                bytes_per_gpu: model.bytes_per_gpu,
            });
        }
    }
    if let Some(abort) = &report.run.abort {
        if matches!(report.policy, RecoveryPolicy::CheckpointRestart { .. })
            && report.metrics.completed
        {
            let restored = report
                .interval_s
                .map_or(0, |t| (report.run.useful_s() / t).floor() as u32);
            recorder.bus().emit(&ObsEvent::Restore {
                t_s: abort.at_s,
                sequence: restored,
                ttr_s: report.metrics.time_to_recover_s,
            });
        }
    }
    if let Some(r) = &report.reshard {
        recorder.bus().emit(&ObsEvent::Reshard {
            t_s: report.run.abort.as_ref().map_or(0.0, |a| a.at_s),
            evicted: usize::from(r.evicted.0),
            from_ranks: r.from_ranks as usize,
            to_ranks: r.to_ranks as usize,
            bytes: r.bytes_before,
            reshard_s: r.reshard_s,
        });
    }
}

/// Runs `exp` under the fault scenario `spec` with the recovery policy
/// `policy` in force, fully instrumented.
///
/// The faulted phase is re-driven through the observed engine so the
/// event log and counter series carry its real lifecycle edges; the
/// recovery lifecycle (checkpoint writes, the restore, the elastic
/// re-shard) lands as an epilogue derived from the recovery report. The
/// trace covers the whole recovered job — including the mid-run
/// world-size transition for an elastic shrink — while the counter
/// series covers the faulted phase.
///
/// # Errors
///
/// [`RecoveryError::Experiment`] when the experiment is infeasible;
/// [`RecoveryError::ShrinkInfeasible`] when elastic continuation cannot
/// shrink the job. A watchdog abort is *not* an error: the policy's
/// answer to it is the artifact.
pub fn observe_recovery_cell(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
    policy: RecoveryPolicy,
    cfg: &ObserveConfig,
) -> Result<RunArtifact, RecoveryError> {
    let report = run_with_recovery(exp, spec, policy)?;

    let activation = exp.validate()?;
    let machine = exp.machine();
    let workload = exp.timeline(ExecutionMode::Overlapped, activation)?;
    let (mut recorder, events) = recorder_with_log();
    emit_fault_prologue(&mut recorder, &report.run.timeline);
    let mut injected = FaultyMachine::new(machine, report.run.timeline.clone());
    execute_model_observed(&workload, &mut injected, &mut recorder)
        .map_err(ExperimentError::from)?;
    emit_fault_epilogue(&mut recorder, &injected);
    emit_recovery_epilogue(&mut recorder, &report);

    let m = &report.metrics;
    let series = sample_epochs(recorder.epochs(), exp.n_gpus, cfg.sample_ms / 1e3);
    let tracks = counter_tracks(&series);
    let notes = fault_annotations(
        &report.run.timeline,
        &report.run.stats,
        report.run.faulty.e2e_s,
    );
    let descriptor = ResilienceCell::new(exp.clone(), *spec, policy).descriptor();
    let events_jsonl = events.borrow().clone();

    Ok(RunArtifact {
        manifest: Manifest {
            kind: "resilience",
            label: exp.label(),
            cell_key: olab_grid::fnv1a_64(descriptor.as_bytes()),
            descriptor,
            cell_schema_version: CELL_SCHEMA_VERSION,
            calibration_version: olab_gpu::CALIBRATION_VERSION,
            sample_ms: cfg.sample_ms,
            n_gpus: exp.n_gpus,
            makespan_s: m.wall_s,
            fault: Some(FaultManifest {
                seed: spec.seed,
                severity: format!("{:?}", spec.severity),
                fault_schema_version: olab_faults::FAULT_SCHEMA_VERSION,
                aborted: report.run.abort.as_ref().map(|a| {
                    format!(
                        "collective '{}' unreachable after {} retries at {:.3}s",
                        a.collective, a.retries, a.at_s
                    )
                }),
            }),
            recovery: Some(RecoveryManifest {
                policy: policy.descriptor(),
                completed: m.completed,
                final_world_size: m.final_world_size,
                checkpoints_written: m.checkpoints_written,
                recovery_schema_version: RECOVERY_SCHEMA_VERSION,
            }),
        },
        metrics_csv: metrics_csv(&[
            ("fault_free_e2e_s", m.fault_free_e2e_s),
            ("wall_s", m.wall_s),
            ("committed_samples", m.committed_samples),
            ("goodput_samples_per_s", m.goodput_samples_per_s),
            ("lost_work_s", m.lost_work_s),
            ("time_to_recover_s", m.time_to_recover_s),
            ("checkpoints_written", f64::from(m.checkpoints_written)),
            ("checkpoint_overhead_s", m.checkpoint_overhead_s),
            ("recovery_energy_j", m.recovery_energy_j),
            ("final_world_size", f64::from(m.final_world_size)),
            ("stall_s", report.run.stats.stall_s),
            ("retries", f64::from(report.run.stats.retries)),
        ]),
        counters_csv: counters_csv(&series),
        trace_json: to_chrome_trace_full(&report.trace, &notes, &tracks),
        events_jsonl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::COUNTER_NAMES;
    use olab_core::fmtutil::validate_json;
    use olab_core::Strategy;
    use olab_faults::Severity;
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn small() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    #[test]
    fn observe_cell_produces_a_complete_consistent_artifact() {
        let artifact = observe_cell(&small(), &ObserveConfig::default()).expect("observes");
        validate_json(&artifact.manifest.to_json()).expect("manifest JSON");
        validate_json(&artifact.trace_json).expect("trace JSON");
        assert!(artifact.manifest.makespan_s > 0.0);
        assert_eq!(artifact.manifest.kind, "experiment");
        // 5 counter tracks per GPU, each present in the trace.
        for gpu in 0..4 {
            for name in COUNTER_NAMES {
                assert!(
                    artifact.trace_json.contains(&format!("gpu{gpu}/{name}")),
                    "missing track gpu{gpu}/{name}"
                );
            }
        }
        assert!(artifact.trace_json.contains("\"ph\": \"C\""));
        // The event log has task and collective lifecycle edges.
        for kind in [
            "task_start",
            "task_end",
            "collective_start",
            "collective_end",
        ] {
            assert!(
                artifact.events_jsonl.contains(kind),
                "missing {kind} events"
            );
        }
        for line in artifact.events_jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(artifact.metrics_csv.contains("e2e_overlapped_s,"));
        assert!(artifact.counters_csv.starts_with("gpu,t_ms,power_w"));
        assert!(artifact.counters_csv.lines().count() > 4, "has samples");
    }

    #[test]
    fn artifacts_are_byte_identical_across_jobs_counts() {
        let exp = small();
        let serial = observe_cell(
            &exp,
            &ObserveConfig {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = observe_cell(
            &exp,
            &ObserveConfig {
                jobs: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn observed_metrics_match_the_unobserved_run() {
        let exp = small();
        let artifact = observe_cell(&exp, &ObserveConfig::default()).unwrap();
        let report = exp.run().unwrap();
        let row = format!("e2e_overlapped_s,{:.9}", report.metrics.e2e_overlapped_s);
        assert!(
            artifact.metrics_csv.contains(&row),
            "observation must not perturb the simulation: {row} not in\n{}",
            artifact.metrics_csv
        );
    }

    #[test]
    fn fault_cells_record_windows_watchdog_episodes_and_metrics() {
        let spec = FaultScenarioSpec::degrade(3, Severity::Severe);
        let artifact =
            observe_fault_cell(&small(), &spec, &ObserveConfig::default()).expect("observes");
        assert_eq!(artifact.manifest.kind, "fault");
        let fault = artifact.manifest.fault.as_ref().expect("fault block");
        assert_eq!(fault.seed, 3);
        assert_eq!(fault.severity, "Severe");
        validate_json(&artifact.manifest.to_json()).expect("manifest JSON");
        validate_json(&artifact.trace_json).expect("trace JSON");
        // Severe scenarios always include at least one fault window.
        assert!(
            artifact.events_jsonl.contains("fault_throttle")
                || artifact.events_jsonl.contains("fault_link"),
            "{}",
            artifact.events_jsonl
        );
        assert!(artifact.metrics_csv.contains("faulty_e2e_s,"));
        assert!(artifact.trace_json.contains("\"cat\": \"fault\""));
    }

    #[test]
    fn aborted_fault_cells_still_leave_a_record() {
        // A severe scenario always contains a dead link; under the abort
        // policy some seed in this range must kill the run (which one
        // depends on where the generated outage lands).
        let exp = small();
        let aborted = (1..=6).find_map(|seed| {
            let spec = FaultScenarioSpec::abort(seed, Severity::Severe);
            let artifact = observe_fault_cell(&exp, &spec, &ObserveConfig::default())
                .expect("record, not error");
            artifact
                .manifest
                .fault
                .as_ref()
                .is_some_and(|f| f.aborted.is_some())
                .then_some(artifact)
        });
        let artifact = aborted.expect("at least one seed aborts");
        assert!(
            artifact.events_jsonl.contains("watchdog_abort"),
            "{}",
            artifact.events_jsonl
        );
    }

    #[test]
    fn elastic_recovery_cells_record_the_shrink() {
        let spec = FaultScenarioSpec::abort(3, Severity::Severe);
        let artifact = observe_recovery_cell(
            &small(),
            &spec,
            RecoveryPolicy::ElasticContinue,
            &ObserveConfig::default(),
        )
        .expect("recovers");
        assert_eq!(artifact.manifest.kind, "resilience");
        let rec = artifact.manifest.recovery.as_ref().expect("recovery block");
        assert!(rec.completed);
        assert_eq!(rec.final_world_size, 3);
        assert!(rec.policy.contains("policy=elastic"));
        let fault = artifact.manifest.fault.as_ref().expect("fault block");
        assert!(fault.aborted.is_some(), "the scenario killed phase 1");
        validate_json(&artifact.manifest.to_json()).expect("manifest JSON");
        validate_json(&artifact.trace_json).expect("trace JSON");
        assert!(
            artifact.events_jsonl.contains("\"event\": \"reshard\""),
            "{}",
            artifact.events_jsonl
        );
        assert!(artifact.events_jsonl.contains("watchdog_abort"));
        for line in artifact.events_jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(artifact.metrics_csv.contains("goodput_samples_per_s,"));
        assert!(artifact.metrics_csv.contains("final_world_size,3.0"));
        // The stitched trace outlives the aborted phase-1 makespan.
        assert!(artifact.manifest.makespan_s > 0.0);
    }

    #[test]
    fn checkpoint_recovery_cells_log_the_writes_and_the_restore() {
        let spec = FaultScenarioSpec::abort(3, Severity::Severe);
        let exp = small();
        // An explicit quarter-makespan interval guarantees several writes.
        let probe = olab_resilience::run_with_recovery(
            &exp,
            &spec,
            RecoveryPolicy::CheckpointRestart { interval_s: None },
        )
        .expect("probes");
        let interval = probe.metrics.fault_free_e2e_s / 4.0;
        let artifact = observe_recovery_cell(
            &exp,
            &spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(interval),
            },
            &ObserveConfig::default(),
        )
        .expect("recovers");
        let rec = artifact.manifest.recovery.as_ref().expect("recovery block");
        assert!(rec.completed);
        assert!(rec.checkpoints_written >= 2, "{rec:?}");
        assert!(
            artifact.events_jsonl.contains("\"event\": \"checkpoint\""),
            "{}",
            artifact.events_jsonl
        );
        assert!(artifact.events_jsonl.contains("\"event\": \"restore\""));
        for line in artifact.events_jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn recovery_artifacts_are_deterministic() {
        let spec = FaultScenarioSpec::abort(3, Severity::Severe);
        let cfg = ObserveConfig::default();
        let a =
            observe_recovery_cell(&small(), &spec, RecoveryPolicy::ElasticContinue, &cfg).unwrap();
        let b =
            observe_recovery_cell(&small(), &spec, RecoveryPolicy::ElasticContinue, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_artifacts_are_deterministic_per_seed() {
        let spec = FaultScenarioSpec::degrade(11, Severity::Moderate);
        let cfg = ObserveConfig::default();
        let a = observe_fault_cell(&small(), &spec, &cfg).unwrap();
        let b = observe_fault_cell(&small(), &spec, &cfg).unwrap();
        assert_eq!(a, b);
        let c = observe_fault_cell(
            &small(),
            &FaultScenarioSpec::degrade(12, Severity::Moderate),
            &cfg,
        )
        .unwrap();
        assert_ne!(a.events_jsonl, c.events_jsonl);
    }
}
