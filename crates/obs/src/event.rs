//! The typed event bus: every notable thing a run does, as one enum.
//!
//! Events are *borrowed*: an [`ObsEvent`] holds references into the state
//! of whoever raised it, and [`EventBus::emit`] with no subscribed sinks
//! is a branch and a return — no clone, no allocation, nothing. Sinks
//! that keep an event copy what they need (usually by serializing it
//! straight into a buffer with [`to_jsonl`]).

use olab_core::fmtutil::json_escape;
use olab_sim::GpuId;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// One structured run event. Times are simulation seconds; all string and
/// slice fields borrow from the emitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent<'a> {
    /// A compute task was promoted to running.
    TaskStart {
        /// Simulation time, seconds.
        t_s: f64,
        /// Task id within the workload.
        id: u64,
        /// Task label.
        label: &'a str,
        /// Participating GPUs.
        gpus: &'a [GpuId],
    },
    /// A compute task retired.
    TaskEnd {
        /// Simulation time, seconds.
        t_s: f64,
        /// Task id within the workload.
        id: u64,
        /// Task label.
        label: &'a str,
        /// Participating GPUs.
        gpus: &'a [GpuId],
    },
    /// A collective (comm-stream task) started.
    CollectiveStart {
        /// Simulation time, seconds.
        t_s: f64,
        /// Task id within the workload.
        id: u64,
        /// Collective label.
        label: &'a str,
        /// Participating GPUs.
        gpus: &'a [GpuId],
    },
    /// A collective completed.
    CollectiveEnd {
        /// Simulation time, seconds.
        t_s: f64,
        /// Task id within the workload.
        id: u64,
        /// Collective label.
        label: &'a str,
        /// Participating GPUs.
        gpus: &'a [GpuId],
    },
    /// The DVFS governor moved a GPU to a different clock.
    DvfsTransition {
        /// Simulation time of the transition, seconds.
        t_s: f64,
        /// Device index.
        gpu: usize,
        /// Clock factor before the transition.
        from: f64,
        /// Clock factor after the transition.
        to: f64,
    },
    /// A straggler throttle window of the fault timeline (known up front,
    /// emitted as a prologue before the run).
    FaultThrottle {
        /// Window open, seconds.
        start_s: f64,
        /// Window close, seconds.
        end_s: f64,
        /// Throttled device.
        gpu: usize,
        /// Clock factor imposed inside the window.
        freq_factor: f64,
    },
    /// A link degradation/outage window of the fault timeline.
    FaultLink {
        /// Window open, seconds.
        start_s: f64,
        /// Window close, seconds (`None` = permanent).
        end_s: Option<f64>,
        /// The afflicted link, e.g. `gpu1<->gpu2`.
        link: &'a str,
        /// Surviving bandwidth fraction (`0` = outage).
        bw_factor: f64,
    },
    /// The watchdog observed a collective stalled on an outage.
    WatchdogStall {
        /// Stall start, seconds.
        start_s: f64,
        /// Stall resolution, seconds.
        end_s: f64,
        /// Label of the stalled collective.
        label: &'a str,
    },
    /// The watchdog exhausted retries and rebuilt the communicator on the
    /// surviving ring.
    WatchdogRebuild {
        /// Rebuild start, seconds.
        start_s: f64,
        /// Rebuild end, seconds.
        end_s: f64,
        /// Label of the degraded collective.
        label: &'a str,
    },
    /// The watchdog gave up and killed the run.
    WatchdogAbort {
        /// Abort time, seconds.
        t_s: f64,
        /// Label of the unreachable collective.
        label: &'a str,
        /// Retries spent before giving up.
        retries: u32,
    },
    /// A recovery policy drained durable state (weights + optimizer) to
    /// host storage.
    Checkpoint {
        /// Write start, seconds.
        start_s: f64,
        /// Write end (barrier included), seconds.
        end_s: f64,
        /// 1-based checkpoint sequence number within the job.
        sequence: u32,
        /// Durable state drained per GPU, bytes.
        bytes_per_gpu: f64,
    },
    /// The job restarted from its last completed checkpoint after a fatal
    /// fault.
    Restore {
        /// The failure time the restart recovers from, seconds.
        t_s: f64,
        /// Sequence number of the checkpoint restored (`0` = from
        /// scratch: the job died before its first write).
        sequence: u32,
        /// Time to recover: restore + re-init + warmup, seconds.
        ttr_s: f64,
    },
    /// A dead rank was evicted and its state re-sharded onto the
    /// survivors.
    Reshard {
        /// Re-shard start (the failure time), seconds.
        t_s: f64,
        /// The evicted rank.
        evicted: usize,
        /// World size before the shrink.
        from_ranks: usize,
        /// World size after the shrink.
        to_ranks: usize,
        /// Total durable state redistributed, bytes.
        bytes: f64,
        /// Wall-clock of the re-shard exchange, seconds.
        reshard_s: f64,
    },
    /// A sweep cell was served from cache.
    CacheHit {
        /// Cache tier label (`memory-hit` / `disk-hit`).
        tier: &'a str,
        /// The cell's canonical descriptor.
        descriptor: &'a str,
    },
    /// A sweep cell missed the cache and was simulated.
    CacheMiss {
        /// The cell's canonical descriptor.
        descriptor: &'a str,
    },
    /// A guarded sweep cell is starting a retry attempt after a failed
    /// earlier attempt.
    CellRetry {
        /// The cell's canonical descriptor.
        descriptor: &'a str,
        /// 1-based retry attempt (the first retry is 1).
        attempt: u32,
    },
    /// A guarded sweep cell exhausted every attempt against its per-cell
    /// wall-clock deadline.
    CellTimeout {
        /// The cell's canonical descriptor.
        descriptor: &'a str,
        /// The per-attempt deadline that was missed, seconds.
        deadline_s: f64,
        /// Total attempts made.
        attempts: u32,
    },
    /// The size-cap policy evicted cold entries from the disk cache tier.
    CacheEvict {
        /// Entries evicted by this pass.
        evicted: usize,
        /// Bytes left on disk after the pass.
        disk_bytes: u64,
        /// The configured cap, bytes.
        max_bytes: u64,
    },
    /// The disk cache tier latched into memory-only degradation (e.g.
    /// ENOSPC or permission loss on write).
    CacheDegraded {
        /// Human-readable reason recorded by the latch.
        reason: &'a str,
    },
    /// A serving front-end admitted a cell request (`olab serve`).
    RequestStart {
        /// The requested cell's canonical descriptor.
        descriptor: &'a str,
        /// The request's own deadline, milliseconds (0 = none given).
        timeout_ms: u64,
    },
    /// A serving front-end finished a cell request, one way or another.
    RequestDone {
        /// The requested cell's canonical descriptor.
        descriptor: &'a str,
        /// The HTTP status written back.
        status: u16,
        /// How it resolved (`executed`, `coalesced`, `cached`, `shed`,
        /// `timeout`, `error`).
        outcome: &'a str,
        /// Wall-clock from admission to response, milliseconds.
        wall_ms: u64,
    },
}

impl ObsEvent<'_> {
    /// The stable lowercase kind tag used in serialized streams.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::TaskStart { .. } => "task_start",
            ObsEvent::TaskEnd { .. } => "task_end",
            ObsEvent::CollectiveStart { .. } => "collective_start",
            ObsEvent::CollectiveEnd { .. } => "collective_end",
            ObsEvent::DvfsTransition { .. } => "dvfs_transition",
            ObsEvent::FaultThrottle { .. } => "fault_throttle",
            ObsEvent::FaultLink { .. } => "fault_link",
            ObsEvent::WatchdogStall { .. } => "watchdog_stall",
            ObsEvent::WatchdogRebuild { .. } => "watchdog_rebuild",
            ObsEvent::WatchdogAbort { .. } => "watchdog_abort",
            ObsEvent::Checkpoint { .. } => "checkpoint",
            ObsEvent::Restore { .. } => "restore",
            ObsEvent::Reshard { .. } => "reshard",
            ObsEvent::CacheHit { .. } => "cache_hit",
            ObsEvent::CacheMiss { .. } => "cache_miss",
            ObsEvent::CellRetry { .. } => "cell_retry",
            ObsEvent::CellTimeout { .. } => "cell_timeout",
            ObsEvent::CacheEvict { .. } => "cache_evict",
            ObsEvent::CacheDegraded { .. } => "cache_degraded",
            ObsEvent::RequestStart { .. } => "request_start",
            ObsEvent::RequestDone { .. } => "request_done",
        }
    }
}

/// Serializes one event as a single JSON line (no trailing newline).
///
/// Times are fixed to microsecond precision so the stream is byte-stable
/// across platforms; the output is valid JSON per
/// [`olab_core::fmtutil::validate_json`].
pub fn to_jsonl(event: &ObsEvent<'_>) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"event\": \"{}\"", event.kind());
    let gpu_list = |out: &mut String, gpus: &[GpuId]| {
        out.push_str(", \"gpus\": [");
        for (i, g) in gpus.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", g.0);
        }
        out.push(']');
    };
    match *event {
        ObsEvent::TaskStart {
            t_s,
            id,
            label,
            gpus,
        }
        | ObsEvent::TaskEnd {
            t_s,
            id,
            label,
            gpus,
        }
        | ObsEvent::CollectiveStart {
            t_s,
            id,
            label,
            gpus,
        }
        | ObsEvent::CollectiveEnd {
            t_s,
            id,
            label,
            gpus,
        } => {
            let _ = write!(
                out,
                ", \"t_s\": {t_s:.6}, \"id\": {id}, \"label\": \"{}\"",
                json_escape(label)
            );
            gpu_list(&mut out, gpus);
        }
        ObsEvent::DvfsTransition { t_s, gpu, from, to } => {
            let _ = write!(
                out,
                ", \"t_s\": {t_s:.6}, \"gpu\": {gpu}, \"from\": {from:.6}, \"to\": {to:.6}"
            );
        }
        ObsEvent::FaultThrottle {
            start_s,
            end_s,
            gpu,
            freq_factor,
        } => {
            let _ = write!(
                out,
                ", \"start_s\": {start_s:.6}, \"end_s\": {end_s:.6}, \"gpu\": {gpu}, \
                 \"freq_factor\": {freq_factor:.6}"
            );
        }
        ObsEvent::FaultLink {
            start_s,
            end_s,
            link,
            bw_factor,
        } => {
            let _ = write!(out, ", \"start_s\": {start_s:.6}, \"end_s\": ");
            match end_s {
                Some(e) => {
                    let _ = write!(out, "{e:.6}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ", \"link\": \"{}\", \"bw_factor\": {bw_factor:.6}",
                json_escape(link)
            );
        }
        ObsEvent::WatchdogStall {
            start_s,
            end_s,
            label,
        }
        | ObsEvent::WatchdogRebuild {
            start_s,
            end_s,
            label,
        } => {
            let _ = write!(
                out,
                ", \"start_s\": {start_s:.6}, \"end_s\": {end_s:.6}, \"label\": \"{}\"",
                json_escape(label)
            );
        }
        ObsEvent::WatchdogAbort {
            t_s,
            label,
            retries,
        } => {
            let _ = write!(
                out,
                ", \"t_s\": {t_s:.6}, \"label\": \"{}\", \"retries\": {retries}",
                json_escape(label)
            );
        }
        ObsEvent::Checkpoint {
            start_s,
            end_s,
            sequence,
            bytes_per_gpu,
        } => {
            let _ = write!(
                out,
                ", \"start_s\": {start_s:.6}, \"end_s\": {end_s:.6}, \
                 \"sequence\": {sequence}, \"bytes_per_gpu\": {bytes_per_gpu:.0}"
            );
        }
        ObsEvent::Restore {
            t_s,
            sequence,
            ttr_s,
        } => {
            let _ = write!(
                out,
                ", \"t_s\": {t_s:.6}, \"sequence\": {sequence}, \"ttr_s\": {ttr_s:.6}"
            );
        }
        ObsEvent::Reshard {
            t_s,
            evicted,
            from_ranks,
            to_ranks,
            bytes,
            reshard_s,
        } => {
            let _ = write!(
                out,
                ", \"t_s\": {t_s:.6}, \"evicted\": {evicted}, \"from_ranks\": {from_ranks}, \
                 \"to_ranks\": {to_ranks}, \"bytes\": {bytes:.0}, \"reshard_s\": {reshard_s:.6}"
            );
        }
        ObsEvent::CacheHit { tier, descriptor } => {
            let _ = write!(
                out,
                ", \"tier\": \"{}\", \"descriptor\": \"{}\"",
                json_escape(tier),
                json_escape(descriptor)
            );
        }
        ObsEvent::CacheMiss { descriptor } => {
            let _ = write!(out, ", \"descriptor\": \"{}\"", json_escape(descriptor));
        }
        ObsEvent::CellRetry {
            descriptor,
            attempt,
        } => {
            let _ = write!(
                out,
                ", \"descriptor\": \"{}\", \"attempt\": {attempt}",
                json_escape(descriptor)
            );
        }
        ObsEvent::CellTimeout {
            descriptor,
            deadline_s,
            attempts,
        } => {
            let _ = write!(
                out,
                ", \"descriptor\": \"{}\", \"deadline_s\": {deadline_s:.6}, \
                 \"attempts\": {attempts}",
                json_escape(descriptor)
            );
        }
        ObsEvent::CacheEvict {
            evicted,
            disk_bytes,
            max_bytes,
        } => {
            let _ = write!(
                out,
                ", \"evicted\": {evicted}, \"disk_bytes\": {disk_bytes}, \
                 \"max_bytes\": {max_bytes}"
            );
        }
        ObsEvent::CacheDegraded { reason } => {
            let _ = write!(out, ", \"reason\": \"{}\"", json_escape(reason));
        }
        ObsEvent::RequestStart {
            descriptor,
            timeout_ms,
        } => {
            let _ = write!(
                out,
                ", \"descriptor\": \"{}\", \"timeout_ms\": {timeout_ms}",
                json_escape(descriptor)
            );
        }
        ObsEvent::RequestDone {
            descriptor,
            status,
            outcome,
            wall_ms,
        } => {
            let _ = write!(
                out,
                ", \"descriptor\": \"{}\", \"status\": {status}, \"outcome\": \"{}\", \
                 \"wall_ms\": {wall_ms}",
                json_escape(descriptor),
                json_escape(outcome)
            );
        }
    }
    out.push('}');
    out
}

/// Receives typed run events. Observers run on the thread that raised the
/// event; sweeps observe per-cell, so implementations need no internal
/// synchronization.
pub trait Observer {
    /// One event happened. The borrow ends when the call returns — copy
    /// what you keep.
    fn on_event(&mut self, event: &ObsEvent<'_>);
}

/// A fan-out bus of boxed [`Observer`] sinks.
///
/// With no subscribers, [`EventBus::emit`] does nothing and allocates
/// nothing — instrumented code can emit unconditionally.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn Observer>>,
}

impl EventBus {
    /// An empty bus (emitting is free until someone subscribes).
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Subscribes a sink; events are delivered in subscription order.
    pub fn subscribe(&mut self, sink: Box<dyn Observer>) {
        self.sinks.push(sink);
    }

    /// Number of subscribed sinks.
    pub fn sinks(&self) -> usize {
        self.sinks.len()
    }

    /// Delivers `event` to every sink (no-op, no allocation when empty).
    pub fn emit(&mut self, event: &ObsEvent<'_>) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// A sink serializing every event into a shared JSONL buffer (one event
/// per line, in emission order).
///
/// The buffer is handed out as an `Rc<RefCell<String>>` so the driver can
/// keep reading it after the sink is boxed into a bus:
///
/// ```
/// use olab_obs::{EventBus, JsonlSink, ObsEvent};
/// let (sink, buf) = JsonlSink::new();
/// let mut bus = EventBus::new();
/// bus.subscribe(Box::new(sink));
/// bus.emit(&ObsEvent::CacheMiss { descriptor: "cell" });
/// assert!(buf.borrow().starts_with("{\"event\": \"cache_miss\""));
/// ```
#[derive(Debug)]
pub struct JsonlSink {
    buf: Rc<RefCell<String>>,
}

impl JsonlSink {
    /// A sink plus the shared buffer it appends to.
    pub fn new() -> (Self, Rc<RefCell<String>>) {
        let buf = Rc::new(RefCell::new(String::new()));
        (
            JsonlSink {
                buf: Rc::clone(&buf),
            },
            buf,
        )
    }
}

impl Observer for JsonlSink {
    fn on_event(&mut self, event: &ObsEvent<'_>) {
        let mut buf = self.buf.borrow_mut();
        buf.push_str(&to_jsonl(event));
        buf.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::fmtutil::validate_json;

    fn sample_events<'a>(gpus: &'a [GpuId]) -> Vec<ObsEvent<'a>> {
        vec![
            ObsEvent::TaskStart {
                t_s: 0.0,
                id: 0,
                label: "fwd \"L0\"",
                gpus,
            },
            ObsEvent::CollectiveStart {
                t_s: 0.25,
                id: 1,
                label: "ag L1",
                gpus,
            },
            ObsEvent::DvfsTransition {
                t_s: 0.5,
                gpu: 2,
                from: 1.0,
                to: 0.75,
            },
            ObsEvent::FaultThrottle {
                start_s: 0.1,
                end_s: 0.9,
                gpu: 0,
                freq_factor: 0.5,
            },
            ObsEvent::FaultLink {
                start_s: 0.2,
                end_s: None,
                link: "gpu1<->gpu2",
                bw_factor: 0.0,
            },
            ObsEvent::WatchdogStall {
                start_s: 0.2,
                end_s: 0.4,
                label: "ar",
            },
            ObsEvent::WatchdogAbort {
                t_s: 0.4,
                label: "ar",
                retries: 3,
            },
            ObsEvent::Checkpoint {
                start_s: 0.3,
                end_s: 0.35,
                sequence: 2,
                bytes_per_gpu: 1.5e9,
            },
            ObsEvent::Restore {
                t_s: 0.4,
                sequence: 2,
                ttr_s: 0.12,
            },
            ObsEvent::Reshard {
                t_s: 0.4,
                evicted: 2,
                from_ranks: 4,
                to_ranks: 3,
                bytes: 6.0e9,
                reshard_s: 0.08,
            },
            ObsEvent::CacheHit {
                tier: "memory-hit",
                descriptor: "olab-cell ...",
            },
            ObsEvent::CellRetry {
                descriptor: "olab-cell ...",
                attempt: 2,
            },
            ObsEvent::CellTimeout {
                descriptor: "olab-cell ...",
                deadline_s: 1.5,
                attempts: 3,
            },
            ObsEvent::CacheEvict {
                evicted: 7,
                disk_bytes: 4096,
                max_bytes: 8192,
            },
            ObsEvent::CacheDegraded {
                reason: "no space left on device",
            },
            ObsEvent::RequestStart {
                descriptor: "olab-cell ...",
                timeout_ms: 2500,
            },
            ObsEvent::RequestDone {
                descriptor: "olab-cell ...",
                status: 200,
                outcome: "coalesced",
                wall_ms: 41,
            },
        ]
    }

    #[test]
    fn every_event_serializes_to_valid_json_with_its_kind() {
        let gpus = [GpuId(0), GpuId(3)];
        for event in sample_events(&gpus) {
            let line = to_jsonl(&event);
            validate_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(
                line.contains(&format!("\"event\": \"{}\"", event.kind())),
                "{line}"
            );
        }
    }

    #[test]
    fn labels_with_quotes_are_escaped() {
        let line = to_jsonl(&ObsEvent::TaskStart {
            t_s: 0.0,
            id: 9,
            label: "fwd \"block\"",
            gpus: &[],
        });
        validate_json(&line).expect("escaped label must stay valid JSON");
        assert!(line.contains("fwd \\\"block\\\""));
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_event_in_order() {
        let (sink, buf) = JsonlSink::new();
        let mut bus = EventBus::new();
        bus.subscribe(Box::new(sink));
        assert_eq!(bus.sinks(), 1);
        let gpus = [GpuId(1)];
        for event in sample_events(&gpus) {
            bus.emit(&event);
        }
        let text = buf.borrow();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events(&gpus).len());
        for line in &lines {
            validate_json(line).expect("each line is standalone JSON");
        }
        assert!(lines[0].contains("task_start"));
        assert!(lines[1].contains("collective_start"));
    }

    #[test]
    fn empty_bus_emit_is_a_no_op() {
        let mut bus = EventBus::new();
        bus.emit(&ObsEvent::CacheMiss { descriptor: "d" });
        assert_eq!(bus.sinks(), 0);
    }
}
