//! Sweep progress sinks: live stderr status and a JSONL progress stream.
//!
//! These implement [`olab_grid::ProgressSink`] and are wired into sweeps
//! via `Sweep::run_with_progress` / `Executor::run_with_progress`.
//! Progress updates arrive in *completion* order from worker threads —
//! the stream is wall-clock ordered and explicitly **not** part of the
//! determinism guarantee (the artifacts are; the progress feed is not).
//! Panicked cells are isolated by the pool and surface only in the final
//! sweep stats, never through these sinks.

use crate::event::{to_jsonl, ObsEvent};
use olab_core::fmtutil::json_escape;
use olab_grid::{CellProgress, ProgressSink};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;

/// Writes a one-line progress update to stderr for every `every`-th cell
/// (and always for the last one), overwriting in place with `\r`.
#[derive(Debug)]
pub struct StderrProgress {
    every: usize,
    out: Mutex<std::io::Stderr>,
}

impl StderrProgress {
    /// A sink printing every `every`-th update (0 is treated as 1).
    pub fn new(every: usize) -> Self {
        StderrProgress {
            every: every.max(1),
            out: Mutex::new(std::io::stderr()),
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new(1)
    }
}

impl ProgressSink for StderrProgress {
    fn on_cell(&self, p: &CellProgress<'_>) {
        let last = p.completed == p.total;
        if !last && !p.completed.is_multiple_of(self.every) {
            return;
        }
        let mut out = self.out.lock().unwrap();
        let _ = write!(
            out,
            "\r[olab] {}/{} cells ({}, {:.1}s)",
            p.completed,
            p.total,
            p.resolution.label(),
            p.wall_s
        );
        if last {
            let _ = writeln!(out);
        }
        let _ = out.flush();
    }

    fn on_degraded(&self, reason: &str) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(
            out,
            "\n[olab] warning: disk cache degraded to memory-only ({reason})"
        );
        let _ = out.flush();
    }
}

/// Appends one JSON object per resolved cell to any writer (typically a
/// `progress.jsonl` file): completion counter, input index, descriptor,
/// resolution, attempts, and wall-clock seconds since the sweep started.
///
/// Guard and cache-health lifecycle events (retries, timeouts, evictions,
/// degradation) are interleaved into the same stream as typed
/// [`ObsEvent`] lines, so one file tells the whole story of a hardened
/// sweep.
#[derive(Debug)]
pub struct JsonlProgress<W: std::io::Write + Send> {
    out: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlProgress<W> {
    /// A sink streaming into `out`.
    pub fn new(out: W) -> Self {
        JsonlProgress {
            out: Mutex::new(out),
        }
    }

    /// Recovers the writer (flushing implicit in drop for files).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl<W: std::io::Write + Send> JsonlProgress<W> {
    /// Appends one typed [`ObsEvent`] line to the stream. Public so
    /// embedders (e.g. `olab serve`) can interleave their own lifecycle
    /// events — request admissions, completions — with the cell lines.
    pub fn write_event(&self, event: &ObsEvent<'_>) {
        let mut line = to_jsonl(event);
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
    }
}

impl<W: std::io::Write + Send> ProgressSink for JsonlProgress<W> {
    fn on_cell(&self, p: &CellProgress<'_>) {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"completed\": {}, \"total\": {}, \"index\": {}, \"descriptor\": \"{}\", \
             \"resolution\": \"{}\", \"attempts\": {}, \"wall_s\": {:.3}}}",
            p.completed,
            p.total,
            p.index,
            json_escape(p.descriptor),
            p.resolution.label(),
            p.attempts,
            p.wall_s
        );
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
    }

    fn on_retry(&self, _index: usize, descriptor: &str, attempt: u32) {
        self.write_event(&ObsEvent::CellRetry {
            descriptor,
            attempt,
        });
    }

    fn on_timeout(&self, _index: usize, descriptor: &str, deadline_s: f64, attempts: u32) {
        self.write_event(&ObsEvent::CellTimeout {
            descriptor,
            deadline_s,
            attempts,
        });
    }

    fn on_evict(&self, evicted: usize, disk_bytes: u64, max_bytes: u64) {
        self.write_event(&ObsEvent::CacheEvict {
            evicted,
            disk_bytes,
            max_bytes,
        });
    }

    fn on_degraded(&self, reason: &str) {
        self.write_event(&ObsEvent::CacheDegraded { reason });
    }
}

/// Fans one progress update out to several sinks, in order.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn ProgressSink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiSink::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn ProgressSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProgressSink for MultiSink {
    fn on_cell(&self, p: &CellProgress<'_>) {
        for sink in &self.sinks {
            sink.on_cell(p);
        }
    }

    fn on_retry(&self, index: usize, descriptor: &str, attempt: u32) {
        for sink in &self.sinks {
            sink.on_retry(index, descriptor, attempt);
        }
    }

    fn on_timeout(&self, index: usize, descriptor: &str, deadline_s: f64, attempts: u32) {
        for sink in &self.sinks {
            sink.on_timeout(index, descriptor, deadline_s, attempts);
        }
    }

    fn on_evict(&self, evicted: usize, disk_bytes: u64, max_bytes: u64) {
        for sink in &self.sinks {
            sink.on_evict(evicted, disk_bytes, max_bytes);
        }
    }

    fn on_degraded(&self, reason: &str) {
        for sink in &self.sinks {
            sink.on_degraded(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::fmtutil::validate_json;
    use olab_grid::CellResolution;

    fn progress(completed: usize, total: usize) -> CellProgress<'static> {
        CellProgress {
            completed,
            total,
            index: completed - 1,
            descriptor: "olab-cell \"x\"",
            resolution: CellResolution::Simulated,
            attempts: 1,
            wall_s: 0.5,
        }
    }

    #[test]
    fn jsonl_progress_streams_valid_lines() {
        let sink = JsonlProgress::new(Vec::new());
        sink.on_cell(&progress(1, 2));
        sink.on_cell(&progress(2, 2));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"completed\": 1"));
        assert!(lines[1].contains("\"resolution\": \"simulated\""));
    }

    #[test]
    fn jsonl_progress_interleaves_guard_events_as_typed_lines() {
        let sink = JsonlProgress::new(Vec::new());
        sink.on_cell(&progress(1, 2));
        sink.on_retry(1, "olab-cell y", 1);
        sink.on_timeout(1, "olab-cell y", 2.0, 3);
        sink.on_cell(&progress(2, 2));
        sink.on_evict(4, 2048, 4096);
        sink.on_degraded("no space left on device");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[1].contains("\"event\": \"cell_retry\""));
        assert!(lines[2].contains("\"event\": \"cell_timeout\""));
        assert!(lines[2].contains("\"attempts\": 3"));
        assert!(lines[4].contains("\"event\": \"cache_evict\""));
        assert!(lines[5].contains("\"event\": \"cache_degraded\""));
    }

    #[test]
    fn multi_sink_forwards_guard_hooks_to_every_member() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting(std::sync::Arc<AtomicUsize>);
        impl ProgressSink for Counting {
            fn on_cell(&self, _: &CellProgress<'_>) {}
            fn on_retry(&self, _: usize, _: &str, _: u32) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
            fn on_timeout(&self, _: usize, _: &str, _: f64, _: u32) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
            fn on_evict(&self, _: usize, _: u64, _: u64) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
            fn on_degraded(&self, _: &str) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let mut multi = MultiSink::new();
        multi.push(Box::new(Counting(std::sync::Arc::clone(&count))));
        multi.push(Box::new(Counting(std::sync::Arc::clone(&count))));
        multi.on_retry(0, "d", 1);
        multi.on_timeout(0, "d", 1.0, 2);
        multi.on_evict(1, 2, 3);
        multi.on_degraded("r");
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn multi_sink_fans_out_to_every_member() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting(std::sync::Arc<AtomicUsize>);
        impl ProgressSink for Counting {
            fn on_cell(&self, _: &CellProgress<'_>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let mut multi = MultiSink::new();
        assert!(multi.is_empty());
        multi.push(Box::new(Counting(std::sync::Arc::clone(&count))));
        multi.push(Box::new(Counting(std::sync::Arc::clone(&count))));
        assert_eq!(multi.len(), 2);
        multi.on_cell(&progress(1, 1));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
