//! The zero-overhead contract of the event bus: emitting to a bus with no
//! subscribers performs no heap allocation at all. Events are borrowed
//! enums built on the stack; nothing is cloned until a sink asks for it.
//!
//! Pinned with a counting global allocator (the library itself forbids
//! unsafe code; this integration test is a separate crate and may count
//! allocations the only way Rust allows).

use olab_obs::{EventBus, ObsEvent};
use olab_sim::GpuId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn emitting_to_an_empty_bus_allocates_nothing() {
    let mut bus = EventBus::new();
    let gpus = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
    let label = String::from("all_gather layer7"); // allocated before measuring

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        bus.emit(&ObsEvent::CollectiveStart {
            t_s: i as f64 * 1e-3,
            id: i,
            label: &label,
            gpus: &gpus,
        });
        bus.emit(&ObsEvent::DvfsTransition {
            t_s: i as f64 * 1e-3,
            gpu: 0,
            from: 1.0,
            to: 0.75,
        });
        bus.emit(&ObsEvent::CollectiveEnd {
            t_s: i as f64 * 1e-3,
            id: i,
            label: &label,
            gpus: &gpus,
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "an unobserved event bus must be allocation-free"
    );
}
