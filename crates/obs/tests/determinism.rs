//! End-to-end determinism of observed runs: the artifact a cell leaves is
//! a pure function of the cell, never of sweep parallelism, and the trace
//! it contains is well-formed JSON with full counter coverage.

use olab_core::fmtutil::validate_json;
use olab_core::{Experiment, Strategy, Sweep};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_obs::{observe_cell, JsonlProgress, ObserveConfig, ARTIFACT_FILES, COUNTER_NAMES};
use std::fs;

fn cell() -> Experiment {
    // A shrunk fig. 7 shape (MI250, LLaMA-2 13B is too heavy for a unit
    // gate; GPT-3 XL keeps the same FSDP structure).
    Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
}

#[test]
fn artifact_directories_are_byte_identical_serial_vs_parallel() {
    let base = std::env::temp_dir().join(format!("olab-obs-det-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);

    let serial = observe_cell(
        &cell(),
        &ObserveConfig {
            jobs: 1,
            ..Default::default()
        },
    )
    .expect("serial observe");
    let parallel = observe_cell(
        &cell(),
        &ObserveConfig {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("parallel observe");

    let dir_a = base.join("serial");
    let dir_b = base.join("parallel");
    serial.write_to(&dir_a).expect("write serial");
    parallel.write_to(&dir_b).expect("write parallel");
    for name in ARTIFACT_FILES {
        let a = fs::read(dir_a.join(name)).expect(name);
        let b = fs::read(dir_b.join(name)).expect(name);
        assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 4");
        assert!(!a.is_empty() || name == "events.jsonl", "{name} is empty");
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn trace_is_valid_json_with_all_counter_tracks_per_gpu() {
    let artifact = observe_cell(&cell(), &ObserveConfig::default()).expect("observes");
    validate_json(&artifact.trace_json)
        .unwrap_or_else(|e| panic!("trace.json is not valid JSON: {e}"));
    // The acceptance bar is >= 3 counter tracks per GPU; we ship 5.
    assert!(COUNTER_NAMES.len() >= 3);
    for gpu in 0..4 {
        for name in COUNTER_NAMES {
            assert!(
                artifact
                    .trace_json
                    .contains(&format!("\"gpu{gpu}/{name}\"")),
                "missing counter track gpu{gpu}/{name}"
            );
        }
    }
}

#[test]
fn sweep_progress_stream_does_not_perturb_outcomes() {
    let cells = vec![cell(), cell().with_seq(128)];
    let quiet = Sweep::new().with_jobs(2).run(&cells);
    let sink = JsonlProgress::new(Vec::new());
    let observed = Sweep::new()
        .with_jobs(2)
        .run_with_progress(&cells, Some(&sink));
    assert_eq!(quiet.cells, observed.cells, "sink must not change results");
    assert!(observed.stats.observer_s > 0.0);
    assert_eq!(quiet.stats.observer_s, 0.0);

    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), cells.len());
    for line in lines {
        validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(line.contains("\"total\": 2"));
    }
}
