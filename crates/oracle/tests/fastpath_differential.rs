//! The fast-path differential suite: the analytic fast path must be
//! observationally equivalent to the event loop on every eligible cell,
//! and must *never* fire on cells it cannot legally serve.
//!
//! The fast-path switch and run counters are process-wide atomics, so
//! every test here serializes on one mutex: this binary is the only
//! process whose tests toggle `set_enabled` or assert on counter deltas,
//! and within the binary the lock keeps the deltas attributable.

use olab_core::fastpath;
use olab_core::{execute, execute_event_loop, execute_observed, Experiment, Jitter, Strategy};
use olab_gpu::SkuKind;
use olab_grid::Pool;
use olab_models::ModelPreset;
use olab_oracle::{check_fastpath_equivalence, random_experiment};
use olab_parallel::ExecutionMode;
use olab_sim::{EngineObserver, GpuCounters};
use std::sync::Mutex;

/// Serializes the tests in this binary (they share process-global
/// fast-path state). `unwrap_or_else(into_inner)` keeps a poisoned lock
/// usable: a failed test must not cascade into lock panics elsewhere.
static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    fastpath::set_enabled(true);
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A stock FSDP cell whose overlapped timeline genuinely overlaps compute
/// and communication (the executor tests pin overlap_ratio > 0.02 on it).
fn overlapping_cell() -> Experiment {
    Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(128)
}

#[test]
fn fast_path_matches_event_loop_on_200_contention_free_cells() {
    let _guard = locked();
    // Collect feasible cells first (OOM cells are legitimate skips), then
    // fan the comparisons across the pool. 260 seeds leave slack above the
    // 200-cell floor.
    let cells: Vec<Experiment> = (0..260u64)
        .map(random_experiment)
        .filter(|e| e.validate().is_ok())
        .collect();
    assert!(cells.len() >= 200, "only {} feasible cells", cells.len());

    let fast_before = fastpath::fast_runs();
    let reports = Pool::with_available_parallelism().map(&cells, |exp| {
        check_fastpath_equivalence(exp).expect("validated cell must run")
    });
    let fast_served = fastpath::fast_runs() - fast_before;

    let dirty: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| r.to_string())
        .collect();
    assert!(
        dirty.is_empty(),
        "{} of {} cells diverged between the fast path and the event loop:\n{}",
        dirty.len(),
        reports.len(),
        dirty.join("\n")
    );
    // Each cell compares two eligible shapes (sequential/contended and
    // overlapped/uncontended); the fast path must have actually served the
    // overwhelming majority — a trivially-green suite where everything
    // fell back to the event loop would prove nothing.
    assert!(
        fast_served >= cells.len() as u64,
        "fast path served only {fast_served} of {} eligible runs",
        2 * cells.len()
    );
}

#[test]
fn contended_overlap_never_takes_the_fast_path() {
    let _guard = locked();
    let exp = overlapping_cell();
    let policy = exp.validate().expect("cell fits");
    let w = exp
        .timeline(ExecutionMode::Overlapped, policy)
        .expect("timeline builds");
    let machine = exp.machine();

    let fast_before = fastpath::fast_runs();
    let loop_before = fastpath::event_loop_runs();
    let routed = execute(&w, &machine).expect("runs");
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        0,
        "a contended overlapped schedule must fall back to the event loop"
    );
    assert_eq!(fastpath::event_loop_runs() - loop_before, 1);

    // And the fallback is exactly the reference engine.
    let reference = execute_event_loop(&w, &machine).expect("runs");
    assert_eq!(routed.e2e_s, reference.e2e_s);
}

#[test]
fn jittered_machines_never_take_the_fast_path() {
    let _guard = locked();
    let exp = overlapping_cell();
    let policy = exp.validate().expect("cell fits");
    let w = exp
        .timeline(ExecutionMode::Sequential, policy)
        .expect("timeline builds");
    let jittered = exp.machine().with_jitter(Jitter {
        seed: 11,
        sigma: 0.02,
    });

    let fast_before = fastpath::fast_runs();
    execute(&w, &jittered).expect("runs");
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        0,
        "jitter only exists epoch by epoch; the closed form must decline"
    );
}

#[test]
fn freq_capped_machines_never_take_the_fast_path() {
    let _guard = locked();
    let exp = overlapping_cell();
    let policy = exp.validate().expect("cell fits");
    let w = exp
        .timeline(ExecutionMode::Sequential, policy)
        .expect("timeline builds");
    let mut capped = exp.machine();
    capped.set_gpu_freq_caps(vec![0.6; exp.n_gpus]);

    let fast_before = fastpath::fast_runs();
    execute(&w, &capped).expect("runs");
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        0,
        "transient frequency caps are event-loop-only state"
    );
}

/// An enabled observer that merely counts callbacks — enough to force the
/// event loop (only it can drive task edges and epochs).
#[derive(Default)]
struct CountingObserver {
    starts: usize,
    epochs: usize,
}

impl EngineObserver for CountingObserver {
    const ENABLED: bool = true;

    fn on_task_start(
        &mut self,
        _now_s: f64,
        _id: olab_sim::TaskId,
        _label: &str,
        _participants: &[olab_sim::GpuId],
        _stream: olab_sim::StreamKind,
    ) {
        self.starts += 1;
    }

    fn on_epoch(&mut self, _start_s: f64, _end_s: f64, _counters: &[GpuCounters]) {
        self.epochs += 1;
    }
}

#[test]
fn observed_runs_never_take_the_fast_path() {
    let _guard = locked();
    let exp = overlapping_cell();
    let policy = exp.validate().expect("cell fits");
    let w = exp
        .timeline(ExecutionMode::Sequential, policy)
        .expect("timeline builds");
    let machine = exp.machine();

    let mut obs = CountingObserver::default();
    let fast_before = fastpath::fast_runs();
    execute_observed(&w, &machine, &mut obs).expect("runs");
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        0,
        "an enabled observer needs the event loop's callbacks"
    );
    assert_eq!(obs.starts, w.tasks().len(), "observer saw every task");
    assert!(obs.epochs > 0, "observer saw the epochs");
}

#[test]
fn disabling_the_switch_forces_the_event_loop_with_identical_results() {
    let _guard = locked();
    let exp = overlapping_cell();
    let policy = exp.validate().expect("cell fits");
    let w = exp
        .timeline(ExecutionMode::Sequential, policy)
        .expect("timeline builds");
    let machine = exp.machine();

    let fast_before = fastpath::fast_runs();
    let routed = execute(&w, &machine).expect("runs");
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        1,
        "a sequential schedule on a deterministic machine is eligible"
    );

    fastpath::set_enabled(false);
    let disabled_before = fastpath::fast_runs();
    let reference = execute(&w, &machine).expect("runs");
    fastpath::set_enabled(true);
    assert_eq!(fastpath::fast_runs() - disabled_before, 0);

    // Within oracle tolerance, not bit-identical: the event loop
    // accumulates `now += dt` per epoch while the closed form sums spans.
    let tol = 1e-9 * reference.e2e_s.abs() + 1e-9;
    assert!(
        (routed.e2e_s - reference.e2e_s).abs() <= tol,
        "{} vs {}",
        routed.e2e_s,
        reference.e2e_s
    );
}
