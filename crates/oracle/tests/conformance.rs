//! The conformance suite: every registry-grid cell the figure binaries
//! consume is checked against the closed-form oracles, and the
//! metamorphic relations are exercised over 100+ seeded random cells.
//!
//! Cells are shortened to seq 256 here to keep the suite in CI budget;
//! the `conformance` bench binary runs the full-length grids.

use olab_core::registry;
use olab_core::Experiment;
use olab_grid::Pool;
use olab_oracle::{
    check_cell, check_collective_relations, check_experiment_relations, check_fault_relations,
};

/// Every experiment the figure regenerators run, shortened for test speed.
fn figure_grid() -> Vec<Experiment> {
    let mut cells: Vec<Experiment> = Vec::new();
    cells.extend(registry::main_grid());
    cells.extend(registry::fig1a());
    cells.extend(registry::fig1b());
    cells.push(registry::fig7());
    cells.extend(registry::fig9());
    for (a, b) in registry::fig10() {
        cells.push(a);
        cells.push(b);
    }
    for (a, b) in registry::fig11() {
        cells.push(a);
        cells.push(b);
    }
    let mut cells: Vec<Experiment> = cells
        .into_iter()
        .map(|e| {
            let seq = e.seq.min(256);
            e.with_seq(seq)
        })
        .collect();
    // The shortened grids repeat cells across figures; dedup by label so
    // the pool does each distinct cell once.
    cells.sort_by_key(Experiment::label);
    cells.dedup_by_key(|e| e.label());
    cells
}

#[test]
fn every_registry_cell_agrees_with_the_closed_form_oracles() {
    let cells = figure_grid();
    assert!(cells.len() >= 100, "grid shrank to {} cells", cells.len());

    let results = Pool::with_available_parallelism().map(&cells, |exp| match check_cell(exp) {
        Ok(report) => Some((exp.label(), report)),
        // Out-of-memory cells are the paper's intentionally missing bars.
        Err(_) => None,
    });

    let feasible: Vec<_> = results.into_iter().flatten().collect();
    assert!(
        feasible.len() >= 100,
        "only {} feasible cells — the grid lost coverage",
        feasible.len()
    );

    let dirty: Vec<String> = feasible
        .iter()
        .filter(|(_, report)| !report.is_clean())
        .map(|(label, report)| format!("{label}:\n{report}"))
        .collect();
    assert!(
        dirty.is_empty(),
        "{} of {} cells diverged from the closed-form oracles:\n{}",
        dirty.len(),
        feasible.len(),
        dirty.join("\n")
    );
}

#[test]
fn metamorphic_relations_hold_over_100_seeded_experiments() {
    // Collective-level relations are cheap: run plenty.
    for seed in 0..200u64 {
        let failures = check_collective_relations(seed);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    // Experiment-level relations simulate; fan them across the pool. 140
    // seeds leave slack for out-of-memory skips above the 100 floor.
    let seeds: Vec<u64> = (0..140).collect();
    let outcomes =
        Pool::with_available_parallelism().map(&seeds, |&seed| check_experiment_relations(seed));

    let feasible = outcomes.iter().filter(|o| o.feasible).count();
    assert!(
        feasible >= 100,
        "only {feasible}/140 seeds produced a feasible cell"
    );
    let failures: Vec<String> = outcomes.into_iter().flat_map(|o| o.failures).collect();
    assert!(
        failures.is_empty(),
        "{} metamorphic failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn fault_relations_hold_over_seeded_scenarios() {
    // Each seed runs the cell fault-free plus at every severity (F1) and
    // twice more with narrow/wide throttle windows (F2) — five to six
    // simulations per seed, so 40 seeds is the CI-budget sweet spot.
    let seeds: Vec<u64> = (0..40).collect();
    let outcomes =
        Pool::with_available_parallelism().map(&seeds, |&seed| check_fault_relations(seed));

    let feasible = outcomes.iter().filter(|o| o.feasible).count();
    assert!(
        feasible >= 25,
        "only {feasible}/40 seeds produced a feasible cell"
    );
    let failures: Vec<String> = outcomes.into_iter().flat_map(|o| o.failures).collect();
    assert!(
        failures.is_empty(),
        "{} fault-relation failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
