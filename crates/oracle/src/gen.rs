//! Seeded, shrinkable random generators.
//!
//! Everything here runs from plain `#[test]`s: randomness comes from the
//! workspace's dependency-free [`SeededRng`], and shrinking is hand-rolled
//! (smallest failing prefix for workload DAGs, greedy minimization for
//! experiments) rather than delegated to the feature-gated `proptest`.

use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_sim::{GpuId, SeededRng, TaskSpec, Workload};

/// A small facade over [`SeededRng`] with the draws generators need.
#[derive(Debug)]
pub struct Gen {
    rng: SeededRng,
}

impl Gen {
    /// A generator with a fixed seed (same seed, same stream).
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SeededRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.rng.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.next_f64() < p
    }

    /// Uniform pick from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        perm
    }
}

/// One planned task in a [`WorkloadPlan`].
///
/// `deps` are indices into the plan's task list and always point backward,
/// so every prefix of a plan is itself a valid (deadlock-free) plan — the
/// property the shrinker relies on.
#[derive(Debug, Clone)]
pub struct PlannedTask {
    /// Display label, `t{index}`.
    pub label: String,
    /// Owning GPUs: one for compute/local comm, two or more for collectives.
    pub participants: Vec<GpuId>,
    /// True for comm-stream tasks (local copies and collectives).
    pub comm: bool,
    /// Backward dependencies (indices of earlier tasks).
    pub deps: Vec<usize>,
}

/// A shrinkable blueprint for a random DAG over compute, local-comm, and
/// collective tasks. Build the actual [`Workload`] with
/// [`WorkloadPlan::build`].
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    /// Number of GPUs the workload spans.
    pub n_gpus: usize,
    /// Planned tasks in push order.
    pub tasks: Vec<PlannedTask>,
}

impl WorkloadPlan {
    /// Materializes the plan into an engine-ready workload.
    pub fn build(&self) -> Workload<()> {
        let mut w = Workload::new(self.n_gpus);
        let mut ids = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            let spec = if task.participants.len() > 1 {
                TaskSpec::collective(task.label.clone(), task.participants.clone(), ())
            } else if task.comm {
                TaskSpec::comm(task.label.clone(), task.participants[0], ())
            } else {
                TaskSpec::compute(task.label.clone(), task.participants[0], ())
            };
            let spec = spec.after_all(task.deps.iter().map(|&d| ids[d]));
            ids.push(w.push(spec));
        }
        w
    }

    /// The plan truncated to its first `k` tasks (valid because deps point
    /// backward).
    pub fn prefix(&self, k: usize) -> WorkloadPlan {
        WorkloadPlan {
            n_gpus: self.n_gpus,
            tasks: self.tasks[..k.min(self.tasks.len())].to_vec(),
        }
    }
}

/// Generates a random workload plan: 1–4 GPUs, 1–24 tasks mixing compute
/// (~50%), local comm (~25%), and multi-GPU collectives (~25%, only when
/// the node has at least two GPUs), with up to 3 backward dependencies per
/// task. The DAG can never deadlock: dependencies always point at earlier
/// pushes, so queue order is consistent with dependency order.
pub fn random_plan(seed: u64) -> WorkloadPlan {
    let mut g = Gen::new(seed);
    let n_gpus = 1 + g.below(4) as usize;
    let n_tasks = 1 + g.below(24) as usize;
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let roll = g.unit();
        let (participants, comm) = if n_gpus >= 2 && roll < 0.25 {
            // Collective over a random subset of 2..=n_gpus ranks.
            let k = 2 + g.below(n_gpus as u64 - 1) as usize;
            let perm = g.permutation(n_gpus);
            let group: Vec<GpuId> = perm[..k].iter().map(|&p| GpuId(p as u16)).collect();
            (group, true)
        } else if roll < 0.5 {
            (vec![GpuId(g.below(n_gpus as u64) as u16)], true)
        } else {
            (vec![GpuId(g.below(n_gpus as u64) as u16)], false)
        };
        let mut deps = Vec::new();
        if i > 0 {
            for _ in 0..g.below(4) {
                let d = g.below(i as u64) as usize;
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
        }
        tasks.push(PlannedTask {
            label: format!("t{i}"),
            participants,
            comm,
            deps,
        });
    }
    WorkloadPlan { n_gpus, tasks }
}

/// Shrinks a failing plan to the smallest failing prefix: the first `k`
/// such that `fails(plan.prefix(k))`, or the full plan if no proper prefix
/// reproduces the failure.
pub fn shrink_plan(plan: &WorkloadPlan, fails: impl Fn(&WorkloadPlan) -> bool) -> WorkloadPlan {
    for k in 1..=plan.tasks.len() {
        let candidate = plan.prefix(k);
        if fails(&candidate) {
            return candidate;
        }
    }
    plan.clone()
}

/// Generates a random grid cell: SKU × small model × {2,4} GPUs ×
/// strategy × batch × short sequence. Cells are kept small enough that a
/// full [`Experiment::run`] stays in the tens of milliseconds; some cells
/// are legitimately infeasible (out of memory — the paper's missing bars)
/// and callers should treat `Err(OutOfMemory)` as a skip, not a failure.
pub fn random_experiment(seed: u64) -> Experiment {
    let mut g = Gen::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let sku = *g.pick(&SkuKind::ALL);
    let model = *g.pick(&[ModelPreset::Gpt3Xl, ModelPreset::Gpt3_2_7B]);
    let n_gpus = *g.pick(&[2usize, 4]);
    let batch = *g.pick(&[2u64, 4, 8]);
    let strategy = match g.below(3) {
        0 => Strategy::Fsdp,
        1 => Strategy::TensorParallel,
        _ => {
            // A power-of-two divisor of the (power-of-two) batch.
            let max_pow = batch.trailing_zeros() as u64 + 1;
            let microbatch_size = 1u64 << g.below(max_pow);
            Strategy::Pipeline { microbatch_size }
        }
    };
    let seq = *g.pick(&[64u64, 128]);
    Experiment::new(sku, n_gpus, model, strategy, batch).with_seq(seq)
}

/// Greedily minimizes a failing experiment: repeatedly tries halving the
/// batch and sequence length, dropping GPUs, and swapping in the smallest
/// model, keeping any change that still fails. Returns a (locally) minimal
/// failing cell.
pub fn shrink_experiment(exp: &Experiment, fails: impl Fn(&Experiment) -> bool) -> Experiment {
    let mut current = exp.clone();
    loop {
        let mut candidates: Vec<Experiment> = Vec::new();
        if current.batch > 1 {
            let mut c = current.clone();
            c.batch /= 2;
            if let Strategy::Pipeline { microbatch_size } = &mut c.strategy {
                *microbatch_size = (*microbatch_size).min(c.batch);
            }
            candidates.push(c);
        }
        if current.seq > 1 {
            candidates.push(current.clone().with_seq(current.seq / 2));
        }
        if current.n_gpus > 2 {
            let mut c = current.clone();
            c.n_gpus /= 2;
            candidates.push(c);
        }
        if current.model != ModelPreset::Gpt3Xl {
            let mut c = current.clone();
            c.model = ModelPreset::Gpt3Xl;
            candidates.push(c);
        }
        match candidates.into_iter().find(|c| fails(c)) {
            Some(smaller) => current = smaller,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_sim::{verify_trace, ConstantRate, Engine};

    #[test]
    fn same_seed_same_plan() {
        let a = random_plan(42);
        let b = random_plan(42);
        assert_eq!(a.n_gpus, b.n_gpus);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.participants, y.participants);
            assert_eq!(x.deps, y.deps);
        }
    }

    #[test]
    fn random_plans_build_runnable_deadlock_free_workloads() {
        for seed in 0..60 {
            let plan = random_plan(seed);
            let w = plan.build();
            let trace = Engine::new(ConstantRate::default())
                .run(&w)
                .unwrap_or_else(|e| panic!("seed {seed}: engine rejected workload: {e}"));
            let violations = verify_trace(&w, &trace);
            assert!(violations.is_empty(), "seed {seed}: {:?}", violations);
        }
    }

    #[test]
    fn shrinking_finds_the_smallest_failing_prefix() {
        // Failure: "the plan contains a collective". The shrinker must
        // return the prefix ending at the first collective.
        let has_collective = |p: &WorkloadPlan| p.tasks.iter().any(|t| t.participants.len() > 1);
        let mut shrunk_once = false;
        for seed in 0..200 {
            let plan = random_plan(seed);
            if !has_collective(&plan) {
                continue;
            }
            let minimal = shrink_plan(&plan, has_collective);
            let first = plan
                .tasks
                .iter()
                .position(|t| t.participants.len() > 1)
                .unwrap();
            assert_eq!(minimal.tasks.len(), first + 1, "seed {seed}");
            if minimal.tasks.len() < plan.tasks.len() {
                shrunk_once = true;
            }
        }
        assert!(shrunk_once, "no seed exercised a proper shrink");
    }

    #[test]
    fn random_experiments_are_valid_or_oom() {
        let mut feasible = 0;
        for seed in 0..40 {
            let exp = random_experiment(seed);
            match exp.validate() {
                Ok(_) => feasible += 1,
                Err(olab_core::ExperimentError::OutOfMemory { .. }) => {}
                Err(e) => panic!("seed {seed}: unexpected error: {e}"),
            }
        }
        assert!(feasible >= 20, "only {feasible}/40 feasible");
    }

    #[test]
    fn experiment_shrinker_reaches_a_local_minimum() {
        // Failure: "the cell uses pipeline parallelism" — invariant under
        // every shrink step, so the minimum is batch 1, seq 1, 2 GPUs.
        let is_pp = |e: &Experiment| matches!(e.strategy, Strategy::Pipeline { .. });
        let seed = (0..100)
            .find(|&s| is_pp(&random_experiment(s)))
            .expect("no pipeline cell in 100 seeds");
        let minimal = shrink_experiment(&random_experiment(seed), is_pp);
        assert!(is_pp(&minimal));
        assert_eq!(minimal.batch, 1);
        assert_eq!(minimal.seq, 1);
        assert_eq!(minimal.n_gpus, 2);
        assert_eq!(minimal.model, ModelPreset::Gpt3Xl);
    }
}
