//! Metamorphic relations: properties that must hold between *pairs* of
//! runs even where no closed form exists for either run alone.
//!
//! * **R1** — doubling every link's bandwidth never increases a
//!   collective's isolated time.
//! * **R2** — adding a GPU never shrinks the all-reduce bytes each rank
//!   must move (`2S(n-1)/n` is monotone in `n`).
//! * **R3** — raising a power cap never increases the makespan (queue
//!   order is fixed, so faster rates can only finish earlier).
//! * **R4** — doubling the sequence length never lowers the compute share
//!   of an FSDP cell (FSDP's collective volume is parameter-, not
//!   activation-, sized, while attention FLOPs grow superlinearly).
//!   R4 is FSDP-only by design: TP and PP activations travel over the
//!   wire, so their comm time scales with `seq` too.
//!
//! Fault scenarios add **F1**/**F2** ([`check_fault_relations`]) and the
//! recovery layer adds its own **R1**–**R3**
//! ([`check_resilience_relations`]): the fault-free makespan lower-bounds
//! any completed recovery, checkpointing under no fault pressure is pure
//! overhead, and elastic re-sharding conserves durable state bytes.

use crate::gen::{random_experiment, Gen};
use crate::oracles::Tolerance;
use olab_ccl::{lower, Algorithm, Collective, CollectiveKind};
use olab_core::{execute, Experiment, ExperimentError, RunResult, Strategy};
use olab_gpu::{GpuSku, Precision};
use olab_net::Topology;
use olab_parallel::ExecutionMode;
use olab_sim::GpuId;

/// The outcome of running the experiment-level relations for one seed.
#[derive(Debug, Clone)]
pub struct RelationOutcome {
    /// The seed the cell came from.
    pub seed: u64,
    /// False when the base cell was infeasible (out of memory — the
    /// paper's missing bars); such seeds are skipped, not failed.
    pub feasible: bool,
    /// Human-readable descriptions of every relation that broke.
    pub failures: Vec<String>,
}

impl RelationOutcome {
    fn infeasible(seed: u64) -> Self {
        RelationOutcome {
            seed,
            feasible: false,
            failures: Vec::new(),
        }
    }
}

/// Relations R1 and R2 over one random collective. Cheap (no simulation);
/// returns the failures, empty when all hold.
pub fn check_collective_relations(seed: u64) -> Vec<String> {
    let mut g = Gen::new(seed ^ 0x5851_f42d_4c95_7f2d);
    let mut failures = Vec::new();

    let n = 2 + g.below(7) as usize; // 2..=8 ranks
    let bytes = 1u64 << (10 + g.below(16)); // 1 KiB .. 32 MiB
    let kind = *g.pick(&[
        CollectiveKind::AllReduce,
        CollectiveKind::AllGather,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Broadcast,
        CollectiveKind::AllToAll,
    ]);
    let group: Vec<GpuId> = (0..n as u16).map(GpuId).collect();
    let coll = Collective::new(kind, bytes, group);
    let algo = Algorithm::auto(kind, bytes, n);
    let sku = GpuSku::h100();
    let bw_gbs = 100.0 + g.unit() * 400.0;
    let lat_us = 1.0 + g.unit() * 9.0;

    // R1: doubling link bandwidth never increases collective time.
    let slow = lower(
        &coll,
        algo,
        &sku,
        &Topology::nvswitch(n, bw_gbs, lat_us),
        Precision::Fp16,
    );
    let fast = lower(
        &coll,
        algo,
        &sku,
        &Topology::nvswitch(n, 2.0 * bw_gbs, lat_us),
        Precision::Fp16,
    );
    let tol = Tolerance::TIGHT.allowance(slow.isolated_duration_s());
    if fast.isolated_duration_s() > slow.isolated_duration_s() + tol {
        failures.push(format!(
            "seed {seed}: R1 broken for {coll}: doubling {bw_gbs:.0} GB/s links \
             raised isolated time {:.6e} -> {:.6e}",
            slow.isolated_duration_s(),
            fast.isolated_duration_s()
        ));
    }

    // R2: adding a GPU never shrinks all-reduce bytes per rank.
    let at = |ranks: usize| {
        olab_ccl::wire_bytes_per_rank(CollectiveKind::AllReduce, Algorithm::Ring, bytes, ranks)
    };
    let independent = |ranks: f64| 2.0 * bytes as f64 * (ranks - 1.0) / ranks;
    for ranks in 2..=8usize {
        if at(ranks + 1) + 1e-9 < at(ranks) {
            failures.push(format!(
                "seed {seed}: R2 broken: all-reduce wire bytes shrank going \
                 {ranks} -> {} ranks ({} -> {})",
                ranks + 1,
                at(ranks),
                at(ranks + 1)
            ));
        }
        if (at(ranks) - independent(ranks as f64)).abs() > 1e-6 {
            failures.push(format!(
                "seed {seed}: R2 oracle mismatch at {ranks} ranks: {} vs 2S(n-1)/n = {}",
                at(ranks),
                independent(ranks as f64)
            ));
        }
    }
    failures
}

/// Runs only the overlapped timeline of a cell (the quantity every
/// experiment-level relation compares), skipping the sequential and ideal
/// runs a full [`Experiment::run`] would also pay for.
fn overlapped_run(exp: &Experiment) -> Result<RunResult, ExperimentError> {
    let policy = exp.validate()?;
    let workload = exp.timeline(ExecutionMode::Overlapped, policy)?;
    Ok(execute(&workload, &exp.machine())?)
}

fn compute_share(run: &RunResult) -> f64 {
    let total = run.compute_s() + run.comm_s();
    if total > 0.0 {
        run.compute_s() / total
    } else {
        0.0
    }
}

/// Relations R3 and R4 over one random grid cell. Each feasible seed
/// costs three to four small simulations.
pub fn check_experiment_relations(seed: u64) -> RelationOutcome {
    let exp = random_experiment(seed);
    let base = match overlapped_run(&exp) {
        Ok(run) => run,
        Err(_) => return RelationOutcome::infeasible(seed),
    };
    let mut failures = Vec::new();
    let tol = Tolerance::LOOSE; // DVFS epochs quantize the governor's response

    // R3: raising a power cap never increases the makespan. The chain is
    // 60% TDP -> 90% TDP -> uncapped.
    let tdp = exp.sku.sku().tdp_w;
    let capped_60 = overlapped_run(&exp.clone().with_power_cap(0.6 * tdp));
    let capped_90 = overlapped_run(&exp.clone().with_power_cap(0.9 * tdp));
    match (capped_60, capped_90) {
        (Ok(lo), Ok(hi)) => {
            if hi.e2e_s > lo.e2e_s + tol.allowance(lo.e2e_s) {
                failures.push(format!(
                    "seed {seed}: R3 broken for {}: raising the cap 60% -> 90% TDP \
                     slowed e2e {:.6e} -> {:.6e}",
                    exp.label(),
                    lo.e2e_s,
                    hi.e2e_s
                ));
            }
            if base.e2e_s > hi.e2e_s + tol.allowance(hi.e2e_s) {
                failures.push(format!(
                    "seed {seed}: R3 broken for {}: removing the 90% TDP cap \
                     slowed e2e {:.6e} -> {:.6e}",
                    exp.label(),
                    hi.e2e_s,
                    base.e2e_s
                ));
            }
        }
        _ => failures.push(format!(
            "seed {seed}: R3 could not run: capping a feasible cell made it fail"
        )),
    }

    // R4 (FSDP only): doubling seq never lowers the compute share.
    // (The end-to-end time itself is NOT monotone in seq: extra compute
    // realigns rendezvous and contention windows and can shave a percent
    // or two off e2e, so only the share — the paper's trend axis — is a
    // sound relation.)
    if matches!(exp.strategy, Strategy::Fsdp) {
        match overlapped_run(&exp.clone().with_seq(exp.seq * 2)) {
            Ok(doubled) => {
                if compute_share(&doubled) + tol.rel < compute_share(&base) {
                    failures.push(format!(
                        "seed {seed}: R4 broken for {}: doubling seq {} -> {} dropped \
                         the compute share {:.4} -> {:.4}",
                        exp.label(),
                        exp.seq,
                        exp.seq * 2,
                        compute_share(&base),
                        compute_share(&doubled)
                    ));
                }
            }
            Err(ExperimentError::OutOfMemory { .. }) => {} // longer seq can OOM; skip
            Err(e) => failures.push(format!("seed {seed}: R4 run failed: {e}")),
        }
    }

    RelationOutcome {
        seed,
        feasible: true,
        failures,
    }
}

/// Fault relations F1 and F2 for one seeded cell.
///
/// * **F1** — the fault-free run lower-bounds the makespan of the same
///   cell under *any* fault scenario: injected stalls, throttles and
///   degradations can only add time. Checked at every severity of the
///   seed's scenario.
/// * **F2** — widening a throttle window never decreases the makespan
///   (more of the run spent at a lower clock can only slow it down).
///
/// Scenario seeds that abort (a dead link with no surviving path on a
/// 2-GPU ring) have no final makespan to compare and are skipped for F1,
/// exactly as out-of-memory cells are skipped elsewhere.
pub fn check_fault_relations(seed: u64) -> RelationOutcome {
    use olab_core::execute_model;
    use olab_faults::{
        run_with_faults, FaultError, FaultScenarioSpec, FaultTimeline, FaultyMachine, Severity,
    };

    let exp = random_experiment(seed);
    let base = match overlapped_run(&exp) {
        Ok(run) => run,
        Err(_) => return RelationOutcome::infeasible(seed),
    };
    let mut failures = Vec::new();
    let tol = Tolerance::LOOSE;

    // F1: fault-free lower-bounds every severity of the seed's scenario.
    for severity in Severity::ALL {
        match run_with_faults(&exp, &FaultScenarioSpec::degrade(seed, severity)) {
            Ok(report) => {
                let m = &report.metrics;
                if m.faulty_e2e_s + tol.allowance(m.fault_free_e2e_s) < m.fault_free_e2e_s {
                    failures.push(format!(
                        "seed {seed}: F1 broken for {} at {severity}: faults sped the \
                         run up {:.6e} -> {:.6e}",
                        exp.label(),
                        m.fault_free_e2e_s,
                        m.faulty_e2e_s
                    ));
                }
            }
            Err(FaultError::Aborted(_)) => {} // no surviving path: no makespan to bound
            Err(FaultError::Experiment(e)) => {
                failures.push(format!(
                    "seed {seed}: F1 could not run: a feasible cell failed under faults: {e}"
                ));
            }
        }
    }

    // F2: widening every throttle window never decreases the makespan.
    // Mild scenarios carry no outages, so the comparison isolates the
    // throttle axis.
    let spec = FaultScenarioSpec::degrade(seed, Severity::Mild);
    let narrow_tl = FaultTimeline::generate(&spec, exp.n_gpus, base.e2e_s);
    let workload = exp
        .validate()
        .and_then(|policy| exp.timeline(ExecutionMode::Overlapped, policy));
    match workload {
        Ok(workload) => {
            let machine = exp.machine();
            let mut wide_tl = narrow_tl.clone();
            for w in &mut wide_tl.throttles {
                w.start_s = (w.start_s - 0.10 * base.e2e_s).max(0.0);
                w.end_s += 0.20 * base.e2e_s;
            }
            let narrow = execute_model(&workload, FaultyMachine::new(machine.clone(), narrow_tl));
            let wide = execute_model(&workload, FaultyMachine::new(machine, wide_tl));
            match (narrow, wide) {
                (Ok(n), Ok(w)) => {
                    if w.e2e_s + tol.allowance(n.e2e_s) < n.e2e_s {
                        failures.push(format!(
                            "seed {seed}: F2 broken for {}: widening the throttle windows \
                             sped the run up {:.6e} -> {:.6e}",
                            exp.label(),
                            n.e2e_s,
                            w.e2e_s
                        ));
                    }
                }
                _ => failures.push(format!(
                    "seed {seed}: F2 could not run: fault injection broke the engine"
                )),
            }
        }
        Err(e) => failures.push(format!("seed {seed}: F2 could not build the workload: {e}")),
    }

    RelationOutcome {
        seed,
        feasible: true,
        failures,
    }
}

/// The recovery relations R1 and R3 for one `(experiment, scenario)`
/// pair, appended to `failures`. Used both by the seeded smoke
/// ([`check_resilience_relations`]) and by the conformance gate's
/// registry-grid pass ([`check_resilience_grid_cell`]).
fn resilience_r1_r3(
    exp: &Experiment,
    spec: &olab_faults::FaultScenarioSpec,
    seed: u64,
    failures: &mut Vec<String>,
) {
    use olab_resilience::{run_with_recovery, RecoveryError, RecoveryPolicy};

    let tol = Tolerance::LOOSE;
    let policies = [
        RecoveryPolicy::FailFast,
        RecoveryPolicy::CheckpointRestart { interval_s: None },
        RecoveryPolicy::ElasticContinue,
    ];
    for policy in policies {
        match run_with_recovery(exp, spec, policy) {
            Ok(r) if r.metrics.completed => {
                let m = &r.metrics;
                // R1: a healthy machine lower-bounds any completed
                // recovery — restarts re-execute work, shrinks finish on
                // fewer GPUs; neither can beat the fault-free makespan.
                if m.wall_s + tol.allowance(m.fault_free_e2e_s) < m.fault_free_e2e_s {
                    failures.push(format!(
                        "seed {seed}: resilience R1 broken for {} under {policy}: \
                         recovered wall {:.6e} beat the fault-free makespan {:.6e}",
                        exp.label(),
                        m.wall_s,
                        m.fault_free_e2e_s
                    ));
                }
                // R3: an elastic shrink conserves durable state byte for
                // byte — piggybacks on the elastic run R1 already paid for.
                if let Some(rs) = &r.reshard {
                    let drift = (rs.bytes_before - rs.bytes_after).abs() / rs.bytes_before.max(1.0);
                    if drift > 1e-6 {
                        failures.push(format!(
                            "seed {seed}: resilience R3 broken for {}: the full world held \
                             {:.6e} state bytes but the survivors hold {:.6e}",
                            exp.label(),
                            rs.bytes_before,
                            rs.bytes_after
                        ));
                    }
                }
            }
            Ok(_) => {} // a fail-fast death has no completion to bound
            Err(RecoveryError::ShrinkInfeasible { .. }) => {} // pinned world size: skip
            Err(RecoveryError::Experiment(e)) => failures.push(format!(
                "seed {seed}: resilience R1 could not run: a feasible cell failed under \
                 recovery: {e}"
            )),
        }
    }
}

/// Resilience relations R1–R3 for one seeded random cell.
///
/// * **R1** — the fault-free makespan lower-bounds the wall-clock of any
///   *completed* recovered run (checked under a killing scenario and a
///   mild one, for all three policies).
/// * **R2** — under a scenario with no unrecoverable fault, checkpointing
///   is pure overhead: goodput is monotone non-increasing as the explicit
///   interval shrinks.
/// * **R3** — an elastic shrink conserves durable state: bytes re-sharded
///   onto the survivors equal the bytes the full world held.
pub fn check_resilience_relations(seed: u64) -> RelationOutcome {
    use olab_faults::{FaultScenarioSpec, Severity};
    use olab_resilience::RecoveryPolicy;

    let exp = random_experiment(seed);
    let base = match overlapped_run(&exp) {
        Ok(run) => run,
        Err(_) => return RelationOutcome::infeasible(seed),
    };
    let mut failures = Vec::new();
    let tol = Tolerance::LOOSE;

    // R1 + R3 under a scenario that kills the job and one that does not.
    for spec in [
        FaultScenarioSpec::abort(seed, Severity::Severe),
        FaultScenarioSpec::degrade(seed, Severity::Mild),
    ] {
        resilience_r1_r3(&exp, &spec, seed, &mut failures);
    }

    // R2: shrinking an explicit checkpoint interval under a fault-free
    // scenario never raises goodput (floor plateaus allow equality).
    let spec = FaultScenarioSpec::degrade(seed, Severity::Mild);
    let mut prev: Option<(f64, f64)> = None;
    for divisor in [2.0, 4.0, 8.0] {
        let interval = base.e2e_s / divisor;
        match olab_resilience::run_with_recovery(
            &exp,
            &spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(interval),
            },
        ) {
            Ok(r) => {
                let goodput = r.metrics.goodput_samples_per_s;
                if let Some((prev_interval, prev_goodput)) = prev {
                    if goodput > prev_goodput * (1.0 + tol.rel) {
                        failures.push(format!(
                            "seed {seed}: resilience R2 broken for {}: shrinking the \
                             checkpoint interval {prev_interval:.6e} -> {interval:.6e} \
                             raised goodput {prev_goodput:.6e} -> {goodput:.6e}",
                            exp.label()
                        ));
                    }
                }
                prev = Some((interval, goodput));
            }
            Err(e) => failures.push(format!("seed {seed}: resilience R2 could not run: {e}")),
        }
    }

    RelationOutcome {
        seed,
        feasible: true,
        failures,
    }
}

/// Resilience relations R1 and R3 for one *registry* cell under its
/// killing scenario — the conformance gate fans this over every grid cell
/// so the recovery layer is held to the same standard as the simulator.
pub fn check_resilience_grid_cell(exp: &Experiment, seed: u64) -> RelationOutcome {
    use olab_faults::{FaultScenarioSpec, Severity};

    if overlapped_run(exp).is_err() {
        return RelationOutcome::infeasible(seed);
    }
    let mut failures = Vec::new();
    resilience_r1_r3(
        exp,
        &FaultScenarioSpec::abort(seed, Severity::Severe),
        seed,
        &mut failures,
    );
    RelationOutcome {
        seed,
        feasible: true,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_relations_hold_on_a_spot_check() {
        for seed in 0..25 {
            let failures = check_collective_relations(seed);
            assert!(failures.is_empty(), "{}", failures.join("\n"));
        }
    }

    #[test]
    fn experiment_relations_hold_on_a_spot_check() {
        let mut feasible = 0;
        for seed in 0..6 {
            let outcome = check_experiment_relations(seed);
            if outcome.feasible {
                feasible += 1;
            }
            assert!(
                outcome.failures.is_empty(),
                "{}",
                outcome.failures.join("\n")
            );
        }
        assert!(feasible >= 2, "only {feasible}/6 seeds feasible");
    }

    #[test]
    fn fault_relations_hold_on_a_spot_check() {
        let mut feasible = 0;
        for seed in 0..6 {
            let outcome = check_fault_relations(seed);
            if outcome.feasible {
                feasible += 1;
            }
            assert!(
                outcome.failures.is_empty(),
                "{}",
                outcome.failures.join("\n")
            );
        }
        assert!(feasible >= 2, "only {feasible}/6 seeds feasible");
    }

    #[test]
    fn resilience_relations_hold_on_a_spot_check() {
        let mut feasible = 0;
        for seed in 0..4 {
            let outcome = check_resilience_relations(seed);
            if outcome.feasible {
                feasible += 1;
            }
            assert!(
                outcome.failures.is_empty(),
                "{}",
                outcome.failures.join("\n")
            );
        }
        assert!(feasible >= 2, "only {feasible}/4 seeds feasible");
    }

    #[test]
    fn resilience_grid_relations_hold_on_a_registry_cell() {
        let cells = olab_core::registry::fig1a();
        let exp = cells.first().expect("registry has cells");
        let outcome = check_resilience_grid_cell(exp, 3);
        assert!(outcome.feasible, "registry cells must be feasible");
        assert!(
            outcome.failures.is_empty(),
            "{}",
            outcome.failures.join("\n")
        );
    }

    #[test]
    fn infeasible_seeds_are_skips_not_failures() {
        // Whatever the seed mix, an infeasible outcome must carry no
        // failures so suites can filter on `feasible` alone.
        for seed in 0..30 {
            let outcome = check_experiment_relations(seed);
            if !outcome.feasible {
                assert!(outcome.failures.is_empty());
            }
        }
    }
}
