//! Closed-form oracles and tolerance-banded differential comparison.
//!
//! Every expected value here is re-derived *literally* from the alpha-beta
//! collective model, the roofline, and the definition of energy as the
//! integral of power — deliberately not by calling the production helpers
//! being checked (`olab_ccl::wire_bytes_per_rank`,
//! `Algorithm::latency_steps`, `KernelDemand::duration`), so a bug in
//! those paths cannot cancel out of the comparison.

use olab_ccl::{lower, Algorithm, Collective, CollectiveKind};
use olab_core::{Experiment, ExperimentError, ExperimentReport, RunResult};
use olab_gpu::{roofline, Datapath, GpuSku, KernelKind, Precision};
use olab_net::Topology;
use olab_parallel::{ExecutionMode, Op};
use olab_sim::{critical_path, verify_trace};
use std::fmt;

/// A relative + absolute tolerance band. A comparison of `actual` against
/// `expected` passes when `|actual - expected| <= abs + rel * |expected|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative component, scaled by the expected value.
    pub rel: f64,
    /// Absolute floor, for expected values near zero.
    pub abs: f64,
}

impl Tolerance {
    /// Floating-point-roundoff only: for identities that should hold to
    /// machine precision (energy re-integration, alpha-beta decomposition).
    pub const TIGHT: Tolerance = Tolerance {
        rel: 1e-9,
        abs: 1e-9,
    };
    /// Accumulated-roundoff band for sums over many tasks/segments.
    pub const BAND: Tolerance = Tolerance {
        rel: 1e-6,
        abs: 1e-9,
    };
    /// Model-comparison band for quantities where the simulator and the
    /// closed form legitimately differ in low-order terms (e.g. epoch
    /// quantization in the DVFS governor).
    pub const LOOSE: Tolerance = Tolerance {
        rel: 1e-3,
        abs: 1e-9,
    };

    /// The allowed error at a given expected magnitude.
    pub fn allowance(&self, expected: f64) -> f64 {
        self.abs + self.rel * expected.abs()
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel {:.0e} / abs {:.0e}", self.rel, self.abs)
    }
}

/// One quantity that fell outside its tolerance band.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// What was compared (names the offending quantity and, where it has
    /// one, the offending task/GPU).
    pub quantity: String,
    /// Simulator output.
    pub actual: f64,
    /// Closed-form expectation (or bound).
    pub expected: f64,
    /// Allowed error at this magnitude.
    pub allowed: f64,
    /// How far beyond the band the error landed.
    pub excess: f64,
}

impl Divergence {
    /// Excess relative to the allowed band — the ranking key for "worst
    /// offender". Infinite for non-finite actuals and zero-width bands.
    pub fn severity(&self) -> f64 {
        if !self.excess.is_finite() {
            f64::INFINITY
        } else if self.allowed > 0.0 {
            self.excess / self.allowed
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: actual {:.9e} vs expected {:.9e} ({:+.3e} beyond the ±{:.3e} band)",
            self.quantity, self.actual, self.expected, self.excess, self.allowed
        )
    }
}

/// The outcome of checking one subject (a comm op, a kernel, a grid cell)
/// against the closed-form oracles: tolerance-band divergences plus any
/// structural trace violations from [`verify_trace`].
#[derive(Debug, Clone, Default)]
pub struct DivergenceReport {
    /// What was checked (e.g. the experiment label).
    pub context: String,
    /// Quantities outside their bands, in check order.
    pub divergences: Vec<Divergence>,
    /// Rendered structural violations (record index + label included).
    pub violations: Vec<String>,
}

impl DivergenceReport {
    /// An empty report for the given subject.
    pub fn new(context: impl Into<String>) -> Self {
        DivergenceReport {
            context: context.into(),
            divergences: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// True when nothing diverged and no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.violations.is_empty()
    }

    /// Total problem count.
    pub fn issues(&self) -> usize {
        self.divergences.len() + self.violations.len()
    }

    /// Records a structural violation.
    pub fn violation(&mut self, message: impl Into<String>) {
        self.violations.push(message.into());
    }

    /// The divergence furthest outside its band, if any.
    pub fn worst(&self) -> Option<&Divergence> {
        self.divergences
            .iter()
            .max_by(|a, b| a.severity().total_cmp(&b.severity()))
    }

    /// Two-sided comparison: `actual` must be within `tol` of `expected`.
    /// Non-finite actuals always diverge.
    pub fn compare(&mut self, quantity: &str, actual: f64, expected: f64, tol: Tolerance) {
        let allowed = tol.allowance(expected);
        if !actual.is_finite() {
            self.push(quantity, actual, expected, allowed, f64::INFINITY);
            return;
        }
        let err = (actual - expected).abs();
        if err > allowed {
            self.push(quantity, actual, expected, allowed, err - allowed);
        }
    }

    /// One-sided bound: `actual >= bound`, with `tol` of slack.
    pub fn require_at_least(&mut self, quantity: &str, actual: f64, bound: f64, tol: Tolerance) {
        let allowed = tol.allowance(bound);
        if !actual.is_finite() || actual < bound - allowed {
            let excess = if actual.is_finite() {
                (bound - actual) - allowed
            } else {
                f64::INFINITY
            };
            self.push(quantity, actual, bound, allowed, excess);
        }
    }

    /// One-sided bound: `actual <= bound`, with `tol` of slack.
    pub fn require_at_most(&mut self, quantity: &str, actual: f64, bound: f64, tol: Tolerance) {
        let allowed = tol.allowance(bound);
        if !actual.is_finite() || actual > bound + allowed {
            let excess = if actual.is_finite() {
                (actual - bound) - allowed
            } else {
                f64::INFINITY
            };
            self.push(quantity, actual, bound, allowed, excess);
        }
    }

    /// Folds a sub-report in, prefixing its context onto each entry.
    pub fn merge(&mut self, sub: DivergenceReport) {
        for mut d in sub.divergences {
            d.quantity = format!("{}: {}", sub.context, d.quantity);
            self.divergences.push(d);
        }
        for v in sub.violations {
            self.violations.push(format!("{}: {v}", sub.context));
        }
    }

    fn push(&mut self, quantity: &str, actual: f64, expected: f64, allowed: f64, excess: f64) {
        self.divergences.push(Divergence {
            quantity: quantity.to_string(),
            actual,
            expected,
            allowed,
            excess,
        });
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "conformance report for {}: clean", self.context);
        }
        writeln!(
            f,
            "conformance report for {}: {} divergence(s), {} violation(s)",
            self.context,
            self.divergences.len(),
            self.violations.len()
        )?;
        if let Some(worst) = self.worst() {
            writeln!(f, "  worst offender: {worst}")?;
        }
        for d in &self.divergences {
            writeln!(f, "  - {d}")?;
        }
        for v in &self.violations {
            writeln!(f, "  - invariant: {v}")?;
        }
        Ok(())
    }
}

/// Alpha-beta model wire volume per rank, re-derived literally: the
/// textbook `2S(n-1)/n` / `2S` / `S(n-1)/n` / `S` table.
fn oracle_wire_bytes(kind: CollectiveKind, algorithm: Algorithm, bytes: u64, n: usize) -> f64 {
    let s = bytes as f64;
    let n = n as f64;
    match kind {
        CollectiveKind::AllReduce => {
            if algorithm == Algorithm::Tree {
                2.0 * s
            } else {
                2.0 * s * (n - 1.0) / n
            }
        }
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter | CollectiveKind::AllToAll => {
            s * (n - 1.0) / n
        }
        CollectiveKind::Broadcast | CollectiveKind::PointToPoint => s,
    }
}

/// Serialized fabric step counts, re-derived literally: `2(n-1)` for ring
/// all-reduce, `n-1` for other rings, `2⌈log2 n⌉` / `⌈log2 n⌉` for trees.
fn oracle_steps(kind: CollectiveKind, algorithm: Algorithm, n: usize) -> u32 {
    let n = n as u32;
    let log2_ceil = |n: u32| {
        let mut bits = 0;
        while (1u32 << bits) < n {
            bits += 1;
        }
        bits.max(1)
    };
    if kind == CollectiveKind::PointToPoint {
        return 1;
    }
    match algorithm {
        Algorithm::Ring => {
            if kind == CollectiveKind::AllReduce {
                2 * (n - 1)
            } else {
                n - 1
            }
        }
        Algorithm::Tree => {
            if kind == CollectiveKind::AllReduce {
                2 * log2_ceil(n)
            } else {
                log2_ceil(n)
            }
        }
        Algorithm::Direct => {
            if kind == CollectiveKind::AllToAll {
                n - 1
            } else {
                1
            }
        }
        Algorithm::Hierarchical => 2 * (n - 1).min(8) + 2,
    }
}

/// Pillar A: checks one lowered collective against the alpha-beta model —
/// wire bytes, step counts, the hop-latency floor, the raw-fabric rate
/// ceiling, and the exact alpha + beta decomposition of the isolated time.
pub fn check_comm_op(
    collective: &Collective,
    algorithm: Algorithm,
    sku: &GpuSku,
    topology: &Topology,
    precision: Precision,
) -> DivergenceReport {
    let op = lower(collective, algorithm, sku, topology, precision);
    let n = collective.group_size();
    let mut report = DivergenceReport::new(format!("{op}"));

    report.compare(
        "wire_bytes_per_rank vs alpha-beta table",
        op.wire_bytes_per_rank,
        oracle_wire_bytes(collective.kind, algorithm, collective.bytes, n),
        Tolerance::TIGHT,
    );
    report.compare(
        "latency step count",
        f64::from(algorithm.latency_steps(collective.kind, n)),
        f64::from(oracle_steps(collective.kind, algorithm, n)),
        Tolerance::TIGHT,
    );
    let hop_floor = f64::from(oracle_steps(collective.kind, algorithm, n)) * topology.latency_s();
    report.require_at_least(
        "latency_s vs steps x hop latency",
        op.latency_s,
        hop_floor,
        Tolerance::TIGHT,
    );
    // Launch overhead is bounded: real stacks pay well under 100 us.
    report.require_at_most(
        "latency_s vs hop floor + 100us launch ceiling",
        op.latency_s,
        hop_floor + 100e-6,
        Tolerance::TIGHT,
    );
    report.require_at_least(
        "wire_rate_bytes_per_sec is positive",
        op.wire_rate_bytes_per_sec,
        1.0,
        Tolerance::TIGHT,
    );
    if algorithm != Algorithm::Hierarchical {
        // Efficiency can only discount the raw fabric rate, never exceed it.
        let raw_gbs = match collective.kind {
            CollectiveKind::PointToPoint => {
                topology.p2p_bw_gbs(collective.group[0], collective.group[1])
            }
            CollectiveKind::AllToAll => topology.injection_bw_gbs(),
            _ => topology.ring_busbw_gbs(n),
        };
        report.require_at_most(
            "wire_rate vs raw fabric rate",
            op.wire_rate_bytes_per_sec,
            raw_gbs * 1e9,
            Tolerance::TIGHT,
        );
    }
    report.compare(
        "isolated_duration_s vs alpha + beta recomposition",
        op.isolated_duration_s(),
        op.latency_s + op.wire_time_s(),
        Tolerance::TIGHT,
    );
    report
}

/// Pillar B: checks one kernel against the roofline — the duration must
/// recompose as `max(flop time, memory time) + launch`, respect the
/// datasheet-peak lower bound, and slow down monotonically with frequency.
pub fn check_kernel(
    kernel: &KernelKind,
    sku: &GpuSku,
    precision: Precision,
    datapath: Datapath,
) -> DivergenceReport {
    let mut report = DivergenceReport::new(format!("{kernel} on {}", sku.name));
    let d = roofline::demand(kernel, sku, precision, datapath);
    let iso = roofline::isolated_duration(kernel, sku, precision, datapath, 1.0);

    report.compare(
        "isolated duration vs max(flop, memory) + launch",
        iso,
        d.compute_time(1.0).max(d.memory_time(1.0)) + d.launch_s,
        Tolerance::TIGHT,
    );
    // Datasheet bounds, derived from SKU peaks alone: no efficiency model
    // can run faster than the silicon.
    let effective_path = if kernel.uses_matrix_math() {
        datapath
    } else {
        Datapath::Vector
    };
    let flop_floor = kernel.flops() / (sku.peak_tflops(precision, effective_path) * 1e12);
    let mem_floor = kernel.bytes(precision) / (sku.mem_bw_gbs * 1e9);
    report.require_at_least(
        "isolated duration vs datasheet FLOP floor",
        iso,
        flop_floor,
        Tolerance::TIGHT,
    );
    report.require_at_least(
        "isolated duration vs datasheet HBM floor",
        iso,
        mem_floor,
        Tolerance::TIGHT,
    );
    report.compare(
        "lower_bound_duration vs literal datasheet bound",
        roofline::lower_bound_duration(kernel, sku, precision, datapath),
        flop_floor.max(mem_floor),
        Tolerance::TIGHT,
    );
    report.require_at_least(
        "half frequency is at least as slow",
        roofline::isolated_duration(kernel, sku, precision, datapath, 0.5),
        iso,
        Tolerance::TIGHT,
    );
    report
}

/// Per-GPU closed-form floors for one scheduled timeline: the sum of
/// datasheet-peak kernel lower bounds on the compute stream and of
/// isolated collective durations on the comm stream, plus the total serial
/// work (the makespan upper bound).
struct TimelineFloors {
    compute: Vec<f64>,
    comm: Vec<f64>,
    serial_s: f64,
}

fn timeline_floors(workload: &olab_sim::Workload<Op>, sku: &GpuSku) -> TimelineFloors {
    let n = workload.n_gpus();
    let mut compute = vec![0.0; n];
    let mut comm = vec![0.0; n];
    for spec in workload.tasks() {
        match &spec.payload {
            Op::Compute(c) => {
                compute[spec.participants[0].index()] +=
                    roofline::lower_bound_duration(&c.kernel, sku, c.precision, c.datapath);
            }
            Op::Comm(op) => {
                // A collective occupies the comm stream of every
                // participant for at least its isolated time (contention
                // and rendezvous can only stretch it).
                for gpu in &spec.participants {
                    comm[gpu.index()] += op.isolated_duration_s();
                }
            }
        }
    }
    TimelineFloors {
        compute,
        comm,
        serial_s: 0.0,
    }
}

fn check_run(
    report: &mut DivergenceReport,
    tag: &str,
    workload: &olab_sim::Workload<Op>,
    run: &RunResult,
    sku: &GpuSku,
) {
    // Structural invariants (queue FIFO, dependency order, power-segment
    // coverage) — satellite of the same oracle.
    for v in verify_trace(workload, &run.trace) {
        report.violation(format!("{tag}: {v}"));
    }

    let mut floors = timeline_floors(workload, sku);
    floors.serial_s = run
        .trace
        .records()
        .iter()
        .map(|r| r.duration().as_secs())
        .sum();
    let makespan = run.e2e_s;

    let max_compute_floor = floors.compute.iter().cloned().fold(0.0, f64::max);
    let max_comm_floor = floors.comm.iter().cloned().fold(0.0, f64::max);
    report.require_at_least(
        &format!("{tag} makespan vs roofline compute floor"),
        makespan,
        max_compute_floor,
        Tolerance::BAND,
    );
    report.require_at_least(
        &format!("{tag} makespan vs isolated collective floor"),
        makespan,
        max_comm_floor,
        Tolerance::BAND,
    );
    // The engine never idles with work available, so the fully-serial sum
    // of record durations bounds the makespan from above.
    report.require_at_most(
        &format!("{tag} makespan vs serial sum of task durations"),
        makespan,
        floors.serial_s,
        Tolerance::BAND,
    );

    for (g, stats) in run.gpus.iter().enumerate() {
        report.require_at_least(
            &format!("{tag} gpu{g} comm_s vs isolated collective floor"),
            stats.comm_s,
            floors.comm[g],
            Tolerance::BAND,
        );
        report.require_at_least(
            &format!("{tag} gpu{g} compute_s vs roofline floor"),
            stats.compute_s,
            floors.compute[g],
            Tolerance::BAND,
        );
        report.require_at_most(
            &format!("{tag} gpu{g} comm_s vs makespan"),
            stats.comm_s,
            makespan,
            Tolerance::BAND,
        );
        report.require_at_most(
            &format!("{tag} gpu{g} compute_s vs makespan"),
            stats.compute_s,
            makespan,
            Tolerance::BAND,
        );

        // Energy pillar: ∫power over any partition of the span must
        // reproduce the total, and the total must sit between the idle
        // floor and the instantaneous-peak ceiling.
        let trace = &stats.power;
        let parts = 7;
        let h = makespan / parts as f64;
        let mut integral = 0.0;
        for i in 0..parts {
            let hi = if i == parts - 1 {
                makespan + 1.0 // absorb the last segment's roundoff edge
            } else {
                (i + 1) as f64 * h
            };
            integral += trace.energy_over(i as f64 * h, hi);
        }
        report.compare(
            &format!("{tag} gpu{g} energy_j vs windowed re-integration"),
            integral,
            trace.energy_j(),
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} energy_j vs avg power x duration"),
            trace.average() * trace.duration_s(),
            trace.energy_j(),
            Tolerance::BAND,
        );
        report.require_at_least(
            &format!("{tag} gpu{g} energy_j vs idle-power floor"),
            trace.energy_j(),
            sku.idle_w * makespan,
            Tolerance::LOOSE,
        );
        report.require_at_most(
            &format!("{tag} gpu{g} energy_j vs peak-power ceiling"),
            trace.energy_j(),
            trace.peak_instantaneous() * makespan,
            Tolerance::BAND,
        );
    }
}

/// Pillar C: runs one grid cell and checks every simulated quantity the
/// figures consume — makespans, per-GPU compute/collective times, energy —
/// against the closed-form floors, ceilings, and identities, on both the
/// overlapped and sequential traces.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from validation or the run itself;
/// out-of-memory cells (the paper's missing bars) are the caller's to
/// skip.
pub fn check_cell(exp: &Experiment) -> Result<DivergenceReport, ExperimentError> {
    let policy = exp.validate()?;
    let rep = exp.run()?;
    let mut report = DivergenceReport::new(exp.label());
    check_report(&mut report, exp, &rep, policy)?;
    Ok(report)
}

fn check_report(
    report: &mut DivergenceReport,
    exp: &Experiment,
    rep: &ExperimentReport,
    policy: olab_models::memory::ActivationPolicy,
) -> Result<(), ExperimentError> {
    let sku = exp.sku.sku();

    let overlapped_w = exp.timeline(ExecutionMode::Overlapped, policy)?;
    let sequential_w = exp.timeline(ExecutionMode::Sequential, policy)?;
    check_run(report, "overlapped", &overlapped_w, &rep.overlapped, &sku);
    check_run(report, "sequential", &sequential_w, &rep.sequential, &sku);

    // The derived metrics must mirror the traces they came from.
    let m = &rep.metrics;
    report.compare(
        "metrics.e2e_overlapped_s mirrors the trace",
        m.e2e_overlapped_s,
        rep.overlapped.e2e_s,
        Tolerance::TIGHT,
    );
    report.compare(
        "metrics.e2e_sequential_measured_s mirrors the trace",
        m.e2e_sequential_measured_s,
        rep.sequential.e2e_s,
        Tolerance::TIGHT,
    );
    report.compare(
        "metrics.energy_j mirrors the per-GPU sum",
        m.energy_j,
        rep.overlapped.gpus.iter().map(|g| g.power.energy_j()).sum(),
        Tolerance::BAND,
    );
    report.compare(
        "metrics.avg_power_w mirrors the traces",
        m.avg_power_w,
        rep.overlapped.average_power_w(),
        Tolerance::TIGHT,
    );
    report.require_at_least(
        "peak power vs average power",
        m.peak_power_w,
        m.avg_power_w,
        Tolerance::TIGHT,
    );

    // Ordering oracle: removing contention can only speed a fixed
    // schedule up, and Eq. 4's ideal is overlapped minus the slowdown.
    report.require_at_most(
        "ideal_simulated_e2e_s vs overlapped",
        rep.ideal_simulated_e2e_s,
        rep.overlapped.e2e_s,
        Tolerance::BAND,
    );
    report.require_at_most(
        "metrics.e2e_ideal_s vs overlapped",
        m.e2e_ideal_s,
        m.e2e_overlapped_s,
        Tolerance::TIGHT,
    );

    // Critical-path oracle: the path must account for the whole makespan.
    let cp = critical_path(&overlapped_w, &rep.overlapped.trace);
    report.compare(
        "critical path makespan vs trace",
        cp.makespan_s,
        rep.overlapped.e2e_s,
        Tolerance::TIGHT,
    );
    report.compare(
        "critical path compute + comm + idle vs makespan",
        cp.compute_s + cp.comm_s + cp.idle_s,
        cp.makespan_s,
        Tolerance::BAND,
    );
    Ok(())
}

/// Pillar D: differential check of the analytic fast path against the
/// event loop on the two fast-path-eligible execution shapes of a cell —
/// the sequential schedule on the contended machine and the overlapped
/// schedule on the uncontended (ideal) machine.
///
/// [`execute`](olab_core::execute) routes eligible cells through the
/// closed form while [`execute_event_loop`](olab_core::execute_event_loop)
/// always runs the reference engine; every quantity the figures consume —
/// makespan, per-GPU stream and co-activity times, energy, average and
/// peak power — must agree within [`Tolerance::BAND`] (the two paths
/// accumulate floating-point roundoff in different orders). The fast
/// trace additionally has to satisfy the same structural invariants
/// ([`verify_trace`]) as an engine trace.
///
/// The check is path-agnostic by design: if the fast path declines a cell
/// (or is disabled process-wide) both runs take the event loop and the
/// comparison is trivially clean, so callers that want to *prove* the fast
/// path fired must additionally watch
/// [`fast_runs`](olab_core::fastpath::fast_runs).
///
/// # Errors
///
/// Propagates [`ExperimentError`] from validation or timeline
/// construction; out-of-memory cells are the caller's to skip.
pub fn check_fastpath_equivalence(exp: &Experiment) -> Result<DivergenceReport, ExperimentError> {
    let policy = exp.validate()?;
    let machine = exp.machine();
    let mut report = DivergenceReport::new(format!("fastpath {}", exp.label()));

    let sequential_w = exp.timeline(ExecutionMode::Sequential, policy)?;
    compare_paths(&mut report, "sequential/contended", &sequential_w, &machine)?;
    let overlapped_w = exp.timeline(ExecutionMode::Overlapped, policy)?;
    compare_paths(
        &mut report,
        "overlapped/uncontended",
        &overlapped_w,
        &machine.uncontended(),
    )?;
    Ok(report)
}

fn compare_paths(
    report: &mut DivergenceReport,
    tag: &str,
    workload: &olab_sim::Workload<Op>,
    machine: &olab_core::Machine,
) -> Result<(), ExperimentError> {
    let fast = olab_core::execute(workload, machine)?;
    let reference = olab_core::execute_event_loop(workload, machine)?;

    for v in verify_trace(workload, &fast.trace) {
        report.violation(format!("{tag} (routed): {v}"));
    }

    report.compare(
        &format!("{tag} makespan"),
        fast.e2e_s,
        reference.e2e_s,
        Tolerance::BAND,
    );
    for (g, (f, r)) in fast.gpus.iter().zip(&reference.gpus).enumerate() {
        report.compare(
            &format!("{tag} gpu{g} compute_s"),
            f.compute_s,
            r.compute_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} comm_s"),
            f.comm_s,
            r.comm_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} overlapped_compute_s"),
            f.overlapped_compute_s,
            r.overlapped_compute_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} hidden_comm_s"),
            f.hidden_comm_s,
            r.hidden_comm_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} energy_j"),
            f.power.energy_j(),
            r.power.energy_j(),
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} avg power"),
            f.power.average(),
            r.power.average(),
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} peak power"),
            f.power.peak_instantaneous(),
            r.power.peak_instantaneous(),
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} gpu{g} overlap window count"),
            f.overlap_windows.len() as f64,
            r.overlap_windows.len() as f64,
            Tolerance::TIGHT,
        );
    }

    // Third leg: the scalar-only lean executor, which the fast path serves
    // without materializing a trace, must agree with the reduction of the
    // reference result quantity by quantity.
    let lean = olab_core::execute_lean(workload, machine)?;
    let lean_ref = olab_core::LeanRun::summarize(&reference);
    report.compare(
        &format!("{tag} lean makespan"),
        lean.e2e_s,
        lean_ref.e2e_s,
        Tolerance::BAND,
    );
    for (g, (f, r)) in lean.gpus.iter().zip(&lean_ref.gpus).enumerate() {
        report.compare(
            &format!("{tag} lean gpu{g} compute_s"),
            f.compute_s,
            r.compute_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} comm_s"),
            f.comm_s,
            r.comm_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} overlapped_compute_s"),
            f.overlapped_compute_s,
            r.overlapped_compute_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} hidden_comm_s"),
            f.hidden_comm_s,
            r.hidden_comm_s,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} energy_j"),
            f.energy_j,
            r.energy_j,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} avg power"),
            f.average_power_w,
            r.average_power_w,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} peak power"),
            f.peak_power_w,
            r.peak_power_w,
            Tolerance::BAND,
        );
        report.compare(
            &format!("{tag} lean gpu{g} overlap window count"),
            f.overlap_windows as f64,
            r.overlap_windows as f64,
            Tolerance::TIGHT,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::Strategy;
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;
    use olab_sim::GpuId;

    #[test]
    fn tolerance_allowance_scales_with_magnitude() {
        let t = Tolerance {
            rel: 1e-3,
            abs: 1e-9,
        };
        assert!((t.allowance(1000.0) - (1.0 + 1e-9)).abs() < 1e-12);
        assert!((t.allowance(0.0) - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn report_names_the_worst_offender_first() {
        let mut r = DivergenceReport::new("unit");
        r.compare("small miss", 1.001, 1.0, Tolerance::TIGHT);
        r.compare("huge miss", 5.0, 1.0, Tolerance::TIGHT);
        r.violation("record 3 'grad_ar': end before start");
        assert!(!r.is_clean());
        assert_eq!(r.issues(), 3);
        assert_eq!(r.worst().unwrap().quantity, "huge miss");
        let text = r.to_string();
        let worst_at = text.find("worst offender: huge miss").unwrap();
        assert!(worst_at < text.find("small miss").unwrap());
        assert!(text.contains("record 3 'grad_ar'"));
    }

    #[test]
    fn non_finite_actuals_always_diverge() {
        let mut r = DivergenceReport::new("unit");
        r.compare("nan", f64::NAN, 1.0, Tolerance::LOOSE);
        r.require_at_least("inf floor", f64::NAN, 0.0, Tolerance::LOOSE);
        assert_eq!(r.divergences.len(), 2);
        assert_eq!(r.worst().unwrap().severity(), f64::INFINITY);
    }

    #[test]
    fn merge_prefixes_the_sub_context() {
        let mut sub = DivergenceReport::new("cell A");
        sub.compare("makespan", 2.0, 1.0, Tolerance::TIGHT);
        sub.violation("record 0 't0': end before start");
        let mut top = DivergenceReport::new("suite");
        top.merge(sub);
        assert!(top.divergences[0].quantity.starts_with("cell A: "));
        assert!(top.violations[0].starts_with("cell A: "));
    }

    #[test]
    fn comm_oracle_accepts_the_production_lowering() {
        let sku = GpuSku::h100();
        let topo = Topology::nvswitch(8, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::Broadcast,
            CollectiveKind::AllToAll,
        ] {
            for bytes in [1u64 << 12, 1 << 20, 1 << 28] {
                let coll = Collective::new(kind, bytes, group.clone());
                let algo = Algorithm::auto(kind, bytes, 8);
                let report = check_comm_op(&coll, algo, &sku, &topo, Precision::Fp16);
                assert!(report.is_clean(), "{report}");
            }
        }
        let p2p = Collective::p2p(1 << 24, GpuId(0), GpuId(1));
        let report = check_comm_op(&p2p, Algorithm::Direct, &sku, &topo, Precision::Fp16);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn kernel_oracle_accepts_the_production_roofline() {
        let kernels = [
            KernelKind::gemm(4096, 4096, 4096),
            KernelKind::gemm(64, 64, 64),
            KernelKind::LayerNorm { elems: 1 << 20 },
            KernelKind::Softmax {
                rows: 1 << 12,
                cols: 1 << 10,
            },
            KernelKind::AdamStep { params: 1 << 24 },
        ];
        for sku in [GpuSku::a100(), GpuSku::h100(), GpuSku::mi250()] {
            for kernel in &kernels {
                for datapath in [Datapath::TensorCore, Datapath::Vector] {
                    let report = check_kernel(kernel, &sku, Precision::Fp16, datapath);
                    assert!(report.is_clean(), "{report}");
                }
            }
        }
    }

    #[test]
    fn cell_oracle_accepts_a_stock_fsdp_cell() {
        let exp =
            Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256);
        let report = check_cell(&exp).expect("cell must be feasible");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn cell_oracle_propagates_oom() {
        // A100 40 GB cannot hold 13B-parameter FSDP at batch 64 — the
        // paper's missing bars. The oracle must report that as an error,
        // not a divergence.
        let exp = Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_13B, Strategy::Fsdp, 64);
        assert!(matches!(
            check_cell(&exp),
            Err(ExperimentError::OutOfMemory { .. })
        ));
    }
}
