//! # olab-oracle — conformance oracle for the overlap-lab simulator
//!
//! Property-based differential verification of the simulator against
//! closed-form models, organized as three pillars:
//!
//! * [`gen`] — seeded, shrinkable random generators for workload DAGs
//!   and experiment grid cells, usable from plain `#[test]`s without the
//!   feature-gated `proptest` dependency;
//! * [`oracles`] — expected values re-derived *independently* of the
//!   production code paths (collective bytes-on-wire and step counts,
//!   roofline latency bounds, energy as the integral of power, makespan
//!   lower bounds), compared against simulator output within documented
//!   tolerance bands, with a human-readable [`oracles::DivergenceReport`]
//!   that names the worst-offending quantity;
//! * [`metamorphic`] — relations that must hold between *pairs* of runs:
//!   doubling link bandwidth never increases collective time, adding a
//!   GPU never shrinks all-reduce bytes per rank, raising a power cap
//!   never increases makespan, scaling sequence length moves the compute
//!   share monotonically.
//!
//! The integration suite (`tests/conformance.rs`) fans the oracle across
//! the full registry grid on the `olab-grid` pool, so a code change that
//! silently bends a paper trend fails CI with a report pointing at the
//! first cell and quantity that diverged. See `docs/VERIFICATION.md` for
//! the tolerance-band rationale and local reproduction instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod metamorphic;
pub mod oracles;

pub use gen::{random_experiment, random_plan, shrink_experiment, shrink_plan, Gen, WorkloadPlan};
pub use metamorphic::{
    check_collective_relations, check_experiment_relations, check_fault_relations,
    check_resilience_grid_cell, check_resilience_relations, RelationOutcome,
};
pub use oracles::{
    check_cell, check_comm_op, check_fastpath_equivalence, check_kernel, Divergence,
    DivergenceReport, Tolerance,
};
