//! Property-based tests for power traces and samplers.

use olab_power::{PowerTrace, Sampler};
use olab_sim::{PowerSegment, SimTime, Window};
use proptest::prelude::*;

fn random_trace() -> impl Strategy<Value = PowerTrace> {
    proptest::collection::vec((0.0001f64..0.05, 10.0f64..900.0), 1..40).prop_map(|spans| {
        let mut t = 0.0;
        let mut segments = Vec::new();
        for (dur, watts) in spans {
            segments.push(PowerSegment {
                window: Window {
                    start: SimTime::from_secs(t),
                    end: SimTime::from_secs(t + dur),
                },
                watts,
            });
            t += dur;
        }
        PowerTrace::from_segments(&segments)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sampling conserves energy: the mean of window averages weighted by
    /// window length equals the exact average.
    #[test]
    fn sampling_conserves_energy(trace in random_trace(), interval_ms in 1.0f64..100.0) {
        let sampler = Sampler::with_interval("t", interval_ms * 1e-3);
        let sampled = trace.sample(sampler);
        // Reconstruct energy from the samples (each covers up to interval,
        // the last possibly less).
        let mut energy = 0.0;
        let dur = trace.duration_s();
        for (i, s) in sampled.samples.iter().enumerate() {
            let start = i as f64 * sampler.interval_s;
            let end = (start + sampler.interval_s).min(dur);
            energy += s.watts * (end - start);
        }
        let exact = trace.energy_j();
        prop_assert!((energy / exact - 1.0).abs() < 1e-6, "{energy} vs {exact}");
    }

    /// Peaks are anti-monotone in the sampling interval: a coarser sampler
    /// never observes a higher peak.
    #[test]
    fn coarser_sampling_never_raises_peaks(trace in random_trace()) {
        let mut last_peak = f64::INFINITY;
        for interval in [0.0005, 0.005, 0.05, 0.5] {
            let peak = trace
                .sample(Sampler::with_interval("t", interval))
                .peak()
                .unwrap_or(0.0);
            prop_assert!(peak <= last_peak + 1e-9);
            prop_assert!(peak <= trace.peak_instantaneous() + 1e-9);
            last_peak = peak;
        }
    }

    /// Window averages never exceed the instantaneous peak or drop below
    /// the instantaneous minimum.
    #[test]
    fn averages_are_bounded_by_extremes(trace in random_trace(), a in 0.0f64..0.5, len in 0.001f64..0.5) {
        let avg = trace.average_over(a, a + len);
        if avg > 0.0 {
            prop_assert!(avg <= trace.peak_instantaneous() + 1e-9);
        }
        prop_assert!(trace.average() <= trace.peak_instantaneous() + 1e-9);
    }

    /// peak_over on the full span equals the global peak.
    #[test]
    fn peak_over_full_span_is_global_peak(trace in random_trace()) {
        let full = trace.peak_over(0.0, trace.duration_s() + 1.0);
        prop_assert!((full - trace.peak_instantaneous()).abs() < 1e-9);
    }
}
