//! # olab-power — power telemetry
//!
//! Converts the simulator's exact piecewise-constant power traces into the
//! *sampled* telemetry a real system exposes, mirroring the paper's
//! methodology: NVML reports ~100 ms averages on NVIDIA boards, AMD-SMI
//! samples down to 1 ms on Instinct parts — which is exactly why the paper's
//! fine-grained power trace figure (Fig. 7) uses the MI250.
//!
//! ```rust
//! use olab_power::{PowerTrace, Sampler};
//! use olab_sim::{PowerSegment, SimTime, Window};
//!
//! let segments = vec![
//!     PowerSegment {
//!         window: Window { start: SimTime::ZERO, end: SimTime::from_millis(10.0) },
//!         watts: 100.0,
//!     },
//!     PowerSegment {
//!         window: Window { start: SimTime::from_millis(10.0), end: SimTime::from_millis(20.0) },
//!         watts: 500.0,
//!     },
//! ];
//! let trace = PowerTrace::from_segments(&segments);
//! assert_eq!(trace.peak_instantaneous(), 500.0);
//! // A coarse sampler smears the spike.
//! let coarse = trace.sample(Sampler::nvml());
//! assert!(coarse.peak().unwrap_or(0.0) <= 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sampler;
mod trace;

pub use sampler::Sampler;
pub use trace::{PowerSample, PowerStats, PowerTrace, SampledTrace};
