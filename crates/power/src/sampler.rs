//! Telemetry samplers.

use std::fmt;

/// A power-telemetry sampler: reports the average draw over consecutive
/// windows of `interval_s`, like the vendor tools do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    /// Tool name, for report labeling.
    pub name: &'static str,
    /// Averaging window, seconds.
    pub interval_s: f64,
}

impl Sampler {
    /// NVML-style sampling: 100 ms averaging windows (the granularity the
    /// paper reports for `nvidia-smi`/NVML on A100/H100).
    pub fn nvml() -> Self {
        Sampler {
            name: "nvml",
            interval_s: 0.100,
        }
    }

    /// AMD-SMI sampling at the paper's 20 ms configuration.
    pub fn amd_smi() -> Self {
        Sampler {
            name: "amd-smi",
            interval_s: 0.020,
        }
    }

    /// AMD ROCm-SMI fine-grained sampling (1 ms), used for the paper's
    /// power-trace figure.
    pub fn rocm_smi_fine() -> Self {
        Sampler {
            name: "rocm-smi-1ms",
            interval_s: 0.001,
        }
    }

    /// A custom sampler.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive and finite.
    pub fn with_interval(name: &'static str, interval_s: f64) -> Self {
        assert!(
            interval_s.is_finite() && interval_s > 0.0,
            "invalid sampling interval {interval_s}"
        );
        Sampler { name, interval_s }
    }
}

impl fmt::Display for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.0} ms)", self.name, self.interval_s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_presets_match_paper_methodology() {
        assert_eq!(Sampler::nvml().interval_s, 0.100);
        assert_eq!(Sampler::amd_smi().interval_s, 0.020);
        assert_eq!(Sampler::rocm_smi_fine().interval_s, 0.001);
    }

    #[test]
    #[should_panic(expected = "invalid sampling interval")]
    fn zero_interval_is_rejected() {
        Sampler::with_interval("bad", 0.0);
    }

    #[test]
    fn display_shows_interval() {
        assert_eq!(Sampler::nvml().to_string(), "nvml (100 ms)");
    }
}
