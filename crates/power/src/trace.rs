//! Power traces and sampled telemetry.

use crate::Sampler;
use olab_sim::PowerSegment;

/// One telemetry reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Center of the averaging window, seconds.
    pub time_s: f64,
    /// Average draw over the window, watts.
    pub watts: f64,
}

/// One-pass summary of a piecewise-constant power trace.
///
/// Computing average, peak, and energy separately walks the segment list
/// three times (and [`PowerTrace::from_segments`] copies it first); this
/// struct folds all of them in a single pass directly over the engine's
/// segments. Each field matches the corresponding [`PowerTrace`] accessor
/// bit-for-bit: the accumulation order is identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerStats {
    /// Time-weighted average draw, watts (0 for an empty trace).
    pub average_w: f64,
    /// True instantaneous peak draw, watts.
    pub peak_w: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// End of the trace, seconds.
    pub duration_s: f64,
}

impl PowerStats {
    /// Summarizes engine power segments in one pass without copying them.
    pub fn from_segments(segments: &[PowerSegment]) -> Self {
        let (mut energy, mut span, mut peak) = (0.0f64, 0.0f64, 0.0f64);
        for seg in segments {
            let t0 = seg.window.start.as_secs();
            let t1 = seg.window.end.as_secs();
            energy += seg.watts * (t1 - t0);
            span += t1 - t0;
            peak = peak.max(seg.watts);
        }
        PowerStats {
            average_w: if span > 0.0 { energy / span } else { 0.0 },
            peak_w: peak,
            energy_j: energy,
            duration_s: segments.last().map_or(0.0, |s| s.window.end.as_secs()),
        }
    }
}

/// An exact piecewise-constant power trace for one device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    segments: Vec<(f64, f64, f64)>, // (start, end, watts)
}

impl PowerTrace {
    /// Builds a trace from engine power segments.
    pub fn from_segments(segments: &[PowerSegment]) -> Self {
        PowerTrace {
            segments: segments
                .iter()
                .map(|s| (s.window.start.as_secs(), s.window.end.as_secs(), s.watts))
                .collect(),
        }
    }

    /// End of the trace, seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.1)
    }

    /// True instantaneous peak draw, watts.
    pub fn peak_instantaneous(&self) -> f64 {
        self.segments.iter().map(|s| s.2).fold(0.0, f64::max)
    }

    /// Time-weighted average draw, watts.
    pub fn average(&self) -> f64 {
        let (mut energy, mut span) = (0.0, 0.0);
        for (t0, t1, w) in &self.segments {
            energy += w * (t1 - t0);
            span += t1 - t0;
        }
        if span > 0.0 {
            energy / span
        } else {
            0.0
        }
    }

    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.segments.iter().map(|(t0, t1, w)| w * (t1 - t0)).sum()
    }

    /// One-pass summary: average, peak, energy, and duration together,
    /// matching the individual accessors bit-for-bit.
    pub fn stats(&self) -> PowerStats {
        let (mut energy, mut span, mut peak) = (0.0f64, 0.0f64, 0.0f64);
        for (t0, t1, w) in &self.segments {
            energy += w * (t1 - t0);
            span += t1 - t0;
            peak = peak.max(*w);
        }
        PowerStats {
            average_w: if span > 0.0 { energy / span } else { 0.0 },
            peak_w: peak,
            energy_j: energy,
            duration_s: self.duration_s(),
        }
    }

    /// Average draw over `[a, b)`, watts (0 if the interval is empty).
    pub fn average_over(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut energy = 0.0;
        for (t0, t1, w) in &self.segments {
            let lo = t0.max(a);
            let hi = t1.min(b);
            if hi > lo {
                energy += w * (hi - lo);
            }
        }
        energy / (b - a)
    }

    /// Energy delivered within `[a, b)`, joules (0 if the interval is
    /// empty or lies outside the trace). The windowed complement of
    /// [`PowerTrace::energy_j`]: summing `energy_over` across a partition
    /// of `[0, duration_s)` reproduces the total exactly.
    pub fn energy_over(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut energy = 0.0;
        for (t0, t1, w) in &self.segments {
            let lo = t0.max(a);
            let hi = t1.min(b);
            if hi > lo {
                energy += w * (hi - lo);
            }
        }
        energy
    }

    /// Peak instantaneous draw within `[a, b)`, watts.
    pub fn peak_over(&self, a: f64, b: f64) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.1.min(b) > s.0.max(a))
            .map(|s| s.2)
            .fold(0.0, f64::max)
    }

    /// Samples the trace the way a telemetry tool would: one reading per
    /// `sampler.interval_s`, each the average over its window.
    ///
    /// Boundary semantics (locked in by unit tests, and mirrored by the
    /// `olab-obs` counter sampler):
    ///
    /// * window `k` covers `[k·dt, min((k+1)·dt, duration))` — boundaries
    ///   are exact multiples of the interval, never accumulated sums, so
    ///   long traces do not drift;
    /// * the final partial window is included when the cadence does not
    ///   divide the trace length, and its reading averages only the
    ///   covered span;
    /// * each reading is stamped at the center of its (possibly partial)
    ///   window;
    /// * zero-duration segments carry no energy and never affect samples;
    /// * an empty trace yields no samples.
    ///
    /// # Panics
    ///
    /// Panics if the sampler's interval is not positive and finite (a
    /// hand-rolled `Sampler` bypassing [`Sampler::with_interval`]).
    pub fn sample(&self, sampler: Sampler) -> SampledTrace {
        let dur = self.duration_s();
        let dt = sampler.interval_s;
        assert!(dt.is_finite() && dt > 0.0, "invalid sampling interval {dt}");
        let mut samples = Vec::new();
        let mut k = 0u64;
        loop {
            let t = k as f64 * dt;
            if t >= dur {
                break;
            }
            let end = (t + dt).min(dur);
            samples.push(PowerSample {
                time_s: (t + end) / 2.0,
                watts: self.average_over(t, end),
            });
            k += 1;
        }
        SampledTrace { sampler, samples }
    }
}

/// A sequence of telemetry readings from one sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledTrace {
    /// The sampler that produced the readings.
    pub sampler: Sampler,
    /// The readings, in time order.
    pub samples: Vec<PowerSample>,
}

impl SampledTrace {
    /// Highest reading, if any.
    pub fn peak(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.watts)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.max(w))))
    }

    /// Mean of the readings, if any.
    pub fn average(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.watts).sum::<f64>() / self.samples.len() as f64)
    }

    /// Readings normalized by `tdp_w` (for the paper's x TDP axes).
    pub fn normalized(&self, tdp_w: f64) -> Vec<PowerSample> {
        self.samples
            .iter()
            .map(|s| PowerSample {
                time_s: s.time_s,
                watts: s.watts / tdp_w,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_sim::{SimTime, Window};

    fn seg(a: f64, b: f64, w: f64) -> PowerSegment {
        PowerSegment {
            window: Window {
                start: SimTime::from_secs(a),
                end: SimTime::from_secs(b),
            },
            watts: w,
        }
    }

    fn spike_trace() -> PowerTrace {
        // 95 ms at 100 W, 5 ms spike at 600 W.
        PowerTrace::from_segments(&[seg(0.0, 0.095, 100.0), seg(0.095, 0.100, 600.0)])
    }

    #[test]
    fn exact_statistics() {
        let t = spike_trace();
        assert_eq!(t.peak_instantaneous(), 600.0);
        assert!((t.average() - 125.0).abs() < 1e-9);
        assert!((t.energy_j() - 12.5).abs() < 1e-9);
        assert!((t.duration_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn coarse_sampling_hides_spikes_fine_sampling_sees_them() {
        // The reason Fig. 7 uses the MI250: 1 ms sampling sees the spike,
        // 100 ms sampling averages it away.
        let t = spike_trace();
        let nvml = t.sample(Sampler::nvml());
        let fine = t.sample(Sampler::rocm_smi_fine());
        assert!((nvml.peak().unwrap() - 125.0).abs() < 1e-9);
        assert!((fine.peak().unwrap() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn sample_count_matches_duration_over_interval() {
        let t = spike_trace();
        let fine = t.sample(Sampler::rocm_smi_fine());
        assert_eq!(fine.samples.len(), 100);
    }

    #[test]
    fn average_over_clamps_to_segments() {
        let t = spike_trace();
        assert!((t.average_over(0.0, 0.095) - 100.0).abs() < 1e-9);
        assert_eq!(t.average_over(1.0, 2.0), 0.0);
        assert_eq!(t.average_over(0.5, 0.5), 0.0);
    }

    #[test]
    fn energy_over_partitions_sum_to_total() {
        let t = spike_trace();
        // Exact windowed integrals.
        assert!((t.energy_over(0.0, 0.095) - 9.5).abs() < 1e-9);
        assert!((t.energy_over(0.095, 0.100) - 3.0).abs() < 1e-9);
        // A partition of the full span reproduces energy_j.
        let parts =
            t.energy_over(0.0, 0.03) + t.energy_over(0.03, 0.097) + t.energy_over(0.097, 1.0);
        assert!((parts - t.energy_j()).abs() < 1e-9);
        // Degenerate and out-of-range windows are zero.
        assert_eq!(t.energy_over(0.5, 0.5), 0.0);
        assert_eq!(t.energy_over(2.0, 1.0), 0.0);
        assert_eq!(t.energy_over(5.0, 6.0), 0.0);
    }

    #[test]
    fn final_partial_window_is_included_and_averages_only_its_span() {
        // 0.25 s trace, 0.1 s cadence: windows [0,0.1), [0.1,0.2), [0.2,0.25).
        let t = PowerTrace::from_segments(&[seg(0.0, 0.2, 100.0), seg(0.2, 0.25, 400.0)]);
        let s = t.sample(Sampler::nvml());
        assert_eq!(s.samples.len(), 3);
        let last = s.samples[2];
        // Center of the partial window, not of a full one.
        assert!((last.time_s - 0.225).abs() < 1e-12);
        // Average over [0.2, 0.25) only: all at 400 W, undiluted by the
        // missing 0.05 s the full window would have had.
        assert!((last.watts - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cadence_not_dividing_duration_yields_ceil_windows() {
        // 0.1 s trace at 0.03 s cadence: 3 full windows + 0.01 s partial.
        let t = PowerTrace::from_segments(&[seg(0.0, 0.1, 100.0)]);
        let s = t.sample(Sampler::with_interval("odd", 0.03));
        assert_eq!(s.samples.len(), 4);
        assert!((s.samples[3].time_s - 0.095).abs() < 1e-12);
        for sample in &s.samples {
            assert!((sample.watts - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn window_boundaries_do_not_drift_on_long_traces() {
        // 10 s at 1 ms cadence: exactly 10_000 windows; an accumulating
        // `t += dt` loop drifts off the k·dt grid well before this.
        let t = PowerTrace::from_segments(&[seg(0.0, 10.0, 100.0)]);
        let s = t.sample(Sampler::rocm_smi_fine());
        assert_eq!(s.samples.len(), 10_000);
        let mid = s.samples[9_999];
        assert!((mid.time_s - 9.9995).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_segments_carry_no_energy_and_do_not_skew_samples() {
        // A zero-width 999 W glitch between two plateaus.
        let t = PowerTrace::from_segments(&[
            seg(0.0, 0.05, 100.0),
            seg(0.05, 0.05, 999.0),
            seg(0.05, 0.1, 200.0),
        ]);
        assert!((t.average() - 150.0).abs() < 1e-9);
        assert!((t.energy_j() - 15.0).abs() < 1e-9);
        let s = t.sample(Sampler::nvml());
        assert_eq!(s.samples.len(), 1);
        assert!((s.samples[0].watts - 150.0).abs() < 1e-9);
        // peak_over ignores the empty segment; peak_instantaneous (a
        // segment-wise statistic, not a time integral) still reports it.
        assert_eq!(t.peak_over(0.0, 0.1), 200.0);
        assert_eq!(t.peak_instantaneous(), 999.0);
    }

    #[test]
    #[should_panic(expected = "invalid sampling interval")]
    fn hand_rolled_zero_interval_sampler_is_rejected() {
        let t = spike_trace();
        t.sample(Sampler {
            name: "bad",
            interval_s: 0.0,
        });
    }

    #[test]
    fn normalization_divides_by_tdp() {
        let t = spike_trace().sample(Sampler::rocm_smi_fine());
        let norm = t.normalized(400.0);
        let peak = norm.iter().map(|s| s.watts).fold(0.0, f64::max);
        assert!((peak - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = PowerTrace::default();
        assert_eq!(t.average(), 0.0);
        assert_eq!(t.duration_s(), 0.0);
        let s = t.sample(Sampler::nvml());
        assert!(s.peak().is_none());
        assert!(s.average().is_none());
    }
}
