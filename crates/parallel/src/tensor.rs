//! Megatron-style tensor (intra-layer) parallelism.
//!
//! Every transformer layer is sharded across all ranks: the QKV and MLP-up
//! projections are column-parallel, the output and MLP-down projections
//! row-parallel. Each layer therefore ends in an **all-reduce of the
//! activations** in the forward pass (2 per layer) and of the input
//! gradients in the backward pass (2 per layer).
//!
//! Forward all-reduces sit on the critical path — nothing is available to
//! hide them under (this is exactly the gap the paper's Domino citation
//! attacks with tensor slicing). Backward all-reduces *can* overlap: the
//! weight-gradient GEMMs have no downstream consumer until the optimizer,
//! so Megatron launches the input-gradient all-reduce and computes wgrads
//! concurrently — reproduced here by splitting each layer's backward into
//! dgrad / wgrad halves around the collective.

use crate::{ComputeOp, ExecutionMode, Op, ScheduleBuilder};
use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{Datapath, GpuSku, KernelKind, Precision};
use olab_models::memory::ActivationPolicy;
use olab_models::{Family, TransformerConfig};
use olab_net::Topology;
use olab_sim::{GpuId, TaskId, TaskSpec, Workload};

/// Configuration of one tensor-parallel training iteration.
#[derive(Debug, Clone)]
pub struct TensorPlan {
    /// The model to train.
    pub model: TransformerConfig,
    /// Tensor-parallel ranks (= GPUs); must divide the head count.
    pub ranks: usize,
    /// Global batch size (every rank sees every sample).
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Training precision.
    pub precision: Precision,
    /// Datapath for matrix kernels.
    pub datapath: Datapath,
    /// Whether activations are recomputed in the backward pass.
    pub activation_policy: ActivationPolicy,
}

impl TensorPlan {
    /// Bytes of one boundary activation tensor (the all-reduce payload).
    pub fn activation_bytes(&self) -> u64 {
        self.batch * self.seq * self.model.hidden * self.precision.bytes()
    }
}

/// Per-rank kernels of one tensor-parallel layer, split at the collective
/// boundaries.
struct TpLayer {
    /// Attention block: LN, col-parallel QKV, attention, row-parallel proj.
    attn_forward: Vec<KernelKind>,
    /// MLP block: LN, col-parallel up, activation, row-parallel down.
    mlp_forward: Vec<KernelKind>,
    /// Residual adds after each block's all-reduce.
    residual: KernelKind,
    /// dgrad halves (produce the input gradients the all-reduce needs).
    mlp_dgrad: Vec<KernelKind>,
    attn_dgrad: Vec<KernelKind>,
    /// wgrad halves (free to overlap the all-reduces).
    mlp_wgrad: Vec<KernelKind>,
    attn_wgrad: Vec<KernelKind>,
}

fn tp_layer(cfg: &TransformerConfig, ranks: u64, batch: u64, seq: u64) -> TpLayer {
    let t = batch * seq;
    let h = cfg.hidden;
    let hd = cfg.head_dim();
    let heads_local = u64::from(cfg.heads) / ranks;
    let bh = batch * heads_local;
    let ffn_local = cfg.ffn_hidden / ranks;

    let attn_forward = vec![
        KernelKind::LayerNorm { elems: t * h },
        KernelKind::Gemm {
            m: t,
            n: 3 * h / ranks,
            k: h,
        }, // col-parallel QKV
        KernelKind::BatchedGemm {
            batch: bh,
            m: seq,
            n: seq,
            k: hd,
        },
        KernelKind::Softmax {
            rows: bh * seq,
            cols: seq,
        },
        KernelKind::BatchedGemm {
            batch: bh,
            m: seq,
            n: hd,
            k: seq,
        },
        KernelKind::Gemm {
            m: t,
            n: h,
            k: h / ranks,
        }, // row-parallel proj
    ];
    let mlp_forward = match cfg.family {
        Family::Gpt => vec![
            KernelKind::LayerNorm { elems: t * h },
            KernelKind::Gemm {
                m: t,
                n: ffn_local,
                k: h,
            },
            KernelKind::Elementwise {
                elems: t * ffn_local,
                flops_per_elem: 8,
                streams: 2,
            },
            KernelKind::Gemm {
                m: t,
                n: h,
                k: ffn_local,
            },
        ],
        Family::Llama => vec![
            KernelKind::LayerNorm { elems: t * h },
            KernelKind::Gemm {
                m: t,
                n: 2 * ffn_local,
                k: h,
            },
            KernelKind::Elementwise {
                elems: t * ffn_local,
                flops_per_elem: 6,
                streams: 3,
            },
            KernelKind::Gemm {
                m: t,
                n: h,
                k: ffn_local,
            },
        ],
    };
    let residual = KernelKind::Elementwise {
        elems: t * h,
        flops_per_elem: 1,
        streams: 3,
    };

    // Backward: dgrad = dY·Wᵀ per GEMM, wgrad = Xᵀ·dY; non-GEMM kernels'
    // backward goes into the dgrad half (it is on the gradient path).
    let split = |forward: &[KernelKind]| -> (Vec<KernelKind>, Vec<KernelKind>) {
        let mut dgrad = Vec::new();
        let mut wgrad = Vec::new();
        for k in forward.iter().rev() {
            match *k {
                KernelKind::Gemm { m, n, k } => {
                    dgrad.push(KernelKind::Gemm { m, n: k, k: n });
                    wgrad.push(KernelKind::Gemm { m: k, n, k: m });
                }
                KernelKind::BatchedGemm { batch, m, n, k } => {
                    dgrad.push(KernelKind::BatchedGemm {
                        batch,
                        m,
                        n: k,
                        k: n,
                    });
                    wgrad.push(KernelKind::BatchedGemm {
                        batch,
                        m: k,
                        n,
                        k: m,
                    });
                }
                other => dgrad.push(other),
            }
        }
        (dgrad, wgrad)
    };
    let (mlp_dgrad, mlp_wgrad) = split(&mlp_forward);
    let (attn_dgrad, attn_wgrad) = split(&attn_forward);

    TpLayer {
        attn_forward,
        mlp_forward,
        residual,
        mlp_dgrad,
        attn_dgrad,
        mlp_wgrad,
        attn_wgrad,
    }
}

/// Builds the task DAG of one tensor-parallel iteration.
///
/// # Panics
///
/// Panics if `ranks < 2`, the head count or MLP width is not divisible by
/// `ranks`, or the topology is smaller than `ranks`.
pub fn tensor_timeline(
    plan: &TensorPlan,
    sku: &GpuSku,
    topo: &Topology,
    mode: ExecutionMode,
) -> Workload<Op> {
    assert!(plan.ranks >= 2, "tensor parallelism needs at least 2 ranks");
    assert!(topo.n_gpus() >= plan.ranks, "topology too small");
    let ranks = plan.ranks as u64;
    assert_eq!(
        u64::from(plan.model.heads) % ranks,
        0,
        "head count must divide across ranks"
    );
    assert_eq!(
        plan.model.ffn_hidden % ranks,
        0,
        "MLP width must divide across ranks"
    );

    let n = plan.ranks;
    let group: Vec<GpuId> = (0..n as u16).map(GpuId).collect();
    let layers = plan.model.layers as usize;
    let mut b = ScheduleBuilder::new(n, mode);

    let compute_op =
        |k: &KernelKind| Op::Compute(ComputeOp::new(*k, plan.precision, plan.datapath));
    let allreduce = |bytes: u64| {
        let c = Collective::all_reduce(bytes, group.clone());
        let algo = Algorithm::auto_for(c.kind, c.bytes, &c.group, topo);
        Op::Comm(lower(&c, algo, sku, topo, plan.precision))
    };

    let layer = tp_layer(&plan.model, ranks, plan.batch, plan.seq);
    let act_bytes = plan.activation_bytes();

    // Pushes kernels on every rank; returns the last task per rank.
    let push_kernels = |b: &mut ScheduleBuilder,
                        label: &str,
                        kernels: &[KernelKind],
                        first_deps: &[TaskId]|
     -> Vec<TaskId> {
        let mut last = vec![TaskId(0); n];
        for (g, gpu) in group.iter().enumerate() {
            for (ki, k) in kernels.iter().enumerate() {
                let mut spec =
                    TaskSpec::compute(format!("{label}.k{ki}.{gpu}"), *gpu, compute_op(k));
                if ki == 0 {
                    spec.deps.extend_from_slice(first_deps);
                }
                last[g] = b.push(spec);
            }
        }
        last
    };
    let push_allreduce = |b: &mut ScheduleBuilder, label: &str, deps: &[TaskId]| -> TaskId {
        let mut spec = TaskSpec::collective(label, group.clone(), allreduce(act_bytes));
        spec.deps.extend_from_slice(deps);
        b.push(spec)
    };

    // ---- Forward ----
    // Forward all-reduces are on the critical path: the residual add needs
    // the reduced activations.
    let mut fwd_barrier: Vec<TaskId> = Vec::new(); // carried dependency between blocks
    for i in 0..layers {
        let attn = push_kernels(
            &mut b,
            &format!("L{i}.f.attn"),
            &layer.attn_forward,
            &fwd_barrier,
        );
        let ar1 = push_allreduce(&mut b, &format!("ar.f1.L{i}"), &attn);
        let res1 = push_kernels(
            &mut b,
            &format!("L{i}.f.res1"),
            std::slice::from_ref(&layer.residual),
            &[ar1],
        );
        let mlp = push_kernels(&mut b, &format!("L{i}.f.mlp"), &layer.mlp_forward, &res1);
        let ar2 = push_allreduce(&mut b, &format!("ar.f2.L{i}"), &mlp);
        fwd_barrier = push_kernels(
            &mut b,
            &format!("L{i}.f.res2"),
            std::slice::from_ref(&layer.residual),
            &[ar2],
        );
    }

    // ---- Backward ----
    // Recomputation replays the layer's forward before its backward.
    let mut bwd_barrier: Vec<TaskId> = fwd_barrier.clone();
    for i in (0..layers).rev() {
        if plan.activation_policy == ActivationPolicy::Recompute {
            let ra = push_kernels(
                &mut b,
                &format!("L{i}.rc.attn"),
                &layer.attn_forward,
                &bwd_barrier,
            );
            bwd_barrier = push_kernels(&mut b, &format!("L{i}.rc.mlp"), &layer.mlp_forward, &ra);
        }
        // MLP backward: dgrads produce the input gradient; the all-reduce
        // of that gradient overlaps the wgrads.
        let mlp_dgrad = push_kernels(
            &mut b,
            &format!("L{i}.b.mlp.dgrad"),
            &layer.mlp_dgrad,
            &bwd_barrier,
        );
        let ar_b2 = push_allreduce(&mut b, &format!("ar.b2.L{i}"), &mlp_dgrad);
        let _mlp_wgrad = push_kernels(&mut b, &format!("L{i}.b.mlp.wgrad"), &layer.mlp_wgrad, &[]);

        // Attention backward needs the reduced MLP input gradient.
        let attn_dgrad = push_kernels(
            &mut b,
            &format!("L{i}.b.attn.dgrad"),
            &layer.attn_dgrad,
            &[ar_b2],
        );
        let ar_b1 = push_allreduce(&mut b, &format!("ar.b1.L{i}"), &attn_dgrad);
        let _attn_wgrad = push_kernels(
            &mut b,
            &format!("L{i}.b.attn.wgrad"),
            &layer.attn_wgrad,
            &[],
        );
        bwd_barrier = vec![ar_b1];
        // Next layer's backward must also follow this layer's wgrads only
        // through stream order (same compute stream), which is implicit.
    }

    // ---- Optimizer: each rank owns 1/N of the parameters ----
    let shard_params = plan.model.param_count() / ranks;
    for gpu in &group {
        let mut spec = TaskSpec::compute(
            format!("adam.{gpu}"),
            *gpu,
            compute_op(&KernelKind::AdamStep {
                params: shard_params,
            }),
        );
        spec.deps.extend(bwd_barrier.iter().copied());
        b.push(spec);
    }

    b.build()
}

/// Number of all-reduces one tensor-parallel iteration issues:
/// 2 forward + 2 backward per layer.
pub fn collective_count(layers: u32) -> u32 {
    4 * layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_models::ModelPreset;

    fn plan() -> TensorPlan {
        TensorPlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch: 8,
            seq: 256,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
        }
    }

    fn node() -> (GpuSku, Topology) {
        let sku = GpuSku::h100();
        let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    #[test]
    fn collective_count_is_four_per_layer() {
        let (sku, topo) = node();
        let w = tensor_timeline(&plan(), &sku, &topo, ExecutionMode::Overlapped);
        let comms = w
            .tasks()
            .iter()
            .filter(|t| matches!(t.payload, Op::Comm(_)))
            .count();
        assert_eq!(comms as u32, collective_count(plan().model.layers));
    }

    #[test]
    fn per_rank_compute_shrinks_with_ranks() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let l4 = tp_layer(&cfg, 4, 8, 256);
        let l2 = tp_layer(&cfg, 2, 8, 256);
        let flops = |l: &TpLayer| -> f64 {
            l.attn_forward
                .iter()
                .chain(&l.mlp_forward)
                .map(|k| k.flops())
                .sum()
        };
        // Per-rank FLOPs roughly halve going from 2 to 4 ranks (LayerNorms
        // and attention softmax stay replicated/sharded differently).
        let ratio = flops(&l2) / flops(&l4);
        assert!((1.6..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dgrad_and_wgrad_halves_cover_the_backward() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let l = tp_layer(&cfg, 4, 8, 256);
        let fwd: f64 = l
            .attn_forward
            .iter()
            .chain(&l.mlp_forward)
            .map(|k| k.flops())
            .sum();
        let bwd: f64 = l
            .mlp_dgrad
            .iter()
            .chain(&l.attn_dgrad)
            .chain(&l.mlp_wgrad)
            .chain(&l.attn_wgrad)
            .map(|k| k.flops())
            .sum();
        let ratio = bwd / fwd;
        assert!((1.8..2.3).contains(&ratio), "backward/forward {ratio}");
    }

    #[test]
    fn both_modes_validate() {
        let (sku, topo) = node();
        for mode in ExecutionMode::ALL {
            tensor_timeline(&plan(), &sku, &topo, mode)
                .validate()
                .expect("valid DAG");
        }
    }

    #[test]
    fn recompute_adds_forward_replays() {
        let (sku, topo) = node();
        let mut p = plan();
        let full = tensor_timeline(&p, &sku, &topo, ExecutionMode::Overlapped).len();
        p.activation_policy = ActivationPolicy::Recompute;
        let ckpt = tensor_timeline(&p, &sku, &topo, ExecutionMode::Overlapped).len();
        assert!(ckpt > full);
    }

    #[test]
    #[should_panic(expected = "head count must divide")]
    fn indivisible_heads_are_rejected() {
        let (sku, topo) = node();
        let mut p = plan();
        p.ranks = 3;
        let topo3 = topo;
        tensor_timeline(&p, &sku, &topo3, ExecutionMode::Overlapped);
    }
}
