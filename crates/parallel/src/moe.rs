//! Mixture-of-Experts expert parallelism with all-to-all overlap.
//!
//! The paper's related work (Tutel, Lancet, Lina) optimizes MoE training by
//! overlapping the all-to-all exchanges of expert activations with expert
//! computation. This module reproduces that workload class:
//!
//! * every `moe_every`-th layer replaces its MLP with `experts` experts
//!   distributed across the ranks (expert parallelism); the remaining
//!   layers keep their dense MLP;
//! * tokens are routed top-1 and exchanged with an **all-to-all**, the
//!   experts run, and a second all-to-all brings results home;
//! * with [`MoePlan::chunks`] > 1 the token batch is split Tutel-style:
//!   chunk *c+1*'s dispatch overlaps chunk *c*'s expert compute, and
//!   combines overlap the next chunk — turning the exposed all-to-alls
//!   into hidden ones.

use crate::{ComputeOp, ExecutionMode, Op, ScheduleBuilder};
use olab_ccl::{lower, Algorithm, Collective, CollectiveKind};
use olab_gpu::{Datapath, GpuSku, KernelKind, Precision};
use olab_models::{ops, TransformerConfig};
use olab_net::Topology;
use olab_sim::{GpuId, TaskId, TaskSpec, Workload};

/// Configuration of one MoE training iteration.
#[derive(Debug, Clone)]
pub struct MoePlan {
    /// The base (dense) architecture; MoE layers reuse its shapes.
    pub model: TransformerConfig,
    /// Expert-parallel ranks (= GPUs).
    pub ranks: usize,
    /// Per-rank batch size.
    pub batch_per_rank: u64,
    /// Sequence length.
    pub seq: u64,
    /// Total experts (must divide by `ranks`).
    pub experts: u32,
    /// Every `moe_every`-th layer is an MoE layer (2 = GShard-style).
    pub moe_every: u32,
    /// All-to-all/compute chunking factor (1 = no overlap, Tutel uses 2–4).
    pub chunks: u32,
    /// Training precision.
    pub precision: Precision,
    /// Datapath for matrix kernels.
    pub datapath: Datapath,
}

impl MoePlan {
    /// Bytes of one full dispatch (all tokens' activations).
    pub fn dispatch_bytes(&self) -> u64 {
        self.batch_per_rank * self.seq * self.model.hidden * self.precision.bytes()
    }

    /// Number of MoE layers in the model.
    pub fn moe_layers(&self) -> u32 {
        self.model.layers / self.moe_every
    }
}

/// Builds the task DAG of one MoE iteration.
///
/// # Panics
///
/// Panics if `ranks < 2`, `experts` does not divide by `ranks`, `chunks`
/// is zero, or the topology is smaller than `ranks`.
pub fn moe_timeline(
    plan: &MoePlan,
    sku: &GpuSku,
    topo: &Topology,
    mode: ExecutionMode,
) -> Workload<Op> {
    assert!(plan.ranks >= 2, "expert parallelism needs at least 2 ranks");
    assert!(plan.chunks >= 1, "need at least one chunk");
    assert_eq!(
        plan.experts as usize % plan.ranks,
        0,
        "experts must divide across ranks"
    );
    assert!(topo.n_gpus() >= plan.ranks, "topology too small");

    let n = plan.ranks;
    let group: Vec<GpuId> = (0..n as u16).map(GpuId).collect();
    let layers = plan.model.layers as usize;
    let mut b = ScheduleBuilder::new(n, mode);

    let compute_op =
        |k: &KernelKind| Op::Compute(ComputeOp::new(*k, plan.precision, plan.datapath));
    let all_to_all = |bytes: u64| {
        let c = Collective::new(CollectiveKind::AllToAll, bytes, group.clone());
        Op::Comm(lower(&c, Algorithm::Direct, sku, topo, plan.precision))
    };

    let dense = ops::layer_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let t = plan.batch_per_rank * plan.seq;
    let h = plan.model.hidden;
    let chunk_tokens = (t / u64::from(plan.chunks)).max(1);
    let chunk_bytes = plan.dispatch_bytes() / u64::from(plan.chunks);

    // Attention sub-block of the dense layer (first 7 kernels: LN, QKV,
    // scores, softmax, context, proj, residual).
    let attn_fwd: Vec<KernelKind> = dense.forward[..7].to_vec();
    let router = vec![
        KernelKind::Gemm {
            m: t,
            n: u64::from(plan.experts),
            k: h,
        },
        KernelKind::Softmax {
            rows: t,
            cols: u64::from(plan.experts),
        },
    ];
    // One chunk's expert FFN (tokens are balanced across ranks, so each
    // rank computes `chunk_tokens` tokens' worth of expert work).
    let expert_chunk = [
        KernelKind::Gemm {
            m: chunk_tokens,
            n: plan.model.ffn_hidden,
            k: h,
        },
        KernelKind::Elementwise {
            elems: chunk_tokens * plan.model.ffn_hidden,
            flops_per_elem: 8,
            streams: 2,
        },
        KernelKind::Gemm {
            m: chunk_tokens,
            n: h,
            k: plan.model.ffn_hidden,
        },
    ];

    let push_kernels = |b: &mut ScheduleBuilder,
                        label: &str,
                        kernels: &[KernelKind],
                        first_deps: &[TaskId]|
     -> Vec<TaskId> {
        let mut last = vec![TaskId(0); n];
        for (g, gpu) in group.iter().enumerate() {
            for (ki, k) in kernels.iter().enumerate() {
                let mut spec =
                    TaskSpec::compute(format!("{label}.k{ki}.{gpu}"), *gpu, compute_op(k));
                if ki == 0 {
                    spec.deps.extend_from_slice(first_deps);
                }
                last[g] = b.push(spec);
            }
        }
        last
    };

    // Forward + backward, layer by layer. Backward reuses the forward
    // structure at 2x kernel cost (dgrad + wgrad), with the all-to-alls
    // reversed — close enough for the characterization workload, which
    // cares about the comm/compute interleaving, not autograd detail.
    let mut barrier: Vec<TaskId> = Vec::new();
    let mut moe_layer_sequence: Vec<bool> = Vec::new();
    for i in 0..layers {
        moe_layer_sequence
            .push(plan.moe_every > 0 && (i as u32 + 1).is_multiple_of(plan.moe_every));
    }

    for pass in ["f", "b"] {
        let layer_order: Vec<usize> = if pass == "f" {
            (0..layers).collect()
        } else {
            (0..layers).rev().collect()
        };
        let cost = if pass == "f" { 1 } else { 2 };
        for &i in &layer_order {
            // Attention block (dense backward cost modeled by repetition).
            for rep in 0..cost {
                barrier = push_kernels(
                    &mut b,
                    &format!("L{i}.{pass}{rep}.attn"),
                    &attn_fwd,
                    &barrier,
                );
            }
            if moe_layer_sequence[i] {
                barrier = push_kernels(&mut b, &format!("L{i}.{pass}.router"), &router, &barrier);
                // Chunked dispatch -> expert -> combine pipeline.
                let mut prev_dispatch: Option<TaskId> = None;
                let mut expert_done: Vec<Vec<TaskId>> = Vec::new();
                let mut combines: Vec<TaskId> = Vec::new();
                for c in 0..plan.chunks {
                    let mut spec = TaskSpec::collective(
                        format!("a2a.d.L{i}.{pass}.c{c}"),
                        group.clone(),
                        all_to_all(chunk_bytes),
                    );
                    if c == 0 {
                        spec.deps.extend(barrier.iter().copied());
                    } else if let Some(prev) = prev_dispatch {
                        spec.deps.push(prev);
                    }
                    let dispatch = b.push(spec);
                    prev_dispatch = Some(dispatch);

                    let mut expert_kernels = Vec::new();
                    for _ in 0..cost {
                        expert_kernels.extend(expert_chunk.iter().copied());
                    }
                    let done = push_kernels(
                        &mut b,
                        &format!("L{i}.{pass}.exp.c{c}"),
                        &expert_kernels,
                        &[dispatch],
                    );
                    expert_done.push(done);
                }
                for (c, done) in expert_done.iter().enumerate() {
                    let mut spec = TaskSpec::collective(
                        format!("a2a.c.L{i}.{pass}.c{c}"),
                        group.clone(),
                        all_to_all(chunk_bytes),
                    );
                    spec.deps.extend(done.iter().copied());
                    combines.push(b.push(spec));
                }
                let residual = KernelKind::Elementwise {
                    elems: t * h,
                    flops_per_elem: 1,
                    streams: 3,
                };
                barrier = push_kernels(
                    &mut b,
                    &format!("L{i}.{pass}.res"),
                    std::slice::from_ref(&residual),
                    &combines,
                );
            } else {
                // Dense MLP block (remaining forward kernels).
                let mlp: Vec<KernelKind> = dense.forward[7..].to_vec();
                for rep in 0..cost {
                    barrier =
                        push_kernels(&mut b, &format!("L{i}.{pass}{rep}.mlp"), &mlp, &barrier);
                }
            }
        }
    }

    // Data-parallel gradient sync for the replicated (non-expert) weights.
    let dense_params: u64 = plan.model.layer_params() / 2 * u64::from(plan.model.layers);
    let mut spec = TaskSpec::collective("ar.dense", group.clone(), {
        let c = Collective::all_reduce(dense_params * plan.precision.bytes(), group.clone());
        let algo = Algorithm::auto(c.kind, c.bytes, c.group_size());
        Op::Comm(lower(&c, algo, sku, topo, plan.precision))
    });
    spec.deps.extend(barrier.iter().copied());
    let sync = b.push(spec);

    let shard_params = plan.model.param_count() / n as u64;
    for gpu in &group {
        let mut opt = TaskSpec::compute(
            format!("adam.{gpu}"),
            *gpu,
            compute_op(&KernelKind::AdamStep {
                params: shard_params,
            }),
        );
        opt.deps.push(sync);
        b.push(opt);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_models::ModelPreset;

    fn plan(chunks: u32) -> MoePlan {
        MoePlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 4,
            seq: 256,
            experts: 8,
            moe_every: 2,
            chunks,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
        }
    }

    fn node() -> (GpuSku, Topology) {
        let sku = GpuSku::h100();
        let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    #[test]
    fn a2a_count_scales_with_chunks_and_moe_layers() {
        let (sku, topo) = node();
        for chunks in [1u32, 2, 4] {
            let p = plan(chunks);
            let w = moe_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
            let a2a = w
                .tasks()
                .iter()
                .filter(|t| t.label.starts_with("a2a."))
                .count() as u32;
            // dispatch + combine per chunk, forward and backward.
            assert_eq!(a2a, p.moe_layers() * chunks * 2 * 2, "chunks {chunks}");
        }
    }

    #[test]
    fn chunking_preserves_total_bytes_and_flops() {
        let (sku, topo) = node();
        let sum = |w: &Workload<Op>| -> (f64, f64) {
            let bytes: f64 = w
                .tasks()
                .iter()
                .filter_map(|t| t.payload.as_comm())
                .map(|c| c.wire_bytes_per_rank)
                .sum();
            let flops: f64 = w
                .tasks()
                .iter()
                .filter_map(|t| t.payload.as_compute())
                .map(|c| c.kernel.flops())
                .sum();
            (bytes, flops)
        };
        let (b1, f1) = sum(&moe_timeline(
            &plan(1),
            &sku,
            &topo,
            ExecutionMode::Overlapped,
        ));
        let (b4, f4) = sum(&moe_timeline(
            &plan(4),
            &sku,
            &topo,
            ExecutionMode::Overlapped,
        ));
        assert!((b1 / b4 - 1.0).abs() < 0.01, "bytes {b1} vs {b4}");
        assert!((f1 / f4 - 1.0).abs() < 0.01, "flops {f1} vs {f4}");
    }

    #[test]
    fn moe_every_2_makes_half_the_layers_sparse() {
        let p = plan(2);
        assert_eq!(p.moe_layers(), p.model.layers / 2);
    }

    #[test]
    fn both_modes_validate() {
        let (sku, topo) = node();
        for mode in ExecutionMode::ALL {
            moe_timeline(&plan(2), &sku, &topo, mode)
                .validate()
                .expect("valid DAG");
        }
    }

    #[test]
    #[should_panic(expected = "experts must divide")]
    fn indivisible_experts_are_rejected() {
        let (sku, topo) = node();
        let mut p = plan(2);
        p.experts = 6;
        moe_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
    }
}
