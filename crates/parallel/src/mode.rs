//! Execution modes.

use std::fmt;

/// Whether communication may overlap computation.
///
/// The paper compares three executions; two are simulated directly and the
/// third (*ideal*) is derived from measurements (Eq. 4), exactly as the
/// paper derives it:
///
/// * [`ExecutionMode::Overlapped`] — the framework's natural schedule:
///   collectives run on the comm stream concurrently with compute.
/// * [`ExecutionMode::Sequential`] — every communication task is serialized
///   against computation on its GPUs (no concurrency, no contention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Communication overlaps computation (default framework behaviour).
    Overlapped,
    /// Communication serialized with computation.
    Sequential,
}

impl ExecutionMode {
    /// Both modes.
    pub const ALL: [ExecutionMode; 2] = [ExecutionMode::Overlapped, ExecutionMode::Sequential];
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Overlapped => write!(f, "overlapped"),
            ExecutionMode::Sequential => write!(f, "sequential"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_display_distinctly() {
        assert_ne!(
            ExecutionMode::Overlapped.to_string(),
            ExecutionMode::Sequential.to_string()
        );
    }
}
