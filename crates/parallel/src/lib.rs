//! # olab-parallel — distributed-training schedules
//!
//! Lowers one training iteration of a transformer onto a multi-GPU node as a
//! task DAG ([`olab_sim::Workload`]) ready for simulation:
//!
//! * [`fsdp::fsdp_timeline`] — Fully-Sharded Data Parallelism (ZeRO-3
//!   style): per-layer all-gathers with one-layer prefetch in the forward
//!   pass, re-gather + reduce-scatter with prefetch in the backward pass,
//!   then a sharded Adam step (the paper's Fig. 3(a));
//! * [`pipeline::pipeline_timeline`] — GPipe-style pipeline parallelism:
//!   layers split into stages, microbatches flowing through send/recv
//!   point-to-point transfers that overlap with the compute of neighbouring
//!   microbatches (Fig. 3(b));
//! * [`ExecutionMode`] — `Overlapped` builds the natural schedule;
//!   `Sequential` serializes communication against computation on every
//!   GPU, which is the paper's non-overlapping baseline.
//!
//! ```rust
//! use olab_gpu::{Datapath, GpuSku, Precision};
//! use olab_models::{memory::ActivationPolicy, ModelPreset};
//! use olab_net::Topology;
//! use olab_parallel::{fsdp::FsdpPlan, ExecutionMode};
//!
//! let sku = GpuSku::h100();
//! let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
//! let plan = FsdpPlan {
//!     model: ModelPreset::Gpt3Xl.config(),
//!     ranks: 4,
//!     batch_per_rank: 8,
//!     seq: 1024,
//!     precision: Precision::Fp16,
//!     datapath: Datapath::TensorCore,
//!     activation_policy: ActivationPolicy::Full,
//!     grad_accum_steps: 1,
//!     overlap: Default::default(),
//! };
//! let timeline = olab_parallel::fsdp::fsdp_timeline(&plan, &sku, &topo, ExecutionMode::Overlapped);
//! assert!(timeline.len() > 100, "a real iteration has hundreds of tasks");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod fsdp;
mod mode;
pub mod moe;
mod op;
pub mod pipeline;
pub mod tensor;

pub use builder::ScheduleBuilder;
pub use mode::ExecutionMode;
pub use op::{ComputeOp, Op};
