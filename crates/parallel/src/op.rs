//! Task payloads: what runs inside each simulated task.

use olab_ccl::CommOp;
use olab_gpu::{Datapath, KernelKind, Precision};
use std::fmt;

/// A compute kernel launch with its numeric configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComputeOp {
    /// The kernel.
    pub kernel: KernelKind,
    /// Element precision.
    pub precision: Precision,
    /// Requested datapath (matrix kernels only; others run on vector).
    pub datapath: Datapath,
}

impl ComputeOp {
    /// Creates a compute op.
    pub fn new(kernel: KernelKind, precision: Precision, datapath: Datapath) -> Self {
        ComputeOp {
            kernel,
            precision,
            datapath,
        }
    }
}

impl fmt::Display for ComputeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{}/{}", self.kernel, self.precision, self.datapath)
    }
}

/// The payload of one simulated task.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A compute kernel on one GPU.
    Compute(ComputeOp),
    /// A (possibly multi-GPU) communication operation.
    Comm(CommOp),
}

impl Op {
    /// The compute op, if this is one.
    pub fn as_compute(&self) -> Option<&ComputeOp> {
        match self {
            Op::Compute(c) => Some(c),
            Op::Comm(_) => None,
        }
    }

    /// The comm op, if this is one.
    pub fn as_comm(&self) -> Option<&CommOp> {
        match self {
            Op::Comm(c) => Some(c),
            Op::Compute(_) => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(c) => write!(f, "{c}"),
            Op::Comm(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_discriminate_variants() {
        let c = Op::Compute(ComputeOp::new(
            KernelKind::gemm(2, 2, 2),
            Precision::Fp16,
            Datapath::TensorCore,
        ));
        assert!(c.as_compute().is_some());
        assert!(c.as_comm().is_none());
    }

    #[test]
    fn display_mentions_precision() {
        let c = ComputeOp::new(KernelKind::gemm(2, 2, 2), Precision::Fp16, Datapath::Vector);
        assert!(c.to_string().contains("FP16"));
    }
}
