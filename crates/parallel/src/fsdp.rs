//! Fully-Sharded Data Parallelism (ZeRO-3) schedule.
//!
//! One training iteration, per the paper's Fig. 3(a):
//!
//! * **Forward**: parameters of layer *i* are all-gathered before its
//!   forward compute; the all-gather of layer *i+1* is prefetched while
//!   layer *i* computes (one-layer prefetch, DeepSpeed's default).
//! * **Backward**: parameters are re-gathered (ZeRO-3 frees them after
//!   forward), gradients are reduce-scattered; both overlap the backward
//!   compute of the neighbouring layer.
//! * **Optimizer**: each rank updates its `1/N` shard with Adam.
//!
//! Two mitigation levers from the paper are modeled:
//!
//! * **Gradient accumulation** ([`FsdpPlan::grad_accum_steps`]): run `k`
//!   forward/backward micro-steps, reduce-scattering only on the last one —
//!   communication per sample drops by `k`.
//! * **Selective overlap** ([`FsdpOverlap`]): disable all-gather prefetch
//!   and/or reduce-scatter overlap individually (DeepSpeed's
//!   `overlap_comm`-style switches). The `olab-core` adaptive scheduler
//!   searches this space.
//!
//! In [`ExecutionMode::Sequential`] the whole schedule is chained so that no
//! communication overlaps computation — the paper's baseline.

use crate::{ComputeOp, ExecutionMode, Op, ScheduleBuilder};
use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{Datapath, GpuSku, Precision};
use olab_models::memory::ActivationPolicy;
use olab_models::{ops, TransformerConfig};
use olab_net::Topology;
use olab_sim::{GpuId, TaskId, TaskSpec, Workload};

/// Which communication classes may overlap compute (overlapped mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsdpOverlap {
    /// Prefetch the next layer's all-gather under the current compute.
    pub prefetch_all_gather: bool,
    /// Let reduce-scatters run under the neighbouring backward compute.
    pub overlap_reduce_scatter: bool,
}

impl Default for FsdpOverlap {
    fn default() -> Self {
        FsdpOverlap {
            prefetch_all_gather: true,
            overlap_reduce_scatter: true,
        }
    }
}

impl FsdpOverlap {
    /// All four policy combinations, for adaptive search.
    pub fn all_policies() -> [FsdpOverlap; 4] {
        [
            FsdpOverlap {
                prefetch_all_gather: true,
                overlap_reduce_scatter: true,
            },
            FsdpOverlap {
                prefetch_all_gather: true,
                overlap_reduce_scatter: false,
            },
            FsdpOverlap {
                prefetch_all_gather: false,
                overlap_reduce_scatter: true,
            },
            FsdpOverlap {
                prefetch_all_gather: false,
                overlap_reduce_scatter: false,
            },
        ]
    }
}

impl std::fmt::Display for FsdpOverlap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ag:{} rs:{}",
            if self.prefetch_all_gather {
                "ovl"
            } else {
                "seq"
            },
            if self.overlap_reduce_scatter {
                "ovl"
            } else {
                "seq"
            }
        )
    }
}

/// Configuration of one FSDP training iteration.
#[derive(Debug, Clone)]
pub struct FsdpPlan {
    /// The model to train.
    pub model: TransformerConfig,
    /// Data-parallel ranks (= GPUs).
    pub ranks: usize,
    /// Per-rank batch size (per micro-step).
    pub batch_per_rank: u64,
    /// Sequence length.
    pub seq: u64,
    /// Training precision.
    pub precision: Precision,
    /// Datapath for matrix kernels.
    pub datapath: Datapath,
    /// Whether activations are recomputed in the backward pass.
    pub activation_policy: ActivationPolicy,
    /// Forward/backward micro-steps per optimizer step (gradients are
    /// reduce-scattered only on the last one). 1 = the paper's setup.
    pub grad_accum_steps: u32,
    /// Which communication classes may overlap.
    pub overlap: FsdpOverlap,
}

impl FsdpPlan {
    /// A plan with the paper's defaults (no accumulation, full overlap).
    pub fn new(
        model: TransformerConfig,
        ranks: usize,
        batch_per_rank: u64,
        seq: u64,
        precision: Precision,
        datapath: Datapath,
        activation_policy: ActivationPolicy,
    ) -> Self {
        FsdpPlan {
            model,
            ranks,
            batch_per_rank,
            seq,
            precision,
            datapath,
            activation_policy,
            grad_accum_steps: 1,
            overlap: FsdpOverlap::default(),
        }
    }

    /// Bytes of one layer's parameters at the training precision.
    pub fn layer_bytes(&self) -> u64 {
        self.model.layer_params() * self.precision.bytes()
    }
}

/// Builds the task DAG of one FSDP iteration (all micro-steps plus the
/// optimizer update).
///
/// # Panics
///
/// Panics if `ranks < 2`, `grad_accum_steps == 0`, or the topology is
/// smaller than `ranks`.
pub fn fsdp_timeline(
    plan: &FsdpPlan,
    sku: &GpuSku,
    topo: &Topology,
    mode: ExecutionMode,
) -> Workload<Op> {
    assert!(plan.ranks >= 2, "FSDP needs at least 2 ranks");
    assert!(plan.grad_accum_steps >= 1, "need at least one micro-step");
    assert!(topo.n_gpus() >= plan.ranks, "topology too small");

    let n = plan.ranks;
    let group: Vec<GpuId> = (0..n as u16).map(GpuId).collect();
    let layers = plan.model.layers as usize;
    let mut b = ScheduleBuilder::new(n, mode);

    let compute_op =
        |k: &olab_gpu::KernelKind| Op::Compute(ComputeOp::new(*k, plan.precision, plan.datapath));
    let collective_op = |c: Collective| {
        let algo = Algorithm::auto_for(c.kind, c.bytes, &c.group, topo);
        Op::Comm(lower(&c, algo, sku, topo, plan.precision))
    };

    let layer = ops::layer_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let head = ops::head_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let emb = ops::embedding_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let layer_bytes = plan.layer_bytes();

    // Pushes one kernel sequence on every rank's compute stream; returns the
    // last task per rank.
    let push_kernels = |b: &mut ScheduleBuilder,
                        label: &str,
                        kernels: &[olab_gpu::KernelKind],
                        first_deps: &[TaskId]|
     -> Vec<TaskId> {
        let mut last = vec![TaskId(0); n];
        for (g, gpu) in group.iter().enumerate() {
            for (ki, k) in kernels.iter().enumerate() {
                let mut spec =
                    TaskSpec::compute(format!("{label}.k{ki}.{gpu}"), *gpu, compute_op(k));
                if ki == 0 {
                    spec.deps.extend_from_slice(first_deps);
                }
                last[g] = b.push(spec);
            }
        }
        last
    };

    let bwd_kernels: Vec<olab_gpu::KernelKind> = match plan.activation_policy {
        ActivationPolicy::Full => layer.backward.clone(),
        ActivationPolicy::Recompute => {
            let mut v = layer.forward.clone();
            v.extend(layer.backward.iter().copied());
            v
        }
    };

    let mut final_rs: Vec<TaskId> = Vec::with_capacity(layers);

    for step in 0..plan.grad_accum_steps {
        let is_last_step = step + 1 == plan.grad_accum_steps;
        let tag = |s: &str| format!("st{step}.{s}");

        // ---- Forward pass ----
        let _ = push_kernels(&mut b, &tag("emb.f"), &emb, &[]);

        let mut ag_f: Vec<TaskId> = Vec::with_capacity(layers);
        let mut f_last: Vec<Vec<TaskId>> = Vec::with_capacity(layers);
        for i in 0..layers {
            // Prefetch discipline: AG(i) may start once layer i-2's forward
            // is done (so it runs while layer i-1 computes), keeping at most
            // two layers unsharded. Without prefetch, AG(i) waits for layer
            // i-1 and is fully exposed.
            let mut spec = TaskSpec::collective(
                tag(&format!("ag.f.L{i}")),
                group.clone(),
                collective_op(Collective::all_gather(layer_bytes, group.clone())),
            );
            let lookback = if plan.overlap.prefetch_all_gather {
                2
            } else {
                1
            };
            if i >= lookback {
                spec.deps.extend(f_last[i - lookback].iter().copied());
            }
            ag_f.push(b.push(spec));

            let last = push_kernels(&mut b, &tag(&format!("L{i}.f")), &layer.forward, &[ag_f[i]]);
            f_last.push(last);
        }

        // LM head (local, unsharded in this model) forward + backward.
        let head_f_last = push_kernels(&mut b, &tag("head.f"), &head.forward, &[]);
        let head_b_last = push_kernels(&mut b, &tag("head.b"), &head.backward, &[]);

        // ---- Backward pass ----
        let mut ag_b: Vec<Option<TaskId>> = vec![None; layers];
        {
            let mut spec = TaskSpec::collective(
                tag(&format!("ag.b.L{}", layers - 1)),
                group.clone(),
                collective_op(Collective::all_gather(layer_bytes, group.clone())),
            );
            spec.deps.extend(head_f_last.iter().copied());
            ag_b[layers - 1] = Some(b.push(spec));
        }

        let mut b_last: Vec<Vec<TaskId>> = vec![Vec::new(); layers];
        let mut prev_rs: Option<TaskId> = None;
        for i in (0..layers).rev() {
            // Prefetch the re-gather of layer i-1 while layer i runs backward.
            if i > 0 {
                let mut spec = TaskSpec::collective(
                    tag(&format!("ag.b.L{}", i - 1)),
                    group.clone(),
                    collective_op(Collective::all_gather(layer_bytes, group.clone())),
                );
                let anchor: &[TaskId] = if plan.overlap.prefetch_all_gather {
                    if i + 1 < layers {
                        &b_last[i + 1]
                    } else {
                        &head_b_last
                    }
                } else {
                    // No prefetch: wait for layer i itself (exposed)...
                    // which has not run yet, so anchor on the re-gather
                    // consumer's predecessor: layer i's own gather.
                    std::slice::from_ref(ag_b[i].as_ref().expect("gather enqueued"))
                };
                spec.deps.extend(anchor.iter().copied());
                ag_b[i - 1] = Some(b.push(spec));
            }

            let mut first_deps = vec![ag_b[i].expect("all-gather enqueued")];
            if !plan.overlap.overlap_reduce_scatter {
                // Serialized reduce-scatter: the next backward waits for it.
                if let Some(rs) = prev_rs {
                    first_deps.push(rs);
                }
            }
            let last = push_kernels(&mut b, &tag(&format!("L{i}.b")), &bwd_kernels, &first_deps);
            b_last[i] = last.clone();

            if is_last_step {
                let mut spec = TaskSpec::collective(
                    tag(&format!("rs.L{i}")),
                    group.clone(),
                    collective_op(Collective::reduce_scatter(layer_bytes, group.clone())),
                );
                spec.deps.extend(last.iter().copied());
                let rs = b.push(spec);
                final_rs.push(rs);
                prev_rs = Some(rs);
            } else {
                // Accumulation micro-step: gradients stay local; a small
                // elementwise add folds them into the accumulation buffer.
                let accum = olab_gpu::KernelKind::Elementwise {
                    elems: plan.model.layer_params(),
                    flops_per_elem: 1,
                    streams: 3,
                };
                for gpu in &group {
                    let mut spec = TaskSpec::compute(
                        tag(&format!("accum.L{i}.{gpu}")),
                        *gpu,
                        compute_op(&accum),
                    );
                    spec.deps.push(last[gpu.index()]);
                    b.push(spec);
                }
            }
        }
    }

    // ---- Optimizer ----
    let shard_params = plan.model.param_count() / n as u64;
    for gpu in &group {
        let mut spec = TaskSpec::compute(
            format!("adam.{gpu}"),
            *gpu,
            compute_op(&ops::optimizer_kernel(shard_params)),
        );
        spec.deps.extend(final_rs.iter().copied());
        b.push(spec);
    }

    b.build()
}

/// Number of collectives one FSDP iteration issues (for tests/reports):
/// per micro-step `layers` forward all-gathers + `layers` backward
/// re-gathers, plus `layers` reduce-scatters on the final step.
pub fn collective_count(layers: u32, grad_accum_steps: u32) -> u32 {
    2 * layers * grad_accum_steps + layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_models::ModelPreset;
    use olab_sim::StreamKind;

    fn plan() -> FsdpPlan {
        FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            4,
            256,
            Precision::Fp16,
            Datapath::TensorCore,
            ActivationPolicy::Full,
        )
    }

    fn node() -> (GpuSku, Topology) {
        let sku = GpuSku::h100();
        let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    #[test]
    fn timeline_contains_expected_collective_count() {
        let (sku, topo) = node();
        let w = fsdp_timeline(&plan(), &sku, &topo, ExecutionMode::Overlapped);
        let comms = w
            .tasks()
            .iter()
            .filter(|t| matches!(t.payload, Op::Comm(_)))
            .count();
        assert_eq!(comms as u32, collective_count(plan().model.layers, 1));
    }

    #[test]
    fn gradient_accumulation_repeats_gathers_but_not_reduces() {
        let (sku, topo) = node();
        let mut p = plan();
        p.grad_accum_steps = 3;
        let w = fsdp_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
        let comms = w
            .tasks()
            .iter()
            .filter(|t| matches!(t.payload, Op::Comm(_)))
            .count();
        assert_eq!(comms as u32, collective_count(p.model.layers, 3));
        let reduces = w
            .tasks()
            .iter()
            .filter(|t| t.label.contains("rs.L"))
            .count();
        assert_eq!(reduces as u32, p.model.layers, "one RS per layer total");
    }

    #[test]
    fn collectives_span_all_ranks() {
        let (sku, topo) = node();
        let w = fsdp_timeline(&plan(), &sku, &topo, ExecutionMode::Overlapped);
        for t in w.tasks() {
            if matches!(t.payload, Op::Comm(_)) {
                assert_eq!(t.participants.len(), 4, "{}", t.label);
                assert_eq!(t.stream, StreamKind::Comm);
            } else {
                assert_eq!(t.participants.len(), 1, "{}", t.label);
                assert_eq!(t.stream, StreamKind::Compute);
            }
        }
    }

    #[test]
    fn sequential_mode_has_strictly_more_dependencies() {
        let (sku, topo) = node();
        let ov = fsdp_timeline(&plan(), &sku, &topo, ExecutionMode::Overlapped);
        let seq = fsdp_timeline(&plan(), &sku, &topo, ExecutionMode::Sequential);
        assert_eq!(ov.len(), seq.len(), "same tasks, different edges");
        let edges = |w: &Workload<Op>| -> usize { w.tasks().iter().map(|t| t.deps.len()).sum() };
        assert!(edges(&seq) > edges(&ov));
    }

    #[test]
    fn disabling_reduce_scatter_overlap_adds_serialization_edges() {
        let (sku, topo) = node();
        let mut p = plan();
        p.overlap.overlap_reduce_scatter = false;
        let partial = fsdp_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
        let full = fsdp_timeline(&plan(), &sku, &topo, ExecutionMode::Overlapped);
        let edges = |w: &Workload<Op>| -> usize { w.tasks().iter().map(|t| t.deps.len()).sum() };
        assert!(edges(&partial) > edges(&full));
    }

    #[test]
    fn recompute_policy_adds_forward_kernels_to_backward() {
        let (sku, topo) = node();
        let mut p = plan();
        let full = fsdp_timeline(&p, &sku, &topo, ExecutionMode::Overlapped).len();
        p.activation_policy = ActivationPolicy::Recompute;
        let ckpt = fsdp_timeline(&p, &sku, &topo, ExecutionMode::Overlapped).len();
        assert!(ckpt > full);
    }

    #[test]
    fn all_modes_and_policies_validate_as_dags() {
        let (sku, topo) = node();
        for mode in ExecutionMode::ALL {
            for overlap in FsdpOverlap::all_policies() {
                let mut p = plan();
                p.overlap = overlap;
                fsdp_timeline(&p, &sku, &topo, mode)
                    .validate()
                    .expect("valid DAG");
            }
        }
    }

    #[test]
    fn overlap_policy_displays_compactly() {
        assert_eq!(FsdpOverlap::default().to_string(), "ag:ovl rs:ovl");
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn single_rank_fsdp_is_rejected() {
        let (sku, topo) = node();
        let mut p = plan();
        p.ranks = 1;
        fsdp_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
    }
}
