//! Pipeline-parallelism schedules: 1F1B (Megatron/PipeDream style, the
//! default) and GPipe (all-forward-then-all-backward, kept for ablation).
//!
//! The model's layers are split into `stages` contiguous chunks, one per
//! GPU. A global batch is split into `microbatches` whose boundary
//! activations/gradients move stage-to-stage as point-to-point transfers on
//! the comm stream (the paper's Fig. 3(b)).
//!
//! The schedules differ in *when* communication can hide:
//!
//! * **1F1B** interleaves forward and backward microbatches in the steady
//!   state, so the send of one microbatch's activations runs while the
//!   stage computes a *different* microbatch — genuine overlap, growing
//!   with the number of microbatches (the paper's Fig. 1(b) trend).
//! * **GPipe** runs all forwards, then all backwards; every transfer sits
//!   on the critical path between perfectly-aligned slots, so almost
//!   nothing overlaps. Comparing the two is the `ablation_schedule` study.
//!
//! Megatron-style embedding-gradient synchronization between the first and
//! last stage closes the iteration alongside the per-stage Adam step.

use crate::{ComputeOp, ExecutionMode, Op, ScheduleBuilder};
use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{Datapath, GpuSku, KernelKind, Precision};
use olab_models::memory::ActivationPolicy;
use olab_models::{ops, Family, TransformerConfig};
use olab_net::Topology;
use olab_sim::{GpuId, TaskId, TaskSpec, Workload};

/// Which pipeline schedule to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineSchedule {
    /// One-forward-one-backward steady state (Megatron/PipeDream default).
    #[default]
    OneFOneB,
    /// All forwards, flush, all backwards (GPipe).
    GPipe,
}

impl std::fmt::Display for PipelineSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineSchedule::OneFOneB => write!(f, "1F1B"),
            PipelineSchedule::GPipe => write!(f, "GPipe"),
        }
    }
}

/// Configuration of one pipeline-parallel training iteration.
#[derive(Debug, Clone)]
pub struct PipelinePlan {
    /// The model to train.
    pub model: TransformerConfig,
    /// Pipeline stages (= GPUs).
    pub stages: usize,
    /// Number of microbatches per iteration.
    pub microbatches: u32,
    /// Global batch size (must divide evenly into microbatches).
    pub batch_total: u64,
    /// Sequence length.
    pub seq: u64,
    /// Training precision.
    pub precision: Precision,
    /// Datapath for matrix kernels.
    pub datapath: Datapath,
    /// Whether activations are recomputed in the backward pass.
    pub activation_policy: ActivationPolicy,
    /// The schedule flavor.
    pub schedule: PipelineSchedule,
}

impl PipelinePlan {
    /// Per-microbatch batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_total` is not divisible by `microbatches`.
    pub fn microbatch_size(&self) -> u64 {
        assert!(
            self.microbatches > 0
                && self
                    .batch_total
                    .is_multiple_of(u64::from(self.microbatches)),
            "batch {} must divide into {} microbatches",
            self.batch_total,
            self.microbatches
        );
        self.batch_total / u64::from(self.microbatches)
    }

    /// Bytes of one microbatch's boundary activation tensor.
    pub fn activation_bytes(&self) -> u64 {
        self.microbatch_size() * self.seq * self.model.hidden * self.precision.bytes()
    }

    /// Layers owned by the largest stage (stages are balanced: the first
    /// `layers % stages` stages get one extra layer).
    pub fn layers_per_stage(&self) -> usize {
        (self.model.layers as usize).div_ceil(self.stages)
    }

    /// Layers owned by a specific stage under the balanced split.
    pub fn stage_layers(&self, stage: usize) -> usize {
        let total = self.model.layers as usize;
        let base = total / self.stages;
        base + usize::from(stage < total % self.stages)
    }

    /// Microbatches whose activations a stage holds at once: all of them
    /// under GPipe, at most the pipeline depth under 1F1B.
    pub fn activations_in_flight(&self) -> usize {
        match self.schedule {
            PipelineSchedule::GPipe => self.microbatches as usize,
            PipelineSchedule::OneFOneB => (self.microbatches as usize).min(self.stages),
        }
    }

    /// Parameters owned by a stage (embedding/head folded into the edge
    /// stages).
    pub fn stage_params(&self, stage: usize) -> u64 {
        let base = self.stage_layers(stage) as u64 * self.model.layer_params();
        let edge = if stage == 0 || stage == self.stages - 1 {
            self.model.vocab * self.model.hidden
        } else {
            0
        };
        base + edge
    }
}

/// One entry of a stage's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageOp {
    Forward(usize),
    Backward(usize),
}

/// Per-stage op sequences for a schedule.
fn stage_programs(schedule: PipelineSchedule, stages: usize, m: usize) -> Vec<Vec<StageOp>> {
    (0..stages)
        .map(|s| {
            let mut program = Vec::with_capacity(2 * m);
            match schedule {
                PipelineSchedule::GPipe => {
                    program.extend((0..m).map(StageOp::Forward));
                    // GPipe drains in reverse microbatch order.
                    program.extend((0..m).rev().map(StageOp::Backward));
                }
                PipelineSchedule::OneFOneB => {
                    let warmup = (stages - 1 - s).min(m);
                    program.extend((0..warmup).map(StageOp::Forward));
                    for i in 0..(m - warmup) {
                        program.push(StageOp::Forward(warmup + i));
                        program.push(StageOp::Backward(i));
                    }
                    program.extend((m - warmup..m).map(StageOp::Backward));
                }
            }
            program
        })
        .collect()
}

/// Builds the task DAG of one pipeline iteration.
///
/// # Panics
///
/// Panics if `stages < 2`, the topology is smaller than `stages`, or the
/// batch does not divide into microbatches.
pub fn pipeline_timeline(
    plan: &PipelinePlan,
    sku: &GpuSku,
    topo: &Topology,
    mode: ExecutionMode,
) -> Workload<Op> {
    assert!(plan.stages >= 2, "pipeline needs at least 2 stages");
    assert!(
        plan.stages <= plan.model.layers as usize,
        "more stages than layers"
    );
    assert!(topo.n_gpus() >= plan.stages, "topology too small");
    let mb = plan.microbatch_size();
    let s_count = plan.stages;
    let m_count = plan.microbatches as usize;

    let mut b = ScheduleBuilder::new(s_count, mode);

    let compute_op =
        |k: &KernelKind| Op::Compute(ComputeOp::new(*k, plan.precision, plan.datapath));
    let p2p_op = |bytes: u64, src: GpuId, dst: GpuId| {
        let c = Collective::p2p(bytes, src, dst);
        Op::Comm(lower(&c, Algorithm::Direct, sku, topo, plan.precision))
    };

    let layer = ops::layer_kernels(&plan.model, mb, plan.seq);
    let head = ops::head_kernels(&plan.model, mb, plan.seq);
    let emb = ops::embedding_kernels(&plan.model, mb, plan.seq);
    let act_bytes = plan.activation_bytes();

    let bwd_kernels: Vec<KernelKind> = match plan.activation_policy {
        ActivationPolicy::Full => layer.backward.clone(),
        ActivationPolicy::Recompute => {
            let mut v = layer.forward.clone();
            v.extend(layer.backward.iter().copied());
            v
        }
    };

    // Kernel chunks of one forward / backward cell on stage `s`.
    let forward_chunks = |s: usize| -> Vec<&[KernelKind]> {
        let mut chunks: Vec<&[KernelKind]> = Vec::new();
        if s == 0 {
            chunks.push(&emb);
        }
        chunks.extend(std::iter::repeat_n(
            &layer.forward[..],
            stage_layer_count(plan, s),
        ));
        if s == s_count - 1 {
            chunks.push(&head.forward);
        }
        chunks
    };
    let backward_chunks = |s: usize| -> Vec<&[KernelKind]> {
        let mut chunks: Vec<&[KernelKind]> = Vec::new();
        if s == s_count - 1 {
            chunks.push(&head.backward);
        }
        chunks.extend(std::iter::repeat_n(
            &bwd_kernels[..],
            stage_layer_count(plan, s),
        ));
        chunks
    };

    // Pushes the compute of one (stage, microbatch) cell; returns last task.
    let push_cell = |b: &mut ScheduleBuilder,
                     stage: usize,
                     m: usize,
                     chunks: &[&[KernelKind]],
                     label: &str,
                     first_dep: Option<TaskId>|
     -> TaskId {
        let gpu = GpuId(stage as u16);
        let mut last = None;
        let mut dep = first_dep;
        for (ci, chunk) in chunks.iter().enumerate() {
            for (ki, k) in chunk.iter().enumerate() {
                let mut spec = TaskSpec::compute(
                    format!("s{stage}.m{m}.{label}.c{ci}k{ki}"),
                    gpu,
                    compute_op(k),
                );
                if let Some(d) = dep.take() {
                    spec.deps.push(d);
                }
                last = Some(b.push(spec));
            }
        }
        last.expect("stage owns at least one kernel")
    };

    // Breadth-first emission of the per-stage programs: each pass emits at
    // most one op per stage, and only once its cross-stage producer is
    // emitted. Emission order defines comm-queue order, so keeping passes
    // aligned with the schedule's time slots both avoids rendezvous
    // deadlocks and keeps transfers adjacent to the compute they overlap
    // (draining a stage's whole program at once would queue its sends far
    // ahead of its neighbours' receives and serialize the pipeline).
    let programs = stage_programs(plan.schedule, s_count, m_count);
    let mut cursor = vec![0usize; s_count];
    let mut fwd_send: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_count]; s_count];
    let mut bwd_send: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_count]; s_count];
    let mut fwd_done: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_count]; s_count];
    let mut bwd_done: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_count]; s_count];

    let total_ops: usize = programs.iter().map(Vec::len).sum();
    let mut emitted = 0usize;
    while emitted < total_ops {
        let mut progressed = false;
        for s in 0..s_count {
            if cursor[s] < programs[s].len() {
                let op = programs[s][cursor[s]];
                let ready = match op {
                    StageOp::Forward(m) => s == 0 || fwd_send[s - 1][m].is_some(),
                    StageOp::Backward(m) => s == s_count - 1 || bwd_send[s + 1][m].is_some(),
                };
                if !ready {
                    continue;
                }
                match op {
                    StageOp::Forward(m) => {
                        let recv = if s > 0 { fwd_send[s - 1][m] } else { None };
                        let last = push_cell(&mut b, s, m, &forward_chunks(s), "f", recv);
                        fwd_done[s][m] = Some(last);
                        if s + 1 < s_count {
                            let spec = TaskSpec::collective(
                                format!("x.f.s{s}->s{}.m{m}", s + 1),
                                vec![GpuId(s as u16), GpuId((s + 1) as u16)],
                                p2p_op(act_bytes, GpuId(s as u16), GpuId((s + 1) as u16)),
                            )
                            .after(last);
                            fwd_send[s][m] = Some(b.push(spec));
                        } else {
                            // Terminal stage: mark availability for readiness
                            // checks without a transfer.
                            fwd_send[s][m] = Some(last);
                        }
                    }
                    StageOp::Backward(m) => {
                        let recv = if s + 1 < s_count {
                            bwd_send[s + 1][m]
                        } else {
                            fwd_done[s][m]
                        };
                        let last = push_cell(&mut b, s, m, &backward_chunks(s), "b", recv);
                        bwd_done[s][m] = Some(last);
                        if s > 0 {
                            let spec = TaskSpec::collective(
                                format!("x.b.s{s}->s{}.m{m}", s - 1),
                                vec![GpuId((s - 1) as u16), GpuId(s as u16)],
                                p2p_op(act_bytes, GpuId(s as u16), GpuId((s - 1) as u16)),
                            )
                            .after(last);
                            bwd_send[s][m] = Some(b.push(spec));
                        } else {
                            bwd_send[s][m] = Some(last);
                        }
                    }
                }
                cursor[s] += 1;
                emitted += 1;
                progressed = true;
            }
        }
        assert!(progressed, "pipeline schedule emission stalled (bug)");
    }

    // ---- Embedding-gradient synchronization (Megatron ties input/output
    // embeddings across the first and last stage for GPT models) ----
    let mut embed_sync = None;
    if plan.model.family == Family::Gpt && s_count >= 2 {
        let bytes = plan.model.vocab * plan.model.hidden * plan.precision.bytes();
        let c = Collective::all_reduce(bytes, vec![GpuId(0), GpuId((s_count - 1) as u16)]);
        let algo = Algorithm::auto(c.kind, c.bytes, 2);
        let mut spec = TaskSpec::collective(
            "ar.embed",
            vec![GpuId(0), GpuId((s_count - 1) as u16)],
            Op::Comm(lower(&c, algo, sku, topo, plan.precision)),
        );
        for s in [0, s_count - 1] {
            for done in bwd_done[s].iter().take(m_count) {
                spec.deps.push(done.expect("backward emitted"));
            }
        }
        embed_sync = Some(b.push(spec));
    }

    // ---- Optimizer, one Adam step per stage ----
    for s in 0..s_count {
        let gpu = GpuId(s as u16);
        let mut spec = TaskSpec::compute(
            format!("adam.s{s}"),
            gpu,
            compute_op(&ops::optimizer_kernel(plan.stage_params(s))),
        );
        if let (Some(sync), true) = (embed_sync, s == 0 || s == s_count - 1) {
            spec.deps.push(sync);
        }
        b.push(spec);
    }

    b.build()
}

/// Number of model layers resident on a stage.
fn stage_layer_count(plan: &PipelinePlan, stage: usize) -> usize {
    plan.stage_layers(stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_models::ModelPreset;

    fn plan(microbatches: u32) -> PipelinePlan {
        PipelinePlan {
            model: ModelPreset::Gpt3Xl.config(),
            stages: 4,
            microbatches,
            batch_total: 8 * u64::from(microbatches),
            seq: 256,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            schedule: PipelineSchedule::OneFOneB,
        }
    }

    fn node() -> (GpuSku, Topology) {
        let sku = GpuSku::a100();
        let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        (sku, topo)
    }

    #[test]
    fn p2p_count_matches_pipeline_structure() {
        let (sku, topo) = node();
        let m = 4u32;
        for schedule in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
            let mut p = plan(m);
            p.schedule = schedule;
            let w = pipeline_timeline(&p, &sku, &topo, ExecutionMode::Overlapped);
            let p2ps = w
                .tasks()
                .iter()
                .filter(|t| t.label.starts_with("x."))
                .count();
            // (stages-1) forward + (stages-1) backward transfers per microbatch.
            assert_eq!(p2ps, 2 * 3 * m as usize, "{schedule}");
        }
    }

    #[test]
    fn one_f_one_b_programs_interleave_in_steady_state() {
        let programs = stage_programs(PipelineSchedule::OneFOneB, 4, 8);
        // The last stage has no warmup: strict F,B alternation.
        assert_eq!(programs[3][0], StageOp::Forward(0));
        assert_eq!(programs[3][1], StageOp::Backward(0));
        // Stage 0 warms up with (stages-1) forwards.
        assert_eq!(
            &programs[0][..3],
            &[
                StageOp::Forward(0),
                StageOp::Forward(1),
                StageOp::Forward(2)
            ]
        );
        // Every program covers each microbatch exactly once per direction.
        for program in &programs {
            assert_eq!(program.len(), 16);
        }
    }

    #[test]
    fn gpipe_programs_flush_before_backward() {
        let programs = stage_programs(PipelineSchedule::GPipe, 4, 4);
        for program in &programs {
            let first_backward = program
                .iter()
                .position(|op| matches!(op, StageOp::Backward(_)))
                .unwrap();
            assert!(program[..first_backward]
                .iter()
                .all(|op| matches!(op, StageOp::Forward(_))));
        }
    }

    #[test]
    fn stages_split_all_layers() {
        let p = plan(2);
        let total: usize = (0..p.stages).map(|s| stage_layer_count(&p, s)).sum();
        assert_eq!(total, p.model.layers as usize);
    }

    #[test]
    fn stage_params_cover_the_model() {
        let p = plan(2);
        let total: u64 = (0..p.stages).map(|s| p.stage_params(s)).sum();
        // GPT ties embeddings, so the tied matrix appears on both edge
        // stages: total covers params + one extra embedding copy.
        assert!(total >= p.model.param_count());
    }

    #[test]
    fn in_flight_activations_differ_between_schedules() {
        let mut p = plan(8);
        assert_eq!(p.activations_in_flight(), 4, "1F1B caps at pipeline depth");
        p.schedule = PipelineSchedule::GPipe;
        assert_eq!(p.activations_in_flight(), 8, "GPipe stashes everything");
    }

    #[test]
    fn embed_sync_present_for_gpt() {
        let (sku, topo) = node();
        let w = pipeline_timeline(&plan(2), &sku, &topo, ExecutionMode::Overlapped);
        assert!(w.tasks().iter().any(|t| t.label == "ar.embed"));
    }

    #[test]
    fn both_modes_and_schedules_validate() {
        let (sku, topo) = node();
        for mode in ExecutionMode::ALL {
            for schedule in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
                let mut p = plan(3);
                p.schedule = schedule;
                pipeline_timeline(&p, &sku, &topo, mode)
                    .validate()
                    .expect("valid DAG");
            }
        }
    }

    #[test]
    fn microbatch_size_divides_batch() {
        let p = plan(4);
        assert_eq!(p.microbatch_size(), 8);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_batch_is_rejected() {
        let mut p = plan(3);
        p.batch_total = 10;
        p.microbatch_size();
    }

    #[test]
    fn activation_bytes_scale_with_microbatch() {
        let p2 = plan(2);
        let p4 = plan(4);
        // Same per-microbatch size (batch_total scales with microbatches).
        assert_eq!(p2.activation_bytes(), p4.activation_bytes());
    }
}
