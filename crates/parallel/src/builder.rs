//! Schedule construction with optional sequential serialization.

use crate::{ExecutionMode, Op};
use olab_sim::{GpuId, TaskId, TaskSpec, Workload};

/// Builds a [`Workload`] of [`Op`]s, optionally serializing communication
/// against computation per GPU.
///
/// In [`ExecutionMode::Sequential`], every pushed task additionally depends
/// on the previously pushed task of *every* participant GPU, regardless of
/// stream — so nothing on a GPU ever runs concurrently with anything else on
/// that GPU. Tasks must therefore be pushed in a valid execution order
/// (schedules here always are: they are emitted in program order).
#[derive(Debug)]
pub struct ScheduleBuilder {
    workload: Workload<Op>,
    mode: ExecutionMode,
    last_on_gpu: Vec<Option<TaskId>>,
}

impl ScheduleBuilder {
    /// Creates a builder for an `n_gpus` node.
    pub fn new(n_gpus: usize, mode: ExecutionMode) -> Self {
        ScheduleBuilder {
            workload: Workload::new(n_gpus),
            mode,
            last_on_gpu: vec![None; n_gpus],
        }
    }

    /// The execution mode this builder serializes for.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Pushes a task, applying sequential-mode serialization.
    pub fn push(&mut self, mut spec: TaskSpec<Op>) -> TaskId {
        if self.mode == ExecutionMode::Sequential {
            for gpu in spec.participants.clone() {
                if let Some(prev) = self.last_on_gpu[gpu.index()] {
                    if !spec.deps.contains(&prev) {
                        spec.deps.push(prev);
                    }
                }
            }
        }
        let id = self.workload.push(spec);
        for gpu in self.workload.tasks()[id.index()].participants.clone() {
            self.last_on_gpu[gpu.index()] = Some(id);
        }
        id
    }

    /// The most recently pushed task on a GPU, if any.
    pub fn last_on(&self, gpu: GpuId) -> Option<TaskId> {
        self.last_on_gpu[gpu.index()]
    }

    /// Finishes construction.
    pub fn build(self) -> Workload<Op> {
        self.workload
    }

    /// Number of tasks pushed so far.
    pub fn len(&self) -> usize {
        self.workload.len()
    }

    /// Whether no task has been pushed.
    pub fn is_empty(&self) -> bool {
        self.workload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputeOp;
    use olab_gpu::{Datapath, KernelKind, Precision};
    use olab_sim::StreamKind;

    fn op() -> Op {
        Op::Compute(ComputeOp::new(
            KernelKind::gemm(4, 4, 4),
            Precision::Fp16,
            Datapath::TensorCore,
        ))
    }

    #[test]
    fn sequential_mode_chains_across_streams() {
        let mut b = ScheduleBuilder::new(1, ExecutionMode::Sequential);
        let a = b.push(TaskSpec::compute("a", GpuId(0), op()));
        let c = b.push(TaskSpec::comm("c", GpuId(0), op()));
        let w = b.build();
        assert_eq!(w.tasks()[c.index()].deps, vec![a]);
    }

    #[test]
    fn overlapped_mode_adds_no_deps() {
        let mut b = ScheduleBuilder::new(1, ExecutionMode::Overlapped);
        b.push(TaskSpec::compute("a", GpuId(0), op()));
        let c = b.push(TaskSpec::comm("c", GpuId(0), op()));
        let w = b.build();
        assert!(w.tasks()[c.index()].deps.is_empty());
    }

    #[test]
    fn sequential_collectives_chain_on_every_participant() {
        let mut b = ScheduleBuilder::new(2, ExecutionMode::Sequential);
        let a0 = b.push(TaskSpec::compute("a0", GpuId(0), op()));
        let a1 = b.push(TaskSpec::compute("a1", GpuId(1), op()));
        let coll = b.push(TaskSpec::new(
            "ar",
            vec![GpuId(0), GpuId(1)],
            StreamKind::Comm,
            op(),
        ));
        let w = b.build();
        let deps = &w.tasks()[coll.index()].deps;
        assert!(deps.contains(&a0) && deps.contains(&a1));
    }

    #[test]
    fn last_on_tracks_collective_participants() {
        let mut b = ScheduleBuilder::new(2, ExecutionMode::Overlapped);
        let coll = b.push(TaskSpec::new(
            "ar",
            vec![GpuId(0), GpuId(1)],
            StreamKind::Comm,
            op(),
        ));
        assert_eq!(b.last_on(GpuId(0)), Some(coll));
        assert_eq!(b.last_on(GpuId(1)), Some(coll));
    }
}
