//! Property-based tests: every schedule the builders produce, over random
//! configurations, must validate as a DAG, execute without deadlock under
//! a trivial rate model, and satisfy the engine's trace invariants in both
//! execution modes.

use olab_gpu::{Datapath, GpuSku, Precision};
use olab_models::memory::ActivationPolicy;
use olab_models::TransformerConfig;
use olab_net::Topology;
use olab_parallel::{fsdp, moe, pipeline, tensor, ExecutionMode, Op};
use olab_sim::{verify_trace, Engine, RateModel, RunningTask, Workload};
use proptest::prelude::*;

/// Every task takes 1 µs per unit of a crude size measure; devices draw a
/// constant 100 W. Enough to execute any schedule.
struct Uniform;

impl RateModel for Uniform {
    type Payload = Op;
    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Op>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        for (i, task) in running.iter().enumerate() {
            rates[i] = match task.payload {
                Op::Compute(_) => 1e6,
                Op::Comm(_) => 2e5,
            };
            for gpu in task.participants {
                power[gpu.index()] = 100.0;
            }
        }
    }
}

fn execute_and_verify(w: &Workload<Op>) -> Result<(), TestCaseError> {
    w.validate().expect("valid DAG");
    let trace = Engine::new(Uniform).run(w).expect("no deadlock");
    let violations = verify_trace(w, &trace);
    prop_assert!(violations.is_empty(), "{violations:?}");
    Ok(())
}

/// A small random transformer (heads divide hidden; ffn divisible by 8).
fn random_model() -> impl Strategy<Value = TransformerConfig> {
    (2u32..8, 2u32..9, 4u64..65).prop_map(|(layers, heads, head_dim)| {
        let heads = heads * 4; // keep divisible by up to 8 ranks
        TransformerConfig::gpt("prop", layers, heads, u64::from(heads) * head_dim)
    })
}

fn node(n: usize) -> (GpuSku, Topology) {
    let sku = GpuSku::h100();
    let topo = Topology::nvswitch(n, sku.link_bw_unidir_gbs, sku.link_latency_us);
    (sku, topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fsdp_schedules_always_execute(
        model in random_model(),
        ranks in 2usize..9,
        batch in 1u64..9,
        accum in 1u32..4,
        prefetch in any::<bool>(),
        overlap_rs in any::<bool>(),
        recompute in any::<bool>(),
    ) {
        let (sku, topo) = node(ranks);
        let mut plan = fsdp::FsdpPlan::new(
            model, ranks, batch, 64, Precision::Fp16, Datapath::TensorCore,
            if recompute { ActivationPolicy::Recompute } else { ActivationPolicy::Full },
        );
        plan.grad_accum_steps = accum;
        plan.overlap = fsdp::FsdpOverlap {
            prefetch_all_gather: prefetch,
            overlap_reduce_scatter: overlap_rs,
        };
        for mode in ExecutionMode::ALL {
            execute_and_verify(&fsdp::fsdp_timeline(&plan, &sku, &topo, mode))?;
        }
    }

    #[test]
    fn pipeline_schedules_always_execute(
        model in random_model(),
        stages in 2usize..6,
        microbatches in 1u32..7,
        gpipe in any::<bool>(),
    ) {
        prop_assume!(stages <= model.layers as usize);
        let (sku, topo) = node(stages);
        let plan = pipeline::PipelinePlan {
            model,
            stages,
            microbatches,
            batch_total: 2 * u64::from(microbatches),
            seq: 64,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            schedule: if gpipe {
                pipeline::PipelineSchedule::GPipe
            } else {
                pipeline::PipelineSchedule::OneFOneB
            },
        };
        for mode in ExecutionMode::ALL {
            execute_and_verify(&pipeline::pipeline_timeline(&plan, &sku, &topo, mode))?;
        }
    }

    #[test]
    fn tensor_schedules_always_execute(
        model in random_model(),
        ranks_pow in 1u32..3, // 2 or 4 ranks (heads are multiples of 4)
        batch in 1u64..9,
        recompute in any::<bool>(),
    ) {
        let ranks = 1usize << ranks_pow;
        let (sku, topo) = node(ranks);
        let plan = tensor::TensorPlan {
            model,
            ranks,
            batch,
            seq: 64,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: if recompute {
                ActivationPolicy::Recompute
            } else {
                ActivationPolicy::Full
            },
        };
        for mode in ExecutionMode::ALL {
            execute_and_verify(&tensor::tensor_timeline(&plan, &sku, &topo, mode))?;
        }
    }

    #[test]
    fn moe_schedules_always_execute(
        model in random_model(),
        ranks in 2usize..5,
        chunks in 1u32..5,
        moe_every in 1u32..4,
    ) {
        let (sku, topo) = node(ranks);
        let plan = moe::MoePlan {
            model,
            ranks,
            batch_per_rank: 2,
            seq: 64,
            experts: (ranks as u32) * 2,
            moe_every,
            chunks,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
        };
        for mode in ExecutionMode::ALL {
            execute_and_verify(&moe::moe_timeline(&plan, &sku, &topo, mode))?;
        }
    }
}
