//! Regenerates Fig. 9: the impact of power capping on performance and
//! slowdowns, 4×A100 with GPT-3 2.7B FSDP.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::registry;

fn main() {
    // Uncapped baselines for the relative-slowdown columns.
    let stock = registry::fig9()
        .first()
        .cloned()
        .expect("fig9 grid is non-empty");
    let baseline = stock.run().expect("stock-cap run succeeds");
    let base_ovl = baseline.metrics.e2e_overlapped_s;
    let base_seq = baseline.metrics.e2e_sequential_measured_s;

    let mut table = Table::new([
        "Power cap (W)",
        "E2E overlapped",
        "E2E sequential",
        "Overlapped slowdown vs 400 W",
        "Sequential slowdown vs 400 W",
        "Compute slowdown (Eq. 1)",
    ]);
    for exp in registry::fig9() {
        let cap = exp.power_cap_w.expect("cap set");
        match exp.run() {
            Ok(r) => {
                table.row([
                    format!("{cap:.0}"),
                    ms(r.metrics.e2e_overlapped_s),
                    ms(r.metrics.e2e_sequential_measured_s),
                    pct(r.metrics.e2e_overlapped_s / base_ovl - 1.0),
                    pct(r.metrics.e2e_sequential_measured_s / base_seq - 1.0),
                    pct(r.metrics.compute_slowdown),
                ]);
            }
            Err(e) => {
                table.row([
                    format!("{cap:.0}"),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 9: Impact of power capping (A100x4, GPT-3 2.7B FSDP, batch 8)",
        &table,
    );
}
