//! Regenerates Fig. 9: the impact of power capping on performance and
//! slowdowns, 4×A100 with GPT-3 2.7B FSDP.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{registry, sweep};

fn main() {
    let grid = registry::fig9();
    let outcome = sweep::run_cells(&grid);

    // Uncapped baselines for the relative-slowdown columns: the first grid
    // cell carries the stock (400 W) cap.
    let baseline = outcome
        .cells
        .first()
        .expect("fig9 grid is non-empty")
        .as_ref()
        .expect("stock-cap run succeeds");
    let base_ovl = baseline.metrics.e2e_overlapped_s;
    let base_seq = baseline.metrics.e2e_sequential_measured_s;

    let mut table = Table::new([
        "Power cap (W)",
        "E2E overlapped",
        "E2E sequential",
        "Overlapped slowdown vs 400 W",
        "Sequential slowdown vs 400 W",
        "Compute slowdown (Eq. 1)",
    ]);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        let cap = exp.power_cap_w.expect("cap set");
        match cell {
            Ok(r) => {
                table.row([
                    format!("{cap:.0}"),
                    ms(r.metrics.e2e_overlapped_s),
                    ms(r.metrics.e2e_sequential_measured_s),
                    pct(r.metrics.e2e_overlapped_s / base_ovl - 1.0),
                    pct(r.metrics.e2e_sequential_measured_s / base_seq - 1.0),
                    pct(r.metrics.compute_slowdown),
                ]);
            }
            Err(e) => {
                table.row([
                    format!("{cap:.0}"),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 9: Impact of power capping (A100x4, GPT-3 2.7B FSDP, batch 8)",
        &table,
    );
}
