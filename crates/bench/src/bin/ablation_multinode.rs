//! Ablation: scale-out (multi-node) extension.
//!
//! The paper deliberately stays single-node "to isolate hardware-specific
//! performance characteristics". This study shows what that isolation
//! protects it from: spanning FSDP across two 4×H100 nodes drops the ring
//! bus bandwidth to the NIC rate, exploding the overlap ratio and
//! contention slowdown as the NIC shrinks from 4x400G-class (200 GB/s) to
//! a single 100G port (12.5 GB/s).

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{execute, Machine, MachineConfig, OverlapMetrics};
use olab_gpu::{Datapath, DvfsGovernor, GpuSku, Precision};
use olab_models::{memory::ActivationPolicy, ModelPreset};
use olab_net::Topology;
use olab_parallel::{fsdp, ExecutionMode};

fn run(topology: Topology, ranks: usize) -> OverlapMetrics {
    let sku = GpuSku::h100();
    let machine = Machine::new(MachineConfig {
        governor: DvfsGovernor::stock(sku.tdp_w),
        sku: sku.clone(),
        topology: topology.clone(),
        contended: true,
        jitter: None,
    });
    let plan = fsdp::FsdpPlan::new(
        ModelPreset::Gpt3_2_7B.config(),
        ranks,
        8,
        1024,
        Precision::Fp16,
        Datapath::TensorCore,
        ActivationPolicy::Full,
    );
    let ovl = execute(
        &fsdp::fsdp_timeline(&plan, &sku, &topology, ExecutionMode::Overlapped),
        &machine,
    )
    .expect("overlapped runs");
    let seq = execute(
        &fsdp::fsdp_timeline(&plan, &sku, &topology, ExecutionMode::Sequential),
        &machine,
    )
    .expect("sequential runs");
    OverlapMetrics::derive(&ovl, &seq)
}

fn main() {
    let h100 = GpuSku::h100();
    let mut table = Table::new([
        "Fabric",
        "Ring busbw (GB/s)",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "Seq vs overlap",
    ]);

    // Single-node baseline: 8 GPUs behind one NVSwitch.
    let single = Topology::nvswitch(8, h100.link_bw_unidir_gbs, h100.link_latency_us);
    let m = run(single.clone(), 8);
    table.row([
        "1 node x 8 GPUs (NVSwitch)".to_string(),
        format!("{:.0}", single.ring_busbw_gbs(8)),
        pct(m.overlap_ratio),
        pct(m.compute_slowdown),
        ms(m.e2e_overlapped_s),
        pct(m.sequential_vs_overlapped()),
    ]);

    for nic in [200.0, 100.0, 50.0, 12.5] {
        let topo = Topology::multi_node(
            2,
            4,
            h100.link_bw_unidir_gbs,
            h100.link_latency_us,
            nic,
            10.0,
        );
        let m = run(topo.clone(), 8);
        table.row([
            format!("2 nodes x 4 GPUs, {nic:.1} GB/s NIC"),
            format!("{:.1}", topo.ring_busbw_gbs(8)),
            pct(m.overlap_ratio),
            pct(m.compute_slowdown),
            ms(m.e2e_overlapped_s),
            pct(m.sequential_vs_overlapped()),
        ]);
    }
    emit(
        "Ablation: multi-node scale-out (GPT-3 2.7B FSDP b8, 8x H100)",
        &table,
    );
}
