//! Ablation: frequency capping vs power capping.
//!
//! The paper's conclusion mentions both knobs; this study compares them at
//! matched performance points, showing that clock caps save energy
//! superlinearly (`P ~ f^2.2`) while strict power caps let memory-bound
//! phases run unthrottled — two different efficiency frontiers.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{sweep, CellMetrics, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

const FREQ_CAPS: [f64; 6] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5];
const POWER_CAPS: [f64; 6] = [400.0, 350.0, 300.0, 250.0, 200.0, 150.0];

fn base() -> Experiment {
    Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8)
}

fn main() {
    // One grid: the stock baseline, then every clock cap, then every
    // strict power cap.
    let mut grid = vec![base()];
    grid.extend(FREQ_CAPS.iter().map(|&f| base().with_freq_cap(f)));
    grid.extend(POWER_CAPS.iter().map(|&cap| base().with_power_cap(cap)));
    let outcome = sweep::run_cells(&grid);
    let cell =
        |i: usize| -> &CellMetrics { outcome.cells[i].as_ref().expect("A100 2.7B b8 is feasible") };

    let stock = cell(0);
    let e2e0 = stock.metrics.e2e_overlapped_s;
    let energy0 = stock.metrics.energy_j;

    let mut table = Table::new([
        "Knob",
        "Setting",
        "E2E",
        "Slowdown",
        "Energy/iter",
        "Energy saved",
        "Avg power",
    ]);
    for (i, f) in FREQ_CAPS.iter().enumerate() {
        let r = cell(1 + i);
        table.row([
            "clock".to_string(),
            format!("{:.0}%", f * 100.0),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
            format!("{:.0} W", r.metrics.avg_power_w),
        ]);
    }
    for (i, cap) in POWER_CAPS.iter().enumerate() {
        let r = cell(1 + FREQ_CAPS.len() + i);
        table.row([
            "power".to_string(),
            format!("{cap:.0} W"),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
            format!("{:.0} W", r.metrics.avg_power_w),
        ]);
    }
    emit(
        "Ablation: frequency capping vs power capping (A100x4, GPT-3 2.7B FSDP b8)",
        &table,
    );
}
