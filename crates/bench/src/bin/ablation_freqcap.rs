//! Ablation: frequency capping vs power capping.
//!
//! The paper's conclusion mentions both knobs; this study compares them at
//! matched performance points, showing that clock caps save energy
//! superlinearly (`P ~ f^2.2`) while strict power caps let memory-bound
//! phases run unthrottled — two different efficiency frontiers.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn base() -> Experiment {
    Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8)
}

fn main() {
    let stock = base().run().expect("stock runs");
    let e2e0 = stock.metrics.e2e_overlapped_s;
    let energy0 = stock.metrics.energy_j;

    let mut table = Table::new([
        "Knob",
        "Setting",
        "E2E",
        "Slowdown",
        "Energy/iter",
        "Energy saved",
        "Avg power",
    ]);
    for f in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let r = base().with_freq_cap(f).run().expect("freq-capped runs");
        table.row([
            "clock".to_string(),
            format!("{:.0}%", f * 100.0),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
            format!("{:.0} W", r.metrics.avg_power_w),
        ]);
    }
    for cap in [400.0, 350.0, 300.0, 250.0, 200.0, 150.0] {
        let r = base().with_power_cap(cap).run().expect("power-capped runs");
        table.row([
            "power".to_string(),
            format!("{cap:.0} W"),
            ms(r.metrics.e2e_overlapped_s),
            pct(r.metrics.e2e_overlapped_s / e2e0 - 1.0),
            format!("{:.0} J", r.metrics.energy_j),
            pct(1.0 - r.metrics.energy_j / energy0),
            format!("{:.0} W", r.metrics.avg_power_w),
        ]);
    }
    emit(
        "Ablation: frequency capping vs power capping (A100x4, GPT-3 2.7B FSDP b8)",
        &table,
    );
}
