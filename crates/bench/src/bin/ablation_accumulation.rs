//! Ablation: gradient accumulation (the paper's Sec. II-B mitigation).
//!
//! `k` micro-steps per optimizer step cut reduce-scatter traffic per sample
//! by `k` (all-gathers remain per-step). Measured here at constant total
//! samples per iteration: accumulation trades a small compute overhead for
//! a large drop in contention on slow fabrics.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{sweep, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

const MICRO_STEPS: [u32; 3] = [1, 2, 4];

fn main() {
    let mut table = Table::new([
        "GPU",
        "Micro-steps",
        "Batch/step",
        "Act policy",
        "Overlap ratio",
        "Compute slowdown",
        "E2E (same samples)",
        "Throughput gain",
    ]);
    let skus = [SkuKind::H100, SkuKind::Mi250];
    // 32 samples per GPU per optimizer step, split into k micro-steps.
    let grid: Vec<_> = skus
        .iter()
        .flat_map(|&sku| {
            MICRO_STEPS.iter().map(move |&k| {
                Experiment::new(
                    sku,
                    4,
                    ModelPreset::Gpt3Xl,
                    Strategy::Fsdp,
                    32 / u64::from(k),
                )
                .with_grad_accum(k)
            })
        })
        .collect();
    let outcome = sweep::run_cells(&grid);
    let mut rows = grid.iter().zip(&outcome.cells);
    for sku in skus {
        let mut baseline_e2e = None;
        for k in MICRO_STEPS {
            let (_, cell) = rows.next().expect("one cell per (sku, k)");
            match cell {
                Ok(r) => {
                    let e2e = r.metrics.e2e_overlapped_s;
                    let gain = baseline_e2e
                        .map(|b: f64| pct(b / e2e - 1.0))
                        .unwrap_or_else(|| "baseline".into());
                    if baseline_e2e.is_none() {
                        baseline_e2e = Some(e2e);
                    }
                    table.row([
                        sku.to_string(),
                        k.to_string(),
                        (32 / u64::from(k)).to_string(),
                        format!("{:?}", r.activation_policy),
                        pct(r.metrics.overlap_ratio),
                        pct(r.metrics.compute_slowdown),
                        ms(e2e),
                        gain,
                    ]);
                }
                Err(e) => {
                    table.row([
                        sku.to_string(),
                        k.to_string(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    emit(
        "Ablation: gradient accumulation (GPT-3 XL FSDP, 32 samples/GPU/step)",
        &table,
    );
    println!(
        "Accumulation cuts reduce-scatter traffic per sample AND shrinks the\n\
         activation footprint (smaller per-step batch), which can avoid\n\
         recomputation entirely — but too many micro-steps raise the overlap\n\
         ratio back up (communication per step is constant, compute shrinks)."
    );
}
