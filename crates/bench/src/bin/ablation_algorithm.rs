//! Ablation: collective algorithm (ring vs tree) across message sizes.
//!
//! Rings are bandwidth-optimal, trees latency-optimal; NCCL switches
//! between them by size. This study shows the crossover the `Algorithm::auto`
//! heuristic encodes, on both an NVLink and an Infinity Fabric node.

use olab_bench::emit;
use olab_ccl::{lower, Algorithm, Collective};
use olab_core::report::Table;
use olab_gpu::{Precision, SkuKind};
use olab_net::Topology;
use olab_sim::GpuId;

fn main() {
    let mut table = Table::new([
        "GPU",
        "Message",
        "Ring time",
        "Tree time",
        "Winner",
        "Auto picks",
    ]);
    for sku_kind in [SkuKind::H100, SkuKind::Mi250] {
        let sku = sku_kind.sku();
        let topo = match sku.vendor {
            olab_gpu::Vendor::Nvidia => {
                Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us)
            }
            olab_gpu::Vendor::Amd => {
                Topology::full_mesh(4, sku.link_bw_unidir_gbs, sku.link_latency_us)
            }
        };
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        for exp in [12u32, 16, 20, 24, 28, 30] {
            let bytes = 1u64 << exp;
            let coll = Collective::all_reduce(bytes, group.clone());
            let ring = lower(&coll, Algorithm::Ring, &sku, &topo, Precision::Fp16);
            let tree = lower(&coll, Algorithm::Tree, &sku, &topo, Precision::Fp16);
            let auto = Algorithm::auto(coll.kind, bytes, 4);
            let (rt, tt) = (ring.isolated_duration_s(), tree.isolated_duration_s());
            table.row([
                sku_kind.to_string(),
                format!("{} KiB", bytes >> 10),
                format!("{:.1} us", rt * 1e6),
                format!("{:.1} us", tt * 1e6),
                if rt < tt { "ring" } else { "tree" }.to_string(),
                auto.to_string(),
            ]);
        }
    }
    emit(
        "Ablation: ring vs tree all-reduce across message sizes",
        &table,
    );
}
