//! Regenerates Fig. 7: the fine-grained power trace of one MI250 during
//! LLaMA-2 13B FSDP training. Power is normalized to TDP and time to one
//! iteration; rows inside compute/communication overlap windows are marked,
//! mirroring the figure's grey regions.
//!
//! ROCm-SMI's 1 ms sampling makes this trace possible on the MI250 — NVML's
//! 100 ms windows would smear the spikes (see the `ablation_sampler` bin).

use olab_bench::emit;
use olab_core::registry;
use olab_core::report::Table;
use olab_power::Sampler;

fn main() {
    let exp = registry::fig7();
    let report = match exp.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig7 experiment failed: {e}");
            std::process::exit(1);
        }
    };
    let tdp = report.tdp_w();
    let run = &report.overlapped;
    let gpu0 = &run.gpus[0];
    let sampled = gpu0.power.sample(Sampler::rocm_smi_fine());
    let e2e = run.e2e_s;

    let in_overlap = |t: f64| gpu0.overlap_windows.iter().any(|&(a, b)| t >= a && t < b);

    let mut table = Table::new(["t (normalized)", "power (x TDP)", "overlap window"]);
    // Thin the series for readability: at most ~200 rows in markdown mode;
    // --csv emits every sample for plotting.
    let stride = if olab_bench::csv_requested() {
        1
    } else {
        (sampled.samples.len() / 200).max(1)
    };
    for sample in sampled.samples.iter().step_by(stride) {
        table.row([
            format!("{:.4}", sample.time_s / e2e),
            format!("{:.3}", sample.watts / tdp),
            if in_overlap(sample.time_s) { "1" } else { "0" }.to_string(),
        ]);
    }
    emit(
        "Fig. 7: MI250 power trace, LLaMA-2 13B FSDP (1 ms sampling, normalized)",
        &table,
    );

    let peak = sampled.peak().unwrap_or(0.0) / tdp;
    let avg = sampled.average().unwrap_or(0.0) / tdp;
    println!(
        "peak = {peak:.2}x TDP, average = {avg:.2}x TDP, iteration = {:.1} ms",
        e2e * 1e3
    );
    println!(
        "overlap windows cover {:.1}% of the iteration",
        100.0
            * gpu0
                .overlap_windows
                .iter()
                .map(|&(a, b)| b - a)
                .sum::<f64>()
            / e2e
    );
}
