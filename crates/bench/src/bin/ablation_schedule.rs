//! Ablation: pipeline schedule (1F1B vs GPipe).
//!
//! The paper's Fig. 3(b) shows an interleaved schedule; this study
//! quantifies why that matters on a slow fabric (MI250 Infinity Fabric,
//! where transfers are long enough to be worth hiding): GPipe's transfers
//! sit on slot boundaries and barely overlap, while 1F1B hides them under
//! the opposite-direction compute — at a fraction of GPipe's activation
//! memory.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{sweep, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_parallel::pipeline::PipelineSchedule;

fn main() {
    let mut table = Table::new([
        "Batch",
        "Schedule",
        "Overlap ratio",
        "Compute slowdown",
        "E2E",
        "Acts in flight",
    ]);
    let mut grid = Vec::new();
    let mut in_flights = Vec::new();
    for batch in [16u64, 32, 64] {
        for schedule in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
            grid.push(
                Experiment::new(
                    SkuKind::Mi250,
                    4,
                    ModelPreset::Gpt3_2_7B,
                    Strategy::Pipeline { microbatch_size: 8 },
                    batch,
                )
                .with_pipeline_schedule(schedule),
            );
            in_flights.push(match schedule {
                PipelineSchedule::GPipe => batch / 8,
                PipelineSchedule::OneFOneB => (batch / 8).min(4),
            });
        }
    }
    let outcome = sweep::run_cells(&grid);
    for ((exp, cell), in_flight) in grid.iter().zip(&outcome.cells).zip(in_flights) {
        let schedule = exp.pipeline_schedule;
        match cell {
            Ok(r) => {
                table.row([
                    exp.batch.to_string(),
                    schedule.to_string(),
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    in_flight.to_string(),
                ]);
            }
            Err(e) => {
                table.row([
                    exp.batch.to_string(),
                    schedule.to_string(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    in_flight.to_string(),
                ]);
            }
        }
    }
    emit(
        "Ablation: pipeline schedule (GPT-3 2.7B on MI250x4, microbatch 8)",
        &table,
    );
}
