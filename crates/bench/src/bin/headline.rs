//! Computes the paper's abstract-level aggregate statistics over the main
//! grid: mean/max compute slowdown of overlapped execution, and mean/max
//! slowdown of sequential relative to overlapped execution.

use olab_bench::emit;
use olab_core::report::{pct, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut compute_slowdowns: Vec<(String, f64)> = Vec::new();
    let mut seq_vs_ovl: Vec<(String, f64)> = Vec::new();
    let mut fsdp_slowdowns: Vec<(String, f64)> = Vec::new();
    let mut fsdp_seq_vs_ovl: Vec<(String, f64)> = Vec::new();
    let mut feasible = 0usize;
    let mut infeasible = 0usize;

    let grid = registry::main_grid();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                feasible += 1;
                compute_slowdowns.push((exp.label(), r.metrics.compute_slowdown));
                seq_vs_ovl.push((exp.label(), r.metrics.sequential_vs_overlapped()));
                if matches!(exp.strategy, olab_core::Strategy::Fsdp) {
                    fsdp_slowdowns.push((exp.label(), r.metrics.compute_slowdown));
                    fsdp_seq_vs_ovl.push((exp.label(), r.metrics.sequential_vs_overlapped()));
                }
            }
            Err(_) => infeasible += 1,
        }
    }

    let mean = |v: &[(String, f64)]| v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64;
    let max = |v: &[(String, f64)]| {
        v.iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
            .unwrap_or(("-".into(), 0.0))
    };

    let (max_cs_label, max_cs) = max(&compute_slowdowns);
    let (max_sq_label, max_sq) = max(&seq_vs_ovl);

    let mut table = Table::new(["Statistic", "Paper", "Simulated", "Where (simulated max)"]);
    table
        .row([
            "Mean compute slowdown (overlap vs isolated)".to_string(),
            "18.9%".to_string(),
            pct(mean(&compute_slowdowns)),
            "-".to_string(),
        ])
        .row([
            "Max compute slowdown".to_string(),
            "40.0%".to_string(),
            pct(max_cs),
            max_cs_label,
        ])
        .row([
            "Mean compute slowdown, FSDP cells only".to_string(),
            "-".to_string(),
            pct(mean(&fsdp_slowdowns)),
            "(the paper's averages come from overlap-heavy FSDP configs)".to_string(),
        ])
        .row([
            "Mean sequential vs overlapped, FSDP cells only".to_string(),
            "-".to_string(),
            pct(mean(&fsdp_seq_vs_ovl)),
            "-".to_string(),
        ])
        .row([
            "Mean sequential vs overlapped".to_string(),
            "10.2%".to_string(),
            pct(mean(&seq_vs_ovl)),
            "-".to_string(),
        ])
        .row([
            "Max sequential vs overlapped".to_string(),
            "26.6%".to_string(),
            pct(max_sq),
            max_sq_label,
        ])
        .row([
            "Feasible / infeasible grid cells".to_string(),
            "-".to_string(),
            format!("{feasible} / {infeasible}"),
            "-".to_string(),
        ]);
    emit("Headline statistics (paper abstract vs simulation)", &table);
}
