//! Reproduces the paper's measurement methodology: "All metrics were
//! averaged over 25 runs to ensure consistency and reliability."
//!
//! The simulator is deterministic, so run-to-run spread is injected as
//! per-epoch rate noise (~2% coefficient of variation, typical of real GPU
//! nodes) and each cell is run 25 times with different seeds.

use olab_bench::emit;
use olab_core::report::{pct, Table};
use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() {
    const RUNS: usize = 25;
    const SIGMA: f64 = 0.02;

    let mut table = Table::new([
        "Cell",
        "Runs",
        "E2E mean",
        "E2E std",
        "E2E CV",
        "Slowdown mean",
        "Slowdown std",
    ]);
    let cells = [
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8),
        Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8),
        Experiment::new(
            SkuKind::A100,
            4,
            ModelPreset::Gpt3_2_7B,
            Strategy::Pipeline { microbatch_size: 8 },
            32,
        ),
    ];
    for exp in cells {
        match exp.run_n(RUNS, SIGMA) {
            Ok(stats) => {
                let (e2e_mean, e2e_std) = stats.e2e_overlapped();
                let (sd_mean, sd_std) = stats.compute_slowdown();
                table.row([
                    exp.label(),
                    RUNS.to_string(),
                    format!("{:.1} ms", e2e_mean * 1e3),
                    format!("{:.1} ms", e2e_std * 1e3),
                    pct(stats.e2e_cv()),
                    pct(sd_mean),
                    pct(sd_std),
                ]);
            }
            Err(e) => {
                table.row([
                    exp.label(),
                    RUNS.to_string(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Methodology: 25-run averaging with 2% per-epoch measurement noise",
        &table,
    );
    println!(
        "Run-to-run CV stays ~1% or below — the averaging the paper applies\n\
         suppresses exactly this kind of noise."
    );
}
