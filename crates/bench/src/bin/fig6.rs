//! Regenerates Fig. 6: power consumption across GPUs for various models,
//! normalized to TDP (average and peak, overlapped vs sequential).

use olab_bench::emit;
use olab_core::report::{xtdp, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut table = Table::new([
        "GPU",
        "Strategy",
        "Model",
        "Batch",
        "Avg power (ovl)",
        "Peak power (ovl)",
        "Avg power (seq)",
        "Peak power (seq)",
        "Sampled peak",
    ]);
    let grid = registry::main_grid();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                let tdp = exp.sku.sku().tdp_w;
                table.row([
                    format!("{}", exp.sku),
                    format!("{}", exp.strategy),
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    xtdp(r.metrics.avg_power_w, tdp),
                    xtdp(r.metrics.peak_power_w, tdp),
                    xtdp(r.metrics.avg_power_sequential_w, tdp),
                    xtdp(r.metrics.peak_power_sequential_w, tdp),
                    xtdp(r.sampled_peak_w, tdp),
                ]);
            }
            Err(_) => {
                table.row([
                    format!("{}", exp.sku),
                    format!("{}", exp.strategy),
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 6: Power consumption across GPUs (normalized to TDP)",
        &table,
    );
}
