//! Conformance gate: runs the closed-form oracle over every full-length
//! registry grid plus a randomized-seed metamorphic pass, and exits
//! non-zero on any divergence. CI runs this after the figure regenerators
//! so a code change that silently bends a paper trend fails the build.
//!
//! * `OLAB_ORACLE_SEED` — base seed for the randomized metamorphic pass
//!   (default 0; CI passes `$GITHUB_RUN_ID` so every run probes new cells).
//! * `OLAB_ORACLE_SMOKE_SEEDS` — number of random seeds (default 20).
//! * `OLAB_ORACLE_FAULT_SEEDS` — number of fault-scenario seeds for the
//!   fault metamorphic relations (default 10).
//! * `OLAB_ORACLE_RESILIENCE_SEEDS` — number of seeds for the recovery
//!   relations R1–R3 (default 6); the recovery R1/R3 pass additionally
//!   covers every registry grid cell under its killing scenario.
//! * `OLAB_ORACLE_REPORT` — path to write the divergence report to on
//!   failure (uploaded as a CI artifact).

use olab_core::{registry, Experiment};
use olab_grid::Pool;
use olab_oracle::{
    check_cell, check_collective_relations, check_experiment_relations, check_fault_relations,
    check_resilience_grid_cell, check_resilience_relations,
};
use std::fmt::Write as _;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Every experiment the figure binaries run, at full length, deduplicated.
fn full_grid() -> Vec<Experiment> {
    let mut cells: Vec<Experiment> = Vec::new();
    cells.extend(registry::main_grid());
    cells.extend(registry::fig1a());
    cells.extend(registry::fig1b());
    cells.push(registry::fig7());
    cells.extend(registry::fig9());
    for (a, b) in registry::fig10() {
        cells.push(a);
        cells.push(b);
    }
    for (a, b) in registry::fig11() {
        cells.push(a);
        cells.push(b);
    }
    cells.sort_by_key(Experiment::label);
    cells.dedup_by_key(|e| e.label());
    cells
}

fn main() {
    let pool = Pool::with_available_parallelism();
    let mut report = String::new();
    let mut failed = false;

    // Fixed-seed conformance: the full registry grid against the oracles.
    let cells = full_grid();
    let results = pool.map(&cells, |exp| (exp.label(), check_cell(exp)));
    let mut feasible = 0usize;
    let mut skipped = 0usize;
    for (label, outcome) in &results {
        match outcome {
            Ok(r) if r.is_clean() => feasible += 1,
            Ok(r) => {
                failed = true;
                feasible += 1;
                let _ = writeln!(report, "{label}:\n{r}");
            }
            Err(_) => skipped += 1, // out of memory: the paper's missing bars
        }
    }
    println!(
        "conformance: {feasible} cells clean, {skipped} infeasible (expected), \
         {} divergent",
        results.len() - feasible - skipped
    );

    // Randomized metamorphic smoke: a fresh slice of the seed space.
    let base = env_u64("OLAB_ORACLE_SEED", 0);
    let count = env_u64("OLAB_ORACLE_SMOKE_SEEDS", 20);
    let seeds: Vec<u64> = (0..count).map(|i| base.wrapping_add(i)).collect();
    for seed in &seeds {
        for failure in check_collective_relations(*seed) {
            failed = true;
            let _ = writeln!(report, "{failure}");
        }
    }
    let outcomes = pool.map(&seeds, |&seed| check_experiment_relations(seed));
    let smoke_feasible = outcomes.iter().filter(|o| o.feasible).count();
    for failure in outcomes.into_iter().flat_map(|o| o.failures) {
        failed = true;
        let _ = writeln!(report, "{failure}");
    }
    println!("metamorphic smoke: {smoke_feasible}/{count} seeds feasible (base seed {base})");

    // Fault-scenario smoke: the fault-free-lower-bound and
    // throttle-widening relations over a fresh slice of scenario seeds.
    let fault_count = env_u64("OLAB_ORACLE_FAULT_SEEDS", 10);
    let fault_seeds: Vec<u64> = (0..fault_count).map(|i| base.wrapping_add(i)).collect();
    let fault_outcomes = pool.map(&fault_seeds, |&seed| check_fault_relations(seed));
    let fault_feasible = fault_outcomes.iter().filter(|o| o.feasible).count();
    for failure in fault_outcomes.into_iter().flat_map(|o| o.failures) {
        failed = true;
        let _ = writeln!(report, "{failure}");
    }
    println!("fault smoke: {fault_feasible}/{fault_count} seeds feasible (base seed {base})");

    // Recovery smoke: the fault-free-lower-bound, checkpoint-overhead and
    // byte-conservation relations over a fresh slice of seeds...
    let res_count = env_u64("OLAB_ORACLE_RESILIENCE_SEEDS", 6);
    let res_seeds: Vec<u64> = (0..res_count).map(|i| base.wrapping_add(i)).collect();
    let res_outcomes = pool.map(&res_seeds, |&seed| check_resilience_relations(seed));
    let res_feasible = res_outcomes.iter().filter(|o| o.feasible).count();
    for failure in res_outcomes.into_iter().flat_map(|o| o.failures) {
        failed = true;
        let _ = writeln!(report, "{failure}");
    }
    println!("resilience smoke: {res_feasible}/{res_count} seeds feasible (base seed {base})");

    // ...and R1/R3 over every registry grid cell under its killing
    // scenario, so recovery holds on exactly the cells the figures run.
    let grid_outcomes = pool.map(&cells, |exp| check_resilience_grid_cell(exp, base));
    let grid_feasible = grid_outcomes.iter().filter(|o| o.feasible).count();
    for failure in grid_outcomes.into_iter().flat_map(|o| o.failures) {
        failed = true;
        let _ = writeln!(report, "{failure}");
    }
    println!(
        "resilience grid: {grid_feasible}/{} registry cells feasible",
        cells.len()
    );

    if failed {
        eprint!("{report}");
        if let Ok(path) = std::env::var("OLAB_ORACLE_REPORT") {
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("could not write divergence report to {path}: {e}");
            } else {
                eprintln!("divergence report written to {path}");
            }
        }
        std::process::exit(1);
    }
    println!("conformance: all oracles and metamorphic relations hold");
}
