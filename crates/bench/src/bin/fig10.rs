//! Regenerates Fig. 10: the effect of numeric precision (FP32 vs FP16) on
//! slowdowns and power across workloads, 4×H100.

use olab_bench::emit;
use olab_core::report::{ms, pct, xtdp, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut table = Table::new([
        "Model",
        "Batch",
        "Precision",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "Avg power",
        "Peak power",
    ]);
    let grid: Vec<_> = registry::fig10()
        .into_iter()
        .flat_map(|(fp32, fp16)| [fp32, fp16])
        .collect();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                let tdp = exp.sku.sku().tdp_w;
                table.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    exp.precision.to_string(),
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    xtdp(r.metrics.avg_power_w, tdp),
                    xtdp(r.metrics.peak_power_w, tdp),
                ]);
            }
            Err(_) => {
                table.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    exp.precision.to_string(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 10: Numeric precision (FP32 vs FP16) on slowdowns and power (H100x4 FSDP)",
        &table,
    );
}
