//! Regenerates Fig. 4: computation slowdowns across GPUs, models, batch
//! sizes, and parallelization strategies.

use olab_bench::emit;
use olab_core::report::{pct, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut table = Table::new([
        "GPU",
        "Strategy",
        "Model",
        "Batch",
        "Overlap ratio",
        "Compute slowdown",
    ]);
    let grid = registry::main_grid();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        let (ratio, slowdown) = match cell {
            Ok(r) => (
                pct(r.metrics.overlap_ratio),
                pct(r.metrics.compute_slowdown),
            ),
            Err(e) => {
                let reason = match e {
                    olab_core::CellError::OutOfMemory { .. } => "OOM".to_string(),
                    other => format!("{other}"),
                };
                (reason.clone(), reason)
            }
        };
        table.row([
            format!("{}", exp.sku),
            format!("{}", exp.strategy),
            exp.model.config().name.to_string(),
            exp.batch.to_string(),
            ratio,
            slowdown,
        ]);
    }
    emit("Fig. 4: Computation slowdowns across GPUs", &table);
}
