//! Regenerates Fig. 5: end-to-end training iteration latency under ideal,
//! overlapped, and sequential execution.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut table = Table::new([
        "GPU",
        "Strategy",
        "Model",
        "Batch",
        "E2E ideal (Eq. 4)",
        "E2E overlapped",
        "E2E sequential",
        "Overlap vs ideal",
        "Seq vs overlap",
    ]);
    let grid = registry::main_grid();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                table.row([
                    format!("{}", exp.sku),
                    format!("{}", exp.strategy),
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    ms(r.metrics.e2e_ideal_s),
                    ms(r.metrics.e2e_overlapped_s),
                    ms(r.metrics.e2e_sequential_measured_s),
                    pct(r.metrics.overlap_vs_ideal()),
                    pct(r.metrics.sequential_vs_overlapped()),
                ]);
            }
            Err(_) => {
                table.row([
                    format!("{}", exp.sku),
                    format!("{}", exp.strategy),
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 5: End-to-end training iteration latency across GPUs",
        &table,
    );
}
