//! Ablation: distribution strategy (FSDP vs pipeline vs tensor
//! parallelism) through the overlap lens.
//!
//! Extends the paper's FSDP-vs-PP comparison (takeaway 1) with Megatron
//! tensor parallelism: TP moves *activations* (4 all-reduces per layer),
//! whose forward halves sit on the critical path — the gap the Domino
//! citation targets.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{sweep, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() {
    let mut table = Table::new([
        "GPU",
        "Strategy",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "E2E sequential",
        "Comm total/GPU",
    ]);
    let mut grid = Vec::new();
    for sku in [SkuKind::H100, SkuKind::Mi250] {
        let strategies = [
            Strategy::Fsdp,
            Strategy::Pipeline { microbatch_size: 8 },
            Strategy::TensorParallel,
        ];
        for strategy in strategies {
            // Keep per-iteration samples comparable: FSDP batch is
            // per-rank (8x4=32 samples), PP/TP batches are global (32).
            let batch = match strategy {
                Strategy::Fsdp => 8,
                _ => 32,
            };
            grid.push(Experiment::new(
                sku,
                4,
                ModelPreset::Gpt3_2_7B,
                strategy,
                batch,
            ));
        }
    }
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                table.row([
                    exp.sku.to_string(),
                    exp.strategy.to_string(),
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    ms(r.metrics.e2e_sequential_measured_s),
                    ms(r.comm_s / 4.0),
                ]);
            }
            Err(e) => {
                table.row([
                    exp.sku.to_string(),
                    exp.strategy.to_string(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Ablation: distribution strategy (GPT-3 2.7B, 32 samples/iter, 4 GPUs)",
        &table,
    );
}
