//! Chaos soak harness for the sweep engine: proves the hardening story
//! end to end by running a large grid under deterministic fault injection
//! and asserting the chaotic run is **bit-identical** to a clean one.
//!
//! Phases:
//!
//! * **clean** — the reference: every cell computed serially, no chaos,
//!   dumped byte-for-byte to `soak-clean.dump`;
//! * **pool chaos** — injected worker panics and slow cells against a
//!   per-cell deadline and retry budget; the run must heal (retries > 0,
//!   timeouts > 0, zero failed cells) and dump identically to the clean
//!   reference (`soak-chaos.dump`, compared with `cmp` in CI);
//! * **cache chaos** — torn writes and leaked tmp files against a disk
//!   cache; a clean reopen must quarantine every torn entry, reap stale
//!   tmps from a provably dead writer, and still serve only correct
//!   values;
//! * **ENOSPC** — every disk write fails; the cache must latch into
//!   memory-only degradation and the sweep must still finish correctly;
//! * **eviction** — a byte-capped cache filled serially and in parallel
//!   must evict to the identical set of surviving entries.
//!
//! Writes a single snapshot (override the path with `--out <path>`) and
//! prints the same JSON to stdout; `--smoke` shrinks the grid for CI (the
//! full run soaks >= 1000 cells). The soak runs with the `olab-metrics`
//! registry enabled and reports its per-cell execution-latency quantiles
//! straight from the `olab_grid_cell_exec_ns` histogram; each snapshot is
//! stamped with the commit and mode so the `trend` binary can append it
//! to the `BENCH_soak.json` trajectory.

use olab_core::fmtutil::validate_json;
use olab_grid::{
    fnv1a_64, CacheValue, CellFailure, ChaosPlan, Executor, GridJob, GuardConfig, Reader, Writer,
};
use std::path::{Path, PathBuf};

/// One synthetic sweep cell: a cheap, pure, deterministic function of its
/// id, with a payload whose size varies by cell so eviction and torn
/// writes see realistic byte diversity.
#[derive(Debug, Clone)]
struct SoakCell {
    id: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct SoakValue {
    id: u64,
    digest: u64,
    series: Vec<f64>,
}

impl CacheValue for SoakValue {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.digest);
        w.put_u64(self.series.len() as u64);
        for v in &self.series {
            w.put_f64(*v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let id = r.get_u64()?;
        let digest = r.get_u64()?;
        let n = r.get_u64()? as usize;
        let mut series = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            series.push(r.get_f64()?);
        }
        Some(SoakValue { id, digest, series })
    }
}

impl GridJob for SoakCell {
    type Output = SoakValue;

    fn descriptor(&self) -> String {
        format!("grid-soak cell {:05}", self.id)
    }

    fn execute(&self) -> SoakValue {
        let n = 8 + (self.id % 23) as usize;
        let mut series = Vec::with_capacity(n);
        let mut x = fnv1a_64(&self.id.to_le_bytes());
        let mut digest = x;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64;
            digest = fnv1a_64(&[digest.to_le_bytes(), v.to_bits().to_le_bytes()].concat());
            series.push(v);
        }
        SoakValue {
            id: self.id,
            digest,
            series,
        }
    }
}

/// Serializes a full outcome vector into one deterministic byte blob so
/// two runs can be compared with a single `==` (or `cmp` on the dumps).
fn dump(outputs: &[Result<SoakValue, CellFailure>]) -> Vec<u8> {
    let mut w = Writer::new();
    for (i, slot) in outputs.iter().enumerate() {
        w.put_u64(i as u64);
        match slot {
            Ok(v) => {
                w.put_u8(1);
                v.encode(&mut w);
            }
            Err(e) => {
                w.put_u8(0);
                w.put_str(&e.to_string());
            }
        }
    }
    w.into_bytes()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("olab-grid-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sorted `(file name, size)` listing of a cache directory — the shape
/// the eviction-determinism assertion compares.
fn disk_listing(dir: &Path) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> = std::fs::read_dir(dir)
        .expect("cache dir readable")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".cell"))
        .map(|e| {
            let bytes = e.metadata().map(|m| m.len()).unwrap_or(0);
            (e.file_name().to_string_lossy().into_owned(), bytes)
        })
        .collect();
    entries.sort();
    entries
}

/// Injected chaos panics are expected by the thousand; keep them off
/// stderr while forwarding every real panic to the previous hook.
fn silence_chaos_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.starts_with("chaos:")) {
            return;
        }
        prev(info);
    }));
}

#[cfg(target_os = "linux")]
fn find_dead_pid() -> Option<u32> {
    (400_000..500_000).find(|p| !Path::new("/proc").join(p.to_string()).exists())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_soak.json".to_string());

    silence_chaos_panics();

    // Soak with self-telemetry on: every computed cell lands in the
    // `olab_grid_cell_exec_ns` histogram the report reads at the end.
    olab_metrics::set_enabled(true);
    olab_grid::metrics::touch();

    let n_cells: u64 = if smoke { 400 } else { 1200 };
    let cells: Vec<SoakCell> = (0..n_cells).map(|id| SoakCell { id }).collect();

    // Phase 1 — clean serial reference.
    let clean_run = Executor::new().with_jobs(1).run(&cells);
    assert!(
        clean_run.outputs.iter().all(|o| o.is_ok()),
        "the clean run must not fail any cell"
    );
    let clean_dump = dump(&clean_run.outputs);
    std::fs::write("soak-clean.dump", &clean_dump).expect("write clean dump");

    // Phase 2 — pool chaos: panics healed by retries, slow cells caught
    // by the deadline and healed by a fast retry.
    let guard = GuardConfig {
        cell_timeout_s: Some(0.05),
        retries: 6,
        backoff_base_s: 0.001,
        backoff_cap_s: 0.01,
    };
    let pool_plan = ChaosPlan {
        seed: 20250807,
        panic_permille: 100,
        slow_cell_permille: 60,
        slow_cell_ms: 120,
        ..ChaosPlan::default()
    };
    let chaos_run = Executor::new()
        .with_jobs(4)
        .with_guard(guard)
        .with_chaos(pool_plan)
        .run(&cells);
    let chaos_dump = dump(&chaos_run.outputs);
    std::fs::write("soak-chaos.dump", &chaos_dump).expect("write chaos dump");
    assert_eq!(
        chaos_dump, clean_dump,
        "a chaotic run must be bit-identical to the clean reference"
    );
    assert!(
        chaos_run.stats.retries > 0,
        "chaos must have forced retries"
    );
    assert!(
        chaos_run.stats.timeouts > 0,
        "slow cells must have tripped the deadline"
    );
    assert_eq!(chaos_run.stats.panicked, 0, "every cell must have healed");

    // Phase 3 — cache chaos: torn writes and leaked tmps on disk, then a
    // clean reopen that must quarantine, reap, and recompute.
    let dir_cache = temp_dir("cache");
    let cache_plan = ChaosPlan {
        seed: 11,
        torn_write_permille: 150,
        rename_fail_permille: 100,
        ..ChaosPlan::default()
    };
    let torn_writer = Executor::new()
        .with_jobs(4)
        .with_chaos(cache_plan)
        .with_disk_cache(&dir_cache)
        .expect("cache dir creatable");
    let torn_run = torn_writer.run(&cells);
    assert_eq!(
        dump(&torn_run.outputs),
        clean_dump,
        "cache faults must never leak into returned values"
    );
    drop(torn_writer);

    let leaked: Vec<PathBuf> = std::fs::read_dir(&dir_cache)
        .expect("cache dir readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        !leaked.is_empty(),
        "rename-fail chaos must have leaked tmp files"
    );
    #[cfg(target_os = "linux")]
    let expect_reap = if let Some(dead) = find_dead_pid() {
        // Re-attribute one leaked tmp to a provably dead writer; the next
        // open must reap it (live-pid tmps stay untouched).
        let dead_name = dir_cache.join(format!("{:016x}.{dead}.1.0.tmp", u64::MAX));
        std::fs::rename(&leaked[0], &dead_name).expect("rename leaked tmp");
        true
    } else {
        false
    };
    #[cfg(not(target_os = "linux"))]
    let expect_reap = false;

    let reader = Executor::<SoakValue>::new()
        .with_jobs(4)
        .with_disk_cache(&dir_cache)
        .expect("cache dir reopenable");
    if expect_reap {
        assert!(
            reader.cache().counters().tmp_reaped >= 1,
            "the dead writer's tmp must be reaped at open"
        );
    }
    let reread_run = reader.run(&cells);
    assert_eq!(
        dump(&reread_run.outputs),
        clean_dump,
        "no torn entry may ever be served"
    );
    assert!(
        reread_run.stats.quarantined > 0,
        "torn-write chaos must have produced quarantined entries"
    );
    let quarantined = reread_run.stats.quarantined;
    let tmp_reaped = reader.cache().counters().tmp_reaped;
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir_cache);

    // Phase 4 — ENOSPC on every write: one strike latches memory-only
    // degradation; results are unaffected.
    let dir_full = temp_dir("enospc");
    let full_disk = Executor::new()
        .with_jobs(4)
        .with_chaos(ChaosPlan {
            seed: 5,
            enospc_permille: 1000,
            ..ChaosPlan::default()
        })
        .with_disk_cache(&dir_full)
        .expect("cache dir creatable");
    let degraded_run = full_disk.run(&cells);
    assert_eq!(
        dump(&degraded_run.outputs),
        clean_dump,
        "degradation must not change results"
    );
    assert!(
        degraded_run.stats.degraded,
        "a full disk must latch degradation"
    );
    let health = full_disk.cache().health();
    assert!(health.degraded && health.degraded_reason.is_some());
    drop(full_disk);
    let _ = std::fs::remove_dir_all(&dir_full);

    // Phase 5 — deterministic eviction: serial and parallel fills of a
    // byte-capped cache must leave the identical surviving set.
    let cap_bytes: u64 = 20_000;
    let dir_serial = temp_dir("evict-serial");
    let dir_parallel = temp_dir("evict-parallel");
    let serial = Executor::<SoakValue>::new()
        .with_jobs(1)
        .with_disk_cache(&dir_serial)
        .expect("cache dir creatable")
        .with_cache_cap(cap_bytes);
    let serial_run = serial.run(&cells);
    let parallel = Executor::<SoakValue>::new()
        .with_jobs(4)
        .with_disk_cache(&dir_parallel)
        .expect("cache dir creatable")
        .with_cache_cap(cap_bytes);
    let parallel_run = parallel.run(&cells);
    assert!(
        serial_run.stats.evicted > 0,
        "the cap must be small enough to force eviction"
    );
    assert_eq!(
        serial_run.stats.evicted, parallel_run.stats.evicted,
        "eviction counts must not depend on worker count"
    );
    let surviving = disk_listing(&dir_serial);
    assert_eq!(
        surviving,
        disk_listing(&dir_parallel),
        "the surviving entry set must be byte-identical across schedules"
    );
    let survivor_bytes: u64 = surviving.iter().map(|(_, b)| b).sum();
    assert!(
        survivor_bytes <= cap_bytes,
        "survivors ({survivor_bytes} B) must respect the cap ({cap_bytes} B)"
    );
    let evicted = serial_run.stats.evicted;
    drop(serial);
    drop(parallel);
    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_parallel);

    // Cell-latency quantiles across every computed cell of every phase,
    // straight from the registry histogram the executor feeds.
    let exec = olab_metrics::histogram(
        "olab_grid_cell_exec_ns",
        "Wall-clock of each computed (non-cached) cell execution.",
    )
    .snapshot();
    let mode = if smoke { "smoke" } else { "full" };
    let commit = olab_bench::trend::current_commit();

    let json = format!(
        "{{\n  \"bench\": \"grid_soak\",\n  \"commit\": \"{}\",\n  \"mode\": \"{}\",\n  \"cells\": {},\n  \"chaos_identical\": true,\n  \"cell_exec_ns\": {{\n    \"count\": {},\n    \"p50\": {},\n    \"p99\": {},\n    \"max\": {}\n  }},\n  \"pool_chaos\": {{\n    \"retries\": {},\n    \"timeouts\": {},\n    \"failed_cells\": {}\n  }},\n  \"cache_chaos\": {{\n    \"quarantined\": {},\n    \"tmp_reaped\": {},\n    \"leaked_tmps\": {}\n  }},\n  \"degradation\": {{\n    \"latched\": {}\n  }},\n  \"eviction\": {{\n    \"cap_bytes\": {},\n    \"evicted\": {},\n    \"surviving_entries\": {},\n    \"surviving_bytes\": {},\n    \"deterministic\": true\n  }}\n}}\n",
        olab_core::fmtutil::json_escape(&commit),
        mode,
        n_cells,
        exec.count,
        exec.p50(),
        exec.p99(),
        exec.max,
        chaos_run.stats.retries,
        chaos_run.stats.timeouts,
        chaos_run.stats.panicked,
        quarantined,
        tmp_reaped,
        leaked.len(),
        degraded_run.stats.degraded,
        cap_bytes,
        evicted,
        surviving.len(),
        survivor_bytes,
    );
    validate_json(&json).expect("benchmark JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    print!("{json}");
    eprintln!(
        "grid_soak: {n_cells} cells, chaos run bit-identical to clean ({} retries, {} timeouts, \
         {} quarantined, {} evicted) -> {out_path}",
        chaos_run.stats.retries, chaos_run.stats.timeouts, quarantined, evicted
    );
}
