//! Regenerates Fig. 11: the impact of tensor-core utilization (FP32 on the
//! vector path vs TF32 on tensor cores) on performance and power, 4×H100.

use olab_bench::emit;
use olab_core::report::{ms, pct, xtdp, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut table = Table::new([
        "Model",
        "Batch",
        "Datapath",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "Avg power",
        "Peak power",
    ]);
    let grid: Vec<_> = registry::fig11()
        .into_iter()
        .flat_map(|(vector, tensor)| [vector, tensor])
        .collect();
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        let path = format!("{} ({})", exp.datapath, exp.precision);
        match cell {
            Ok(r) => {
                let tdp = exp.sku.sku().tdp_w;
                table.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    path,
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    xtdp(r.metrics.avg_power_w, tdp),
                    xtdp(r.metrics.peak_power_w, tdp),
                ]);
            }
            Err(_) => {
                table.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    path,
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 11: Tensor-core utilization (FP32 vector vs TF32 tensor) on H100x4 FSDP",
        &table,
    );
}
