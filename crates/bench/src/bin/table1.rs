//! Regenerates Table I: the GPU inventory.

fn main() {
    println!("## Table I: List of GPUs evaluated\n");
    print!("{}", olab_gpu::table1_markdown());
}
