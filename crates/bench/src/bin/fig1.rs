//! Regenerates Fig. 1: amount of overlapping computation/communication
//! across model sizes and batch sizes.
//!
//! (a) FSDP on an 8×H100 node across all workloads;
//! (b) pipeline parallelism on a 4×A100 node with GPT-3 2.7B.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{registry, sweep};

fn main() {
    let mut a = Table::new([
        "Model",
        "Batch",
        "Overlap ratio (Eq. 2)",
        "Overlapped compute time",
        "Total comm time",
        "Comm hidden",
    ]);
    let grid_a = registry::fig1a();
    let outcome_a = sweep::run_cells(&grid_a);
    for (exp, cell) in grid_a.iter().zip(&outcome_a.cells) {
        match cell {
            Ok(r) => {
                let comm = r.comm_s;
                a.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    pct(r.metrics.overlap_ratio),
                    ms(r.overlapped_compute_s / exp.n_gpus as f64),
                    ms(comm / exp.n_gpus as f64),
                    pct(if comm > 0.0 {
                        r.hidden_comm_s / comm
                    } else {
                        0.0
                    }),
                ]);
            }
            Err(_) => {
                a.row([
                    exp.model.config().name.to_string(),
                    exp.batch.to_string(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                ]);
            }
        }
    }
    emit("Fig. 1(a): overlap vs model/batch — FSDP on H100x8", &a);

    let mut b = Table::new([
        "Batch",
        "Microbatches",
        "Overlap ratio (Eq. 2)",
        "Overlapped compute time",
        "Total comm time",
        "Comm hidden",
    ]);
    let grid_b = registry::fig1b();
    let outcome_b = sweep::run_cells(&grid_b);
    for (exp, cell) in grid_b.iter().zip(&outcome_b.cells) {
        match cell {
            Ok(r) => {
                let comm = r.comm_s;
                b.row([
                    exp.batch.to_string(),
                    (exp.batch / registry::PP_MICROBATCH).to_string(),
                    pct(r.metrics.overlap_ratio),
                    ms(r.overlapped_compute_s / exp.n_gpus as f64),
                    ms(comm / exp.n_gpus as f64),
                    pct(if comm > 0.0 {
                        r.hidden_comm_s / comm
                    } else {
                        0.0
                    }),
                ]);
            }
            Err(e) => {
                b.row([
                    exp.batch.to_string(),
                    "-".into(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Fig. 1(b): overlap vs batch — pipeline parallelism, GPT-3 2.7B on A100x4",
        &b,
    );
}
