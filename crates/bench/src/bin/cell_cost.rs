//! Per-cell cost microbenchmark: the perf trajectory behind the hot-path
//! work. Measures the median wall-clock of executing one representative
//! grid-cell schedule several ways —
//!
//! * `event_loop_cold_arena` — the engine with a fresh [`SimArena`] every
//!   run (the pre-arena allocation behavior);
//! * `event_loop_warm_arena` — the engine reusing one arena (the shipping
//!   configuration of [`olab_core::execute_event_loop`]);
//! * `event_loop_full_stats` — the engine plus the full per-GPU statistics
//!   derivation ([`olab_core::execute_event_loop`]);
//! * `event_loop_lean` — the engine plus the scalar-only reduction
//!   ([`olab_core::LeanRun::summarize`]): the cheapest the event loop can
//!   deliver metrics, since it must run every epoch before any statistic
//!   exists;
//! * `fast_path_full` — [`olab_core::execute`] routed through the
//!   contention-free analytic closed form, materializing the same full
//!   [`RunResult`](olab_core::RunResult);
//! * `fast_path_lean` — [`olab_core::execute_lean`] served analytically:
//!   scalar metrics straight from the closed form, no trace at all.
//!
//! The headline `fast_path_speedup` compares like for like at the metrics
//! level — `event_loop_lean / fast_path_lean` — which is how sweeps consume
//! cells; `fast_path_full_speedup` is the full-result comparison.
//!
//! Writes a single snapshot (override the path with `--out <path>`) and
//! prints the same JSON to stdout; `--smoke` shrinks the cell and
//! iteration count for CI. Each snapshot is stamped with the commit and
//! mode so the `trend` binary can append it to the `BENCH_cell.json`
//! trajectory and gate future runs against it. The differential suite in
//! `olab-oracle` pins that all paths produce the same answers; this
//! binary pins what they cost.

use olab_core::fmtutil::{json_escape, validate_json};
use olab_core::{
    execute, execute_event_loop, execute_lean, fastpath, Experiment, LeanRun, Strategy,
};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;
use olab_parallel::ExecutionMode;
use olab_sim::{Engine, SimArena};
use std::time::Instant;

fn median_ns(samples: &[u128]) -> u128 {
    quantile_ns(samples, 0.5)
}

fn p99_ns(samples: &[u128]) -> u128 {
    quantile_ns(samples, 0.99)
}

fn quantile_ns(samples: &[u128], q: f64) -> u128 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cell.json".to_string());

    let seq = if smoke { 64 } else { 128 };
    let iters = if smoke { 10 } else { 40 };
    let exp =
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(seq);
    let policy = exp.validate().expect("benchmark cell fits in memory");
    let machine = exp.machine();
    // The sequential schedule on the stock (contended) machine: fast-path
    // eligible — no co-resident compute/comm pair — yet priced through the
    // full contention model, so both paths do representative work.
    let workload = exp
        .timeline(ExecutionMode::Sequential, policy)
        .expect("timeline builds");

    // Engine-level arena comparison (trace production only, no stats).
    let mut engine = Engine::new(machine.clone());
    let mut warm_arena = SimArena::new();
    engine
        .run_in(&workload, &mut warm_arena)
        .expect("workload runs");
    let mut cold = Vec::with_capacity(iters);
    let mut warm = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        engine
            .run_in(&workload, &mut SimArena::new())
            .expect("workload runs");
        cold.push(t.elapsed().as_nanos());

        let t = Instant::now();
        engine
            .run_in(&workload, &mut warm_arena)
            .expect("workload runs");
        warm.push(t.elapsed().as_nanos());
    }

    // Executor-level path comparison: full results and lean (scalar-only)
    // results, through the fast path and through the event loop.
    fastpath::set_enabled(true);
    execute(&workload, &machine).expect("workload runs");
    execute_lean(&workload, &machine).expect("workload runs");
    let fast_before = fastpath::fast_runs();
    let mut fast_full = Vec::with_capacity(iters);
    let mut fast_lean = Vec::with_capacity(iters);
    let mut loop_full = Vec::with_capacity(iters);
    let mut loop_lean = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        execute(&workload, &machine).expect("workload runs");
        fast_full.push(t.elapsed().as_nanos());

        let t = Instant::now();
        execute_lean(&workload, &machine).expect("workload runs");
        fast_lean.push(t.elapsed().as_nanos());

        let t = Instant::now();
        execute_event_loop(&workload, &machine).expect("workload runs");
        loop_full.push(t.elapsed().as_nanos());

        let t = Instant::now();
        let full = execute_event_loop(&workload, &machine).expect("workload runs");
        let lean = LeanRun::summarize(&full);
        loop_lean.push(t.elapsed().as_nanos());
        assert!(lean.e2e_s > 0.0);
    }
    assert_eq!(
        fastpath::fast_runs() - fast_before,
        2 * iters as u64,
        "the benchmark cell must be fast-path eligible on both fast runs"
    );

    let cold_ns = median_ns(&cold);
    let warm_ns = median_ns(&warm);
    let fast_full_ns = median_ns(&fast_full);
    let fast_lean_ns = median_ns(&fast_lean);
    let loop_full_ns = median_ns(&loop_full);
    let loop_lean_ns = median_ns(&loop_lean);
    let speedup = loop_lean_ns as f64 / fast_lean_ns as f64;
    let full_speedup = loop_full_ns as f64 / fast_full_ns as f64;
    let arena_savings = 1.0 - warm_ns as f64 / cold_ns as f64;
    let mode = if smoke { "smoke" } else { "full" };
    let commit = olab_bench::trend::current_commit();

    let json = format!(
        "{{\n  \"bench\": \"cell_cost\",\n  \"commit\": \"{}\",\n  \"mode\": \"{}\",\n  \"cell\": \"{}\",\n  \"tasks\": {},\n  \"iters\": {},\n  \"median_ns\": {{\n    \"event_loop_cold_arena\": {},\n    \"event_loop_warm_arena\": {},\n    \"event_loop_full_stats\": {},\n    \"event_loop_lean\": {},\n    \"fast_path_full\": {},\n    \"fast_path_lean\": {}\n  }},\n  \"p99_ns\": {{\n    \"event_loop_cold_arena\": {},\n    \"event_loop_warm_arena\": {},\n    \"event_loop_full_stats\": {},\n    \"event_loop_lean\": {},\n    \"fast_path_full\": {},\n    \"fast_path_lean\": {}\n  }},\n  \"fast_path_speedup\": {:.2},\n  \"fast_path_full_speedup\": {:.2},\n  \"warm_arena_savings_frac\": {:.4}\n}}\n",
        json_escape(&commit),
        mode,
        json_escape(&exp.label()),
        workload.len(),
        iters,
        cold_ns,
        warm_ns,
        loop_full_ns,
        loop_lean_ns,
        fast_full_ns,
        fast_lean_ns,
        p99_ns(&cold),
        p99_ns(&warm),
        p99_ns(&loop_full),
        p99_ns(&loop_lean),
        p99_ns(&fast_full),
        p99_ns(&fast_lean),
        speedup,
        full_speedup,
        arena_savings,
    );
    validate_json(&json).expect("benchmark JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    print!("{json}");
    eprintln!(
        "cell_cost: lean fast path {speedup:.1}x, full fast path {full_speedup:.1}x vs event loop ({} tasks, {} iters) -> {out_path}",
        workload.len(),
        iters
    );
}
