//! Ablation: adaptive overlap scheduling (the paper's proposed mitigation,
//! implemented).
//!
//! For each SKU and objective, the scheduler evaluates all four FSDP
//! selective-overlap policies and reports the winner. The headline result:
//! always-overlap wins latency everywhere, but on the heavily-contended
//! MI250 a serialized policy wins energy — balancing "performance and
//! resources such as energy efficiency", as the paper's conclusion asks.

use olab_bench::emit;
use olab_core::adaptive::{tune_fsdp, Objective};
use olab_core::report::{pct, Table};
use olab_core::{Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() {
    let mut table = Table::new([
        "GPU",
        "Objective",
        "Best policy",
        "Gain vs always-overlap",
        "E2E",
        "Energy",
    ]);
    for sku in SkuKind::ALL {
        let exp = Experiment::new(sku, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8);
        for objective in Objective::ALL {
            match tune_fsdp(&exp, objective) {
                Ok(choice) => {
                    let best = choice.best();
                    table.row([
                        sku.to_string(),
                        objective.to_string(),
                        best.policy.to_string(),
                        pct(choice.gain_over_default()),
                        format!("{:.1} ms", best.report.metrics.e2e_overlapped_s * 1e3),
                        format!("{:.0} J", best.report.metrics.energy_j),
                    ]);
                }
                Err(e) => {
                    table.row([
                        sku.to_string(),
                        objective.to_string(),
                        format!("{e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    emit(
        "Ablation: adaptive overlap scheduling (GPT-3 2.7B FSDP b8, 4 GPUs)",
        &table,
    );
}
