//! Prints the roofline machine-balance analysis for every SKU: where each
//! part's memory-bound/compute-bound crossover sits per datapath, and why
//! large-model GEMMs (intensity ~1000 FLOP/byte in FP16) are compute-bound
//! everywhere while the elementwise/optimizer kernels never leave the
//! bandwidth wall.

use olab_bench::emit;
use olab_core::report::Table;
use olab_gpu::{roofline, Datapath, GpuSku, KernelKind, Precision};

fn main() {
    let mut table = Table::new([
        "GPU",
        "Balance FP16/tensor (FLOP/B)",
        "Balance FP32/vector (FLOP/B)",
        "GEMM 8Ki intensity",
        "Adam intensity",
        "GEMM bound",
        "Adam bound",
    ]);
    let gemm = KernelKind::gemm(8192, 8192, 8192);
    let adam = KernelKind::AdamStep { params: 1 << 28 };
    for sku in GpuSku::all() {
        let bal16 = roofline::machine_balance(&sku, Precision::Fp16, Datapath::TensorCore);
        let bal32 = roofline::machine_balance(&sku, Precision::Fp32, Datapath::Vector);
        let gi = gemm.intensity(Precision::Fp16);
        let ai = adam.intensity(Precision::Fp16);
        table.row([
            sku.name.to_string(),
            format!("{bal16:.0}"),
            format!("{bal32:.1}"),
            format!("{gi:.0}"),
            format!("{ai:.2}"),
            if gi > bal16 { "compute" } else { "memory" }.to_string(),
            if ai > bal32 { "compute" } else { "memory" }.to_string(),
        ]);
    }
    emit("Roofline machine balance per SKU", &table);
}
