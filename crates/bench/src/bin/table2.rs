//! Regenerates Table II: the evaluated workloads.

fn main() {
    println!("## Table II: Workloads evaluated\n");
    print!("{}", olab_models::table2_markdown());
}
