//! Regenerates Fig. 8: power and performance of an N×N matrix
//! multiplication executed concurrently with a 1 GB all-reduce, across all
//! four SKUs.

use olab_bench::emit;
use olab_core::microbench;
use olab_core::report::{pct, xtdp, Table};
use olab_gpu::SkuKind;

fn main() {
    let mut table = Table::new([
        "GPU",
        "N",
        "GEMM slowdown",
        "Avg power (no ovl)",
        "Peak power (no ovl)",
        "Avg power (ovl)",
        "Peak power (ovl)",
    ]);
    for sku in SkuKind::ALL {
        let tdp = sku.sku().tdp_w;
        let points = match microbench::fig8_sweep(sku, 4) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{sku}: {e}");
                continue;
            }
        };
        for p in points {
            table.row([
                sku.to_string(),
                p.n.to_string(),
                pct(p.slowdown()),
                xtdp(p.avg_power_isolated_w, tdp),
                xtdp(p.peak_power_isolated_w, tdp),
                xtdp(p.avg_power_overlapped_w, tdp),
                xtdp(p.peak_power_overlapped_w, tdp),
            ]);
        }
    }
    emit(
        "Fig. 8: NxN GEMM concurrent with a 1 GB all-reduce (microbenchmark)",
        &table,
    );
}
