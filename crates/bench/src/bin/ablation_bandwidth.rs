//! Ablation: interconnect bandwidth sensitivity.
//!
//! Sweeps the per-GPU link bandwidth of an H100-class node (0.25x to 2x
//! NVLink4) and re-runs a Fig. 4 cell, showing how fabric speed moves the
//! overlap ratio and the contention slowdown — the lever distinguishing
//! the NVIDIA and AMD columns of the paper's figures.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{execute, Machine, MachineConfig, OverlapMetrics};
use olab_gpu::{Datapath, DvfsGovernor, GpuSku, Precision};
use olab_models::{memory::ActivationPolicy, ModelPreset};
use olab_net::Topology;
use olab_parallel::{fsdp, ExecutionMode};

fn main() {
    let mut table = Table::new([
        "Link bw (GB/s/dir)",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "E2E sequential",
    ]);
    let base = GpuSku::h100();
    for factor in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let mut sku = base.clone();
        sku.link_bw_unidir_gbs = base.link_bw_unidir_gbs * factor;
        let topology = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);
        let machine = Machine::new(MachineConfig {
            governor: DvfsGovernor::stock(sku.tdp_w),
            sku: sku.clone(),
            topology: topology.clone(),
            contended: true,
            jitter: None,
        });
        let plan = fsdp::FsdpPlan {
            model: ModelPreset::Gpt3_2_7B.config(),
            ranks: 4,
            batch_per_rank: 8,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            grad_accum_steps: 1,
            overlap: Default::default(),
        };
        let ovl = execute(
            &fsdp::fsdp_timeline(&plan, &sku, &topology, ExecutionMode::Overlapped),
            &machine,
        )
        .expect("overlapped runs");
        let seq = execute(
            &fsdp::fsdp_timeline(&plan, &sku, &topology, ExecutionMode::Sequential),
            &machine,
        )
        .expect("sequential runs");
        let m = OverlapMetrics::derive(&ovl, &seq);
        table.row([
            format!("{:.0}", sku.link_bw_unidir_gbs),
            pct(m.overlap_ratio),
            pct(m.compute_slowdown),
            ms(m.e2e_overlapped_s),
            ms(m.e2e_sequential_measured_s),
        ]);
    }
    emit(
        "Ablation: link bandwidth sweep (H100-class node, GPT-3 2.7B FSDP b8)",
        &table,
    );
}
