//! Ablation: telemetry sampling interval.
//!
//! Quantifies why the paper's Fig. 7 uses the MI250 (ROCm-SMI offers ~1 ms
//! sampling) rather than an NVIDIA part (NVML averages over ~100 ms): the
//! observable peak power shrinks as the sampling window grows, hiding the
//! overlap-induced spikes.

use olab_bench::emit;
use olab_core::registry;
use olab_core::report::Table;
use olab_power::Sampler;

fn main() {
    let report = registry::fig7().run().expect("fig7 experiment runs");
    let gpu0 = &report.overlapped.gpus[0];
    let tdp = report.tdp_w();
    let true_peak = gpu0.power.peak_instantaneous();

    let mut table = Table::new([
        "Sampler",
        "Interval",
        "Observed peak",
        "Observed avg",
        "Peak underreported by",
    ]);
    let samplers = [
        Sampler::with_interval("exact", 1e-6),
        Sampler::rocm_smi_fine(),
        Sampler::amd_smi(),
        Sampler::with_interval("50ms", 0.050),
        Sampler::nvml(),
    ];
    for sampler in samplers {
        let sampled = gpu0.power.sample(sampler);
        let peak = sampled.peak().unwrap_or(0.0);
        let avg = sampled.average().unwrap_or(0.0);
        table.row([
            sampler.name.to_string(),
            format!("{:.1} ms", sampler.interval_s * 1e3),
            format!("{:.0} W ({:.2}x TDP)", peak, peak / tdp),
            format!("{:.0} W ({:.2}x TDP)", avg, avg / tdp),
            format!("{:.1}%", (1.0 - peak / true_peak) * 100.0),
        ]);
    }
    emit(
        "Ablation: sampler interval vs observable power peaks (MI250, LLaMA-2 13B FSDP)",
        &table,
    );
}
