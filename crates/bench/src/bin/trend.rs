//! Perf-trajectory CLI over the `BENCH_*.json` files:
//!
//! ```text
//! trend append --into BENCH_cell.json --entry snapshot.json
//! trend check  --baseline BENCH_cell.json --candidate snapshot.json [--tolerance 3.0]
//! ```
//!
//! `append` migrates a v1 single-snapshot baseline to the v2 trajectory
//! envelope if needed and pushes the entry (newest last). `check` runs
//! the regression gate of [`olab_bench::trend::check`] and exits 1 on a
//! regression, so CI can call it directly after a `cell_cost --smoke`
//! run. Both subcommands print what they decided.

use olab_bench::trend::{self, Json, DEFAULT_TOLERANCE};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trend append --into FILE --entry FILE\n  \
         trend check --baseline FILE --candidate FILE [--tolerance {DEFAULT_TOLERANCE}]"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trend: {path}: {e}");
        std::process::exit(2);
    });
    trend::parse(&text).unwrap_or_else(|e| {
        eprintln!("trend: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("append") => {
            let (Some(into), Some(entry_path)) = (flag(&args, "--into"), flag(&args, "--entry"))
            else {
                usage()
            };
            // A missing baseline starts a fresh trajectory from the entry.
            let entry = load(&entry_path);
            let root = if std::path::Path::new(&into).exists() {
                trend::append(load(&into), entry)
            } else {
                Ok(trend::migrate(entry))
            }
            .unwrap_or_else(|e| {
                eprintln!("trend: {into}: {e}");
                std::process::exit(2);
            });
            let rendered = trend::render(&root);
            olab_core::fmtutil::validate_json(&rendered).expect("trajectory JSON is well-formed");
            std::fs::write(&into, rendered).unwrap_or_else(|e| {
                eprintln!("trend: {into}: {e}");
                std::process::exit(2);
            });
            let entries = match root.get("trajectory") {
                Some(Json::Arr(items)) => items.len(),
                _ => 0,
            };
            println!("trend: appended {entry_path} -> {into} ({entries} entries)");
        }
        Some("check") => {
            let (Some(baseline), Some(candidate)) =
                (flag(&args, "--baseline"), flag(&args, "--candidate"))
            else {
                usage()
            };
            let tolerance = match flag(&args, "--tolerance") {
                None => DEFAULT_TOLERANCE,
                Some(t) => t.parse().unwrap_or_else(|_| {
                    eprintln!("trend: --tolerance: cannot parse '{t}'");
                    std::process::exit(2);
                }),
            };
            match trend::check(&load(&baseline), &load(&candidate), tolerance) {
                Ok(report) => println!("trend: OK — {report}"),
                Err(regression) => {
                    eprintln!("trend: REGRESSION — {regression}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
