//! Ablation: sequence length.
//!
//! The paper fixes its sequence length; this sweep shows why it matters:
//! compute grows superlinearly with sequence (attention is quadratic) while
//! FSDP communication (parameters) is sequence-independent, so longer
//! sequences dilute the overlap region exactly like larger batches do.

use olab_bench::emit;
use olab_core::report::{ms, pct, Table};
use olab_core::{sweep, Experiment, Strategy};
use olab_gpu::SkuKind;
use olab_models::ModelPreset;

fn main() {
    let mut table = Table::new([
        "GPU",
        "Seq len",
        "Overlap ratio",
        "Compute slowdown",
        "E2E overlapped",
        "Act policy",
    ]);
    let mut grid = Vec::new();
    for sku in [SkuKind::H100, SkuKind::Mi250] {
        for seq in [256u64, 512, 1024, 2048] {
            grid.push(
                Experiment::new(sku, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8).with_seq(seq),
            );
        }
    }
    let outcome = sweep::run_cells(&grid);
    for (exp, cell) in grid.iter().zip(&outcome.cells) {
        match cell {
            Ok(r) => {
                table.row([
                    exp.sku.to_string(),
                    exp.seq.to_string(),
                    pct(r.metrics.overlap_ratio),
                    pct(r.metrics.compute_slowdown),
                    ms(r.metrics.e2e_overlapped_s),
                    format!("{:?}", r.activation_policy),
                ]);
            }
            Err(e) => {
                table.row([
                    exp.sku.to_string(),
                    exp.seq.to_string(),
                    format!("{e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    emit(
        "Ablation: sequence length (GPT-3 2.7B FSDP b8, 4 GPUs)",
        &table,
    );
}
