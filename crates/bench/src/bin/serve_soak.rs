//! Serving soak harness for `olab serve`: proves the daemon's robustness
//! story end to end against a live socket, with real concurrent clients.
//!
//! Phases:
//!
//! * **duplicate storm** — 8 concurrent clients request the same cold
//!   cell; exactly one execution may happen (`X-Olab-Outcome: executed`
//!   once, `coalesced` for everyone else) and every body must be
//!   byte-identical to the offline render ([`olab_serve::oneshot`]);
//! * **mixed load** — several client threads hammer a small set of cells;
//!   every response must match its offline reference byte-for-byte;
//! * **shed** — a one-worker, one-slot daemon under a long-running cell
//!   must turn concurrent arrivals away with `429` + an integral
//!   `Retry-After`;
//! * **deadline** — a heavy cell with `timeout_ms=1` must come back `504`
//!   with a typed error body, not hang;
//! * **client chaos** — deterministic slow-client stalls and mid-request
//!   connection resets (the `serve.*` chaos points); the daemon must
//!   survive and keep serving correct bytes;
//! * **degradation** — a read-only cache directory must latch the cache
//!   into memory-only degradation and flip `/readyz` to `503` while
//!   `/v1/cell` keeps serving;
//! * **drain** — `POST /v1/drain` stops admissions; the shutdown must
//!   strand zero workers.
//!
//! Writes a single snapshot (override the path with `--out <path>`) and
//! prints the same JSON to stdout; `--smoke` shrinks the client counts
//! for CI. Each snapshot is stamped with the commit and `"mode": "serve"`
//! so the `trend` binary can append it to the `BENCH_soak.json`
//! trajectory alongside the grid-soak entries.

use olab_core::fmtutil::validate_json;
use olab_grid::ChaosPlan;
use olab_serve::metrics::serve_metrics;
use olab_serve::{oneshot, start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// One raw HTTP/1.1 exchange: returns `(status, head, body)`. Status `0`
/// means the connection died before a response line arrived (expected
/// under `serve.conn_reset` chaos).
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let exchange = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        Ok(raw)
    };
    let raw = match exchange() {
        Ok(raw) => raw,
        Err(_) => return (0, String::new(), String::new()),
    };
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((raw, String::new()));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, head, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, "GET", path)
}

/// Case-sensitive single-header lookup in a response head.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines()
        .filter_map(|l| l.split_once(": "))
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.trim())
}

fn shutdown_clean(handle: ServerHandle, phase: &str) {
    let report = handle.shutdown();
    assert_eq!(
        report.stranded_workers, 0,
        "{phase}: drain must strand no worker"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("olab-serve-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let m = serve_metrics();

    // Phase 1 — duplicate storm: one execution, everyone else coalesced,
    // every body byte-identical to the offline render.
    let storm_query = "seq=192&batch=4";
    let offline = oneshot(storm_query).expect("offline render");
    let handle = start(ServeConfig {
        coalesce_hold_ms: 400,
        ..ServeConfig::default()
    })
    .expect("bind storm server");
    let addr = handle.addr();
    let executed_before = m.executed.get();
    let coalesced_before = m.coalesced.get();
    const STORM_CLIENTS: usize = 8;
    let mut outcomes: Vec<(u16, String, String)> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..STORM_CLIENTS)
            .map(|_| scope.spawn(move || get(addr, &format!("/v1/cell?{storm_query}"))))
            .collect();
        outcomes = workers.into_iter().map(|w| w.join().unwrap()).collect();
    });
    let mut storm_executed = 0;
    let mut storm_coalesced = 0;
    for (status, head, body) in &outcomes {
        assert_eq!(*status, 200, "storm client failed:\n{head}");
        assert_eq!(body, &offline, "served body diverged from offline render");
        match header(head, "X-Olab-Outcome") {
            Some("executed") => storm_executed += 1,
            Some("coalesced") => storm_coalesced += 1,
            other => panic!("missing outcome header: {other:?}"),
        }
    }
    assert_eq!(
        storm_executed, 1,
        "the storm must cost exactly one execution"
    );
    assert_eq!(
        storm_coalesced,
        STORM_CLIENTS - 1,
        "everyone else coalesces"
    );
    assert_eq!(m.executed.get() - executed_before, 1);
    assert!(m.coalesced.get() - coalesced_before >= (STORM_CLIENTS - 1) as u64);
    // Warm re-fetch: cached now, still the same bytes.
    let (status, _, body) = get(addr, &format!("/v1/cell?{storm_query}"));
    assert_eq!((status, body.as_str()), (200, offline.as_str()));

    // Phase 2 — mixed load: every response equals its offline reference.
    let mix_queries = ["seq=128&batch=2", "seq=160&batch=4", "seq=192&batch=8"];
    let references: Vec<String> = mix_queries
        .iter()
        .map(|q| oneshot(q).expect("offline render"))
        .collect();
    let mix_threads = if smoke { 2 } else { 4 };
    let mix_rounds = if smoke { 10 } else { 50 };
    std::thread::scope(|scope| {
        for t in 0..mix_threads {
            let references = &references;
            scope.spawn(move || {
                for r in 0..mix_rounds {
                    let pick = (t + r) % mix_queries.len();
                    let (status, head, body) =
                        get(addr, &format!("/v1/cell?{}", mix_queries[pick]));
                    assert_eq!(status, 200, "mixed-load request failed:\n{head}");
                    assert_eq!(body, references[pick], "mixed-load body diverged");
                }
            });
        }
    });
    let mix_requests = mix_threads * mix_rounds;
    shutdown_clean(handle, "storm");

    // Phase 3 — shed: a saturated one-worker daemon turns arrivals away
    // with 429 + Retry-After.
    let handle = start(ServeConfig {
        http_workers: 1,
        max_queue: 1,
        coalesce_hold_ms: 600,
        ..ServeConfig::default()
    })
    .expect("bind shed server");
    let addr = handle.addr();
    let shed_before = m.shed.get();
    let mut shed_seen = 0;
    let mut retry_after_s = 0u64;
    std::thread::scope(|scope| {
        let busy = scope.spawn(move || get(addr, "/v1/cell?seq=224&batch=4"));
        // Let the lone worker pop the busy cell and hold it.
        std::thread::sleep(Duration::from_millis(200));
        let probes: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || get(addr, "/healthz")))
            .collect();
        for probe in probes {
            let (status, head, _) = probe.join().unwrap();
            if status == 429 {
                shed_seen += 1;
                let after = header(&head, "Retry-After")
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("429 must carry an integral Retry-After");
                assert!(after >= 1, "Retry-After must be at least one second");
                retry_after_s = after;
            }
        }
        let (status, _, _) = busy.join().unwrap();
        assert_eq!(status, 200, "the busy cell itself must still complete");
    });
    assert!(shed_seen >= 1, "overload must shed at least one request");
    assert!(m.shed.get() - shed_before >= shed_seen as u64);
    shutdown_clean(handle, "shed");

    // Phase 4 — deadline propagation: a heavy cell under a 1 ms budget
    // comes back 504 with a typed body instead of hanging.
    let handle = start(ServeConfig::default()).expect("bind deadline server");
    let addr = handle.addr();
    let (status, _, body) = get(
        addr,
        "/v1/cell?model=gpt3-13b&gpus=8&seq=2048&batch=16&timeout_ms=1",
    );
    assert_eq!(status, 504, "a blown deadline must be a 504:\n{body}");
    assert!(body.contains("error_kind"), "{body}");
    shutdown_clean(handle, "deadline");

    // Phase 5 — client chaos: slow clients and mid-request resets, on a
    // fixed seed. The daemon must survive and keep serving exact bytes.
    let chaos_requests = if smoke { 30 } else { 120 };
    let handle = start(ServeConfig {
        chaos: Some(ChaosPlan {
            seed: 20250807,
            slow_client_permille: 300,
            slow_client_ms: 20,
            conn_reset_permille: 250,
            ..ChaosPlan::default()
        }),
        ..ServeConfig::default()
    })
    .expect("bind chaos server");
    let addr = handle.addr();
    let chaos_reference = &references[0];
    let mut chaos_dropped = 0;
    for _ in 0..chaos_requests {
        let (status, _, body) = get(addr, &format!("/v1/cell?{}", mix_queries[0]));
        match status {
            200 => assert_eq!(&body, chaos_reference, "chaos must not corrupt bytes"),
            0 => chaos_dropped += 1,
            other => panic!("unexpected status {other} under chaos"),
        }
    }
    assert!(chaos_dropped > 0, "conn-reset chaos must have fired");
    // Survival: the daemon still answers cleanly (chaos may still fire on
    // any given request, so allow a few attempts).
    let survived = (0..20).any(|_| get(addr, "/healthz").0 == 200);
    assert!(survived, "the daemon must survive client chaos");
    shutdown_clean(handle, "chaos");

    // Phase 6 — graceful degradation: ENOSPC on every cache write latches
    // memory-only mode; /readyz flips to 503 while cells keep serving.
    let degrade_ready_status = {
        let cache_dir = temp_dir("degrade");
        let handle = start(ServeConfig {
            cache_dir: Some(cache_dir.clone()),
            chaos: Some(ChaosPlan {
                seed: 5,
                enospc_permille: 1000,
                ..ChaosPlan::default()
            }),
            ..ServeConfig::default()
        })
        .expect("bind degrade server");
        let addr = handle.addr();
        let (ready_before, _, _) = get(addr, "/readyz");
        assert_eq!(ready_before, 200, "healthy daemon must be ready");
        let (status, _, _) = get(addr, "/v1/cell?seq=96&batch=2");
        assert_eq!(status, 200, "degradation must not fail the request");
        let (ready_after, _, _) = get(addr, "/readyz");
        assert_eq!(ready_after, 503, "a degraded cache must flip readiness");
        let (_, _, health) = get(addr, "/healthz");
        assert!(health.contains("degraded"), "{health}");
        shutdown_clean(handle, "degrade");
        let _ = std::fs::remove_dir_all(&cache_dir);
        ready_after
    };

    // Phase 7 — drain over HTTP: admissions stop, nobody is stranded.
    let handle = start(ServeConfig::default()).expect("bind drain server");
    let addr = handle.addr();
    let (status, _, _) = get(addr, "/v1/cell?seq=96&batch=2");
    assert_eq!(status, 200);
    let (status, _, body) = request(addr, "POST", "/v1/drain");
    assert_eq!(status, 200, "drain must be acknowledged");
    assert!(body.contains("\"draining\": true"), "{body}");
    // The daemon's blocking main loop observes the drain and exits; this
    // is exactly what `olab serve` runs.
    let report = handle.run_until_drained();
    assert_eq!(report.stranded_workers, 0, "drain must strand no worker");
    // Post-drain arrivals are turned away (503) or refused outright.
    let (status, _, _) = get(addr, "/healthz");
    assert!(status == 503 || status == 0, "post-drain status {status}");

    let latency = m.request_ns.snapshot();
    let mode = "serve";
    let run_kind = if smoke { "smoke" } else { "full" };
    let commit = olab_bench::trend::current_commit();

    let json = format!(
        "{{\n  \"bench\": \"serve_soak\",\n  \"commit\": \"{}\",\n  \"mode\": \"{}\",\n  \"run\": \"{}\",\n  \"storm\": {{\n    \"clients\": {},\n    \"executed\": {},\n    \"coalesced\": {},\n    \"byte_identical\": true\n  }},\n  \"mixed_load\": {{\n    \"requests\": {},\n    \"divergent\": 0\n  }},\n  \"shed\": {{\n    \"shed_responses\": {},\n    \"retry_after_s\": {}\n  }},\n  \"deadline\": {{\n    \"status\": 504\n  }},\n  \"client_chaos\": {{\n    \"requests\": {},\n    \"dropped\": {},\n    \"survived\": true\n  }},\n  \"degradation\": {{\n    \"ready_status\": {}\n  }},\n  \"drain\": {{\n    \"stranded_workers\": 0\n  }},\n  \"request_ns\": {{\n    \"count\": {},\n    \"p50\": {},\n    \"p99\": {},\n    \"max\": {}\n  }}\n}}\n",
        olab_core::fmtutil::json_escape(&commit),
        mode,
        run_kind,
        STORM_CLIENTS,
        storm_executed,
        storm_coalesced,
        mix_requests,
        shed_seen,
        retry_after_s,
        chaos_requests,
        chaos_dropped,
        degrade_ready_status,
        latency.count,
        latency.p50(),
        latency.p99(),
        latency.max,
    );
    validate_json(&json).expect("benchmark JSON is well-formed");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    print!("{json}");
    eprintln!(
        "serve_soak: storm {STORM_CLIENTS} clients -> 1 execution / {storm_coalesced} coalesced, \
         {shed_seen} shed (Retry-After {retry_after_s}s), {chaos_dropped}/{chaos_requests} \
         chaos drops survived, readyz {degrade_ready_status} when degraded -> {out_path}"
    );
}
