//! Ablation: collective channel count.
//!
//! Each NCCL/RCCL channel is a persistent kernel occupying SMs. More
//! channels move bytes faster but steal more compute — the direct knob
//! behind the paper's SM-contention mechanism. This study forces channel
//! counts on an H100 all-reduce overlapping a GEMM stream and reports both
//! sides of the trade.

use olab_bench::emit;
use olab_ccl::{lower, Algorithm, Collective};
use olab_core::report::{pct, Table};
use olab_core::{execute, Machine};
use olab_gpu::{Datapath, GpuSku, KernelKind, Precision};
use olab_parallel::{ComputeOp, Op};
use olab_sim::{GpuId, StreamKind, TaskSpec, Workload};

fn main() {
    let sku = GpuSku::h100();
    let machine = Machine::stock(sku.clone(), 4);
    let profile = sku.contention();
    let group: Vec<GpuId> = (0..4).map(GpuId).collect();
    let base = lower(
        &Collective::all_reduce(1 << 28, group.clone()),
        Algorithm::Ring,
        &sku,
        &machine.config().topology,
        Precision::Fp16,
    );

    let gemm = Op::Compute(ComputeOp::new(
        KernelKind::gemm(8192, 8192, 8192),
        Precision::Fp16,
        Datapath::TensorCore,
    ));

    let run = |channels: u32| {
        // Channels scale the achievable wire rate (up to the link) and the
        // SM footprint together.
        let mut op = base.clone();
        op.channels = channels;
        op.sm_fraction = profile.comm_sm_fraction(channels);
        let full_rate = op.wire_rate_bytes_per_sec;
        op.wire_rate_bytes_per_sec = full_rate * (f64::from(channels) / 16.0).min(1.0);

        let mut w = Workload::new(4);
        for g in 0..4u16 {
            for r in 0..4 {
                w.push(TaskSpec::compute(
                    format!("gemm.g{g}.r{r}"),
                    GpuId(g),
                    gemm.clone(),
                ));
            }
        }
        w.push(TaskSpec::new(
            "ar",
            group.clone(),
            StreamKind::Comm,
            Op::Comm(op),
        ));
        execute(&w, &machine).expect("ablation runs")
    };

    // GEMM-only baseline.
    let mut baseline = Workload::new(4);
    for g in 0..4u16 {
        for r in 0..4 {
            baseline.push(TaskSpec::compute(
                format!("gemm.g{g}.r{r}"),
                GpuId(g),
                gemm.clone(),
            ));
        }
    }
    let iso = execute(&baseline, &machine).expect("baseline runs");
    let iso_gemm = iso.gpus[0].compute_s;

    let mut table = Table::new([
        "Channels",
        "SM fraction",
        "All-reduce time",
        "GEMM slowdown",
        "E2E",
    ]);
    for channels in [1u32, 2, 4, 8, 16] {
        let r = run(channels);
        let ar = r
            .trace
            .records()
            .iter()
            .find(|t| t.label == "ar")
            .expect("all-reduce record");
        table.row([
            channels.to_string(),
            format!("{:.3}", profile.comm_sm_fraction(channels)),
            format!("{:.2} ms", ar.duration().as_secs() * 1e3),
            pct(r.gpus[0].compute_s / iso_gemm - 1.0),
            format!("{:.2} ms", r.e2e_s * 1e3),
        ]);
    }
    emit(
        "Ablation: channel count (H100, 256 MiB all-reduce under a GEMM stream)",
        &table,
    );
}
