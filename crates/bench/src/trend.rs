//! Perf-trajectory tooling behind the `trend` binary: a dependency-free
//! JSON value model, the v1 → v2 `BENCH_*.json` schema migration, and the
//! regression gate CI runs against the checked-in trajectory.
//!
//! # Schema
//!
//! v1 `BENCH_*.json` files were a single snapshot object. v2 keeps every
//! snapshot, newest last:
//!
//! ```json
//! {
//!   "bench": "cell_cost",
//!   "schema_version": 2,
//!   "trajectory": [ { "commit": "...", "mode": "full", ... }, ... ]
//! }
//! ```
//!
//! [`migrate`] wraps a v1 snapshot into the v2 envelope (the snapshot
//! becomes the first trajectory entry); [`append`] pushes a fresh entry;
//! [`check`] compares a candidate entry against the **last same-mode**
//! trajectory entry (smoke runs gate against smoke baselines, full runs
//! against full — the cell sizes differ, so cross-mode comparison would
//! be noise). The gate fails when the `cell_cost` lean fast-path median
//! regresses beyond `tolerance` × baseline, or the lean speedup collapses
//! below baseline ÷ `tolerance`. The wide default tolerance
//! ([`DEFAULT_TOLERANCE`]) is deliberate: shared CI runners jitter 2-3×,
//! so the gate catches order-of-magnitude regressions (a lost fast path,
//! an accidental O(n²)), not percent-level noise.

use std::fmt::Write as _;

/// Gate tolerance when `--tolerance` is absent: the candidate median may
/// be up to 3× the baseline before the gate fails. See the module docs
/// for why it is this wide.
pub const DEFAULT_TOLERANCE: f64 = 3.0;

/// A parsed JSON value. Object keys keep insertion order so a
/// parse → render round trip is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (benchmark integers stay exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|t| t.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("malformed number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let start = *pos - 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".to_string())
}

/// Renders a value as pretty-printed JSON (2-space indent, newline at
/// end), matching the style of the hand-formatted `BENCH_*.json` files.
pub fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, 0, &mut out);
    out.push('\n');
    out
}

fn render_into(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => {
            let _ = write!(out, "\"{}\"", olab_core::fmtutil::json_escape(s));
        }
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                render_into(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                let _ = write!(out, "{inner}\"{}\": ", olab_core::fmtutil::json_escape(k));
                render_into(v, indent + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Wraps a root document into the v2 trajectory envelope. A document that
/// already has a `trajectory` array passes through unchanged; anything
/// else (a v1 snapshot) becomes the envelope's first entry.
pub fn migrate(root: Json) -> Json {
    if root.get("trajectory").is_some() {
        return root;
    }
    let bench = root
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    Json::Obj(vec![
        ("bench".to_string(), Json::Str(bench)),
        ("schema_version".to_string(), Json::Num(2.0)),
        ("trajectory".to_string(), Json::Arr(vec![root])),
    ])
}

/// Appends one snapshot entry to a v2 root (migrating a v1 root first).
///
/// # Errors
///
/// Fails when the migrated root somehow lacks a `trajectory` array —
/// i.e. the input had a non-array `trajectory` field.
pub fn append(root: Json, entry: Json) -> Result<Json, String> {
    let mut root = migrate(root);
    let Json::Obj(pairs) = &mut root else {
        return Err("trajectory root must be a JSON object".to_string());
    };
    match pairs.iter_mut().find(|(k, _)| k == "trajectory") {
        Some((_, Json::Arr(items))) => items.push(entry),
        _ => return Err("'trajectory' must be an array".to_string()),
    }
    Ok(root)
}

/// The mode tag of a snapshot entry; v1 entries predate the field and
/// were always full runs.
fn mode_of(entry: &Json) -> &str {
    entry.get("mode").and_then(Json::as_str).unwrap_or("full")
}

/// Digs `median_ns.fast_path_lean` (or any `section.key`) out of an entry.
fn metric(entry: &Json, section: &str, key: &str) -> Option<f64> {
    entry.get(section)?.get(key)?.as_f64()
}

/// The regression gate: compares a candidate `cell_cost` snapshot against
/// the last same-mode entry of a baseline trajectory.
///
/// Passing vacuously when the trajectory holds no same-mode entry is
/// deliberate — the first smoke run after the schema lands has nothing to
/// gate against, and failing there would block the entry that creates the
/// baseline.
///
/// # Errors
///
/// Returns a description of the regression (median beyond
/// `tolerance` × baseline, or speedup below baseline ÷ `tolerance`), or
/// of a malformed candidate (no lean-fast-path median at all).
pub fn check(baseline_root: &Json, candidate: &Json, tolerance: f64) -> Result<String, String> {
    let cand_median = metric(candidate, "median_ns", "fast_path_lean")
        .ok_or("candidate has no median_ns.fast_path_lean")?;
    let mode = mode_of(candidate);
    let trajectory = match migrate(baseline_root.clone()).get("trajectory").cloned() {
        Some(Json::Arr(items)) => items,
        _ => Vec::new(),
    };
    let Some(base) = trajectory.iter().rev().find(|e| mode_of(e) == mode) else {
        return Ok(format!(
            "no '{mode}' baseline in trajectory ({} entries) — gate passes vacuously",
            trajectory.len()
        ));
    };
    let base_median = metric(base, "median_ns", "fast_path_lean")
        .ok_or("baseline entry has no median_ns.fast_path_lean")?;
    if cand_median > tolerance * base_median {
        return Err(format!(
            "fast_path_lean median regressed: {cand_median:.0} ns vs baseline \
             {base_median:.0} ns (allowed {tolerance}x = {:.0} ns)",
            tolerance * base_median
        ));
    }
    let mut report = format!(
        "fast_path_lean median {cand_median:.0} ns within {tolerance}x of \
         baseline {base_median:.0} ns"
    );
    if let (Some(cand_speedup), Some(base_speedup)) = (
        candidate.get("fast_path_speedup").and_then(Json::as_f64),
        base.get("fast_path_speedup").and_then(Json::as_f64),
    ) {
        if cand_speedup < base_speedup / tolerance {
            return Err(format!(
                "fast_path_speedup collapsed: {cand_speedup:.2}x vs baseline \
                 {base_speedup:.2}x (floor {:.2}x)",
                base_speedup / tolerance
            ));
        }
        let _ = write!(
            report,
            "; speedup {cand_speedup:.2}x vs baseline {base_speedup:.2}x"
        );
    }
    Ok(report)
}

/// The short hash of the commit being benchmarked, or `"unknown"` outside
/// a git checkout (tarball builds, vendored sources).
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_snapshot(lean_ns: f64, speedup: f64) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::Str("cell_cost".into())),
            (
                "median_ns".into(),
                Json::Obj(vec![("fast_path_lean".into(), Json::Num(lean_ns))]),
            ),
            ("fast_path_speedup".into(), Json::Num(speedup)),
        ])
    }

    #[test]
    fn parse_render_round_trips_a_bench_file() {
        let src = "{\n  \"bench\": \"cell_cost\",\n  \"tasks\": 3184,\n  \
                   \"median_ns\": {\n    \"fast_path_lean\": 121268\n  },\n  \
                   \"fast_path_speedup\": 8.16,\n  \"ok\": true,\n  \
                   \"none\": null,\n  \"list\": [1, 2, 3]\n}\n";
        let parsed = parse(src).expect("parses");
        let rendered = render(&parsed);
        assert_eq!(parse(&rendered).expect("re-parses"), parsed);
        olab_core::fmtutil::validate_json(&rendered).expect("render is valid JSON");
        assert_eq!(parsed.get("tasks").and_then(Json::as_f64), Some(3184.0));
        assert_eq!(
            parsed
                .get("median_ns")
                .and_then(|m| m.get("fast_path_lean")),
            Some(&Json::Num(121268.0))
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\" 1}", "[1,]", "{\"a\":1} x", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn migrate_wraps_v1_and_passes_v2_through() {
        let v2 = migrate(v1_snapshot(100.0, 8.0));
        assert_eq!(
            v2.get("schema_version").and_then(Json::as_f64),
            Some(2.0),
            "v1 gets the envelope"
        );
        let Some(Json::Arr(items)) = v2.get("trajectory") else {
            panic!("trajectory array");
        };
        assert_eq!(items.len(), 1);
        assert_eq!(migrate(v2.clone()), v2, "v2 is a fixpoint");
    }

    #[test]
    fn append_grows_the_trajectory_newest_last() {
        let root = append(v1_snapshot(100.0, 8.0), v1_snapshot(90.0, 9.0)).unwrap();
        let Some(Json::Arr(items)) = root.get("trajectory") else {
            panic!("trajectory array");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(
            metric(&items[1], "median_ns", "fast_path_lean"),
            Some(90.0),
            "newest entry is last"
        );
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let baseline = v1_snapshot(100.0, 8.0);
        assert!(check(&baseline, &v1_snapshot(250.0, 7.0), 3.0).is_ok());
        let err = check(&baseline, &v1_snapshot(301.0, 8.0), 3.0).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        let err = check(&baseline, &v1_snapshot(100.0, 2.0), 3.0).unwrap_err();
        assert!(err.contains("speedup collapsed"), "{err}");
    }

    #[test]
    fn check_gates_against_the_last_same_mode_entry() {
        let mut smoke = v1_snapshot(50.0, 8.0);
        if let Json::Obj(pairs) = &mut smoke {
            pairs.push(("mode".into(), Json::Str("smoke".into())));
        }
        let root = append(v1_snapshot(1000.0, 8.0), smoke.clone()).unwrap();
        // A smoke candidate compares against the smoke entry (50 ns), not
        // the much larger full-run entry.
        let mut cand = v1_snapshot(200.0, 8.0);
        if let Json::Obj(pairs) = &mut cand {
            pairs.push(("mode".into(), Json::Str("smoke".into())));
        }
        let err = check(&root, &cand, 3.0).unwrap_err();
        assert!(err.contains("150 ns"), "3x the smoke baseline: {err}");
        // A full candidate gates against the full entry and passes.
        assert!(check(&root, &v1_snapshot(2000.0, 8.0), 3.0).is_ok());
    }

    #[test]
    fn check_passes_vacuously_without_a_same_mode_baseline() {
        let mut cand = v1_snapshot(100.0, 8.0);
        if let Json::Obj(pairs) = &mut cand {
            pairs.push(("mode".into(), Json::Str("smoke".into())));
        }
        let report = check(&v1_snapshot(1.0, 8.0), &cand, 3.0).unwrap();
        assert!(report.contains("vacuously"), "{report}");
    }
}
