//! # olab-bench — figure & table regenerators
//!
//! One binary per table/figure of the paper, each printing the same
//! rows/series the paper reports (markdown by default, CSV with `--csv`):
//!
//! | binary    | reproduces |
//! |-----------|------------|
//! | `table1`  | Table I — GPU inventory |
//! | `table2`  | Table II — workloads |
//! | `fig1`    | Fig. 1 — overlap amount vs model/batch |
//! | `fig4`    | Fig. 4 — compute slowdown grid |
//! | `fig5`    | Fig. 5 — E2E latency: ideal/overlapped/sequential |
//! | `fig6`    | Fig. 6 — average & peak power |
//! | `fig7`    | Fig. 7 — MI250 power trace (1 ms sampling) |
//! | `fig8`    | Fig. 8 — GEMM ∥ 1 GB all-reduce microbenchmark |
//! | `fig9`    | Fig. 9 — power capping on 4×A100 |
//! | `fig10`   | Fig. 10 — FP16 vs FP32 |
//! | `fig11`   | Fig. 11 — tensor cores (TF32) vs FP32 vector |
//! | `headline`| the abstract's aggregate statistics |
//! | `ablation_*` | design-space studies beyond the paper |
//! | `conformance` | closed-form-oracle gate over every grid above (exits 1 on divergence) |
//! | `grid_soak` | chaos soak of the sweep engine: a faulted run must be bit-identical to a clean one |
//! | `serve_soak` | live-socket soak of `olab serve`: coalescing storm, shed, deadline, client chaos, degradation, drain |
//! | `trend`   | perf-trajectory tooling: appends `cell_cost`/`grid_soak`/`serve_soak` snapshots to the `BENCH_*.json` trajectories and gates candidates against them (exits 1 on regression) |
//!
//! Run any of them with `cargo run --release -p olab-bench --bin <name>`.
//! Criterion benches (`cargo bench`) measure the simulator itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trend;

use olab_core::report::Table;

/// True when `--csv` was passed on the command line.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Prints a titled table in the requested format.
pub fn emit(title: &str, table: &Table) {
    if csv_requested() {
        println!("# {title}");
        print!("{}", table.to_csv());
    } else {
        println!("## {title}\n");
        print!("{}", table.to_markdown());
    }
    println!();
}

/// Formats an `Option<f64>` percentage cell, using `-` for missing values
/// (infeasible configurations — the paper's absent bars).
pub fn pct_or_dash(v: Option<f64>) -> String {
    v.map(olab_core::report::pct).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_or_dash_handles_both_cases() {
        assert_eq!(pct_or_dash(Some(0.5)), "50.0%");
        assert_eq!(pct_or_dash(None), "-");
    }
}
