//! Criterion benchmarks of full figure-cell simulations: how long it takes
//! the harness to regenerate one representative cell of each figure.

use criterion::{criterion_group, criterion_main, Criterion};
use olab_core::{microbench, Experiment, Strategy};
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_cells");
    g.sample_size(10);

    // One Fig. 4/5/6 grid cell (full three-mode experiment).
    let fig4_cell = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8);
    g.bench_function("fig4_cell_h100_xl_b8", |b| {
        b.iter(|| fig4_cell.run().expect("cell runs"))
    });

    // The largest headline cell: MI250 + 13B with recomputation.
    let fig5_cell = Experiment::new(SkuKind::Mi250, 4, ModelPreset::Gpt3_13B, Strategy::Fsdp, 8);
    g.bench_function("fig5_cell_mi250_13b_b8", |b| {
        b.iter(|| fig5_cell.run().expect("cell runs"))
    });

    // One pipeline cell (Fig. 1b).
    let fig1b_cell = Experiment::new(
        SkuKind::A100,
        4,
        ModelPreset::Gpt3_2_7B,
        Strategy::Pipeline { microbatch_size: 8 },
        32,
    );
    g.bench_function("fig1b_cell_a100_pp_b32", |b| {
        b.iter(|| fig1b_cell.run().expect("cell runs"))
    });

    // One Fig. 8 microbenchmark point.
    g.bench_function("fig8_point_h100_4096", |b| {
        b.iter(|| {
            microbench::gemm_vs_allreduce(
                SkuKind::H100,
                4,
                4096,
                4,
                1 << 30,
                Precision::Fp16,
                Datapath::TensorCore,
            )
            .expect("point runs")
        })
    });

    // One Fig. 9 capped cell.
    let fig9_cell = Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_2_7B, Strategy::Fsdp, 8)
        .with_power_cap(150.0);
    g.bench_function("fig9_cell_a100_150w", |b| {
        b.iter(|| fig9_cell.run().expect("cell runs"))
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
