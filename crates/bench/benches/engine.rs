//! Criterion benchmarks of the simulation engine itself: task throughput,
//! rendezvous handling, and contention-epoch recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use olab_sim::{ConstantRate, Engine, GpuId, StreamKind, TaskSpec, Workload};

/// A chain of `n` dependent compute tasks on one GPU.
fn chain_workload(n: usize) -> Workload<()> {
    let mut w = Workload::new(1);
    for i in 0..n {
        let mut spec = TaskSpec::compute(format!("t{i}"), GpuId(0), ());
        if i > 0 {
            spec.deps.push(olab_sim::TaskId((i - 1) as u32));
        }
        w.push(spec);
    }
    w
}

/// `n` tasks spread over 8 GPUs with interleaved collectives.
fn mixed_workload(n: usize) -> Workload<()> {
    let mut w = Workload::new(8);
    for i in 0..n {
        if i % 10 == 9 {
            w.push(TaskSpec::new(
                format!("coll{i}"),
                (0..8).map(GpuId).collect(),
                StreamKind::Comm,
                (),
            ));
        } else {
            w.push(TaskSpec::compute(
                format!("k{i}"),
                GpuId((i % 8) as u16),
                (),
            ));
        }
    }
    w
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &n in &[100usize, 1000, 5000] {
        group.throughput(Throughput::Elements(n as u64));
        let chain = chain_workload(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, w| {
            b.iter(|| Engine::new(ConstantRate::default()).run(w).unwrap())
        });
        let mixed = mixed_workload(n);
        group.bench_with_input(BenchmarkId::new("mixed_8gpu", n), &mixed, |b, w| {
            b.iter(|| Engine::new(ConstantRate::default()).run(w).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
