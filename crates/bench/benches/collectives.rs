//! Criterion benchmarks of collective lowering and cost evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{GpuSku, Precision};
use olab_net::Topology;
use olab_sim::GpuId;

fn bench_lowering(c: &mut Criterion) {
    let sku = GpuSku::h100();
    let topo = Topology::nvswitch(8, sku.link_bw_unidir_gbs, sku.link_latency_us);
    let group: Vec<GpuId> = (0..8).map(GpuId).collect();

    let mut g = c.benchmark_group("ccl_lower");
    for &bytes in &[1u64 << 20, 1 << 26, 1 << 30] {
        g.bench_with_input(
            BenchmarkId::new("all_reduce", bytes),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    let coll = Collective::all_reduce(bytes, group.clone());
                    lower(&coll, Algorithm::Ring, &sku, &topo, Precision::Fp16)
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ccl_cost");
    let ar = Collective::all_reduce(1 << 28, group.clone());
    for algo in [Algorithm::Ring, Algorithm::Tree] {
        let op = lower(&ar, algo, &sku, &topo, Precision::Fp16);
        g.bench_with_input(
            BenchmarkId::new("isolated_duration", format!("{algo}")),
            &op,
            |b, op| b.iter(|| op.isolated_duration_s()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
