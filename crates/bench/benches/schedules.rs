//! Criterion benchmarks of schedule construction (FSDP and pipeline
//! timelines for real model configurations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use olab_gpu::{Datapath, GpuSku, Precision};
use olab_models::{memory::ActivationPolicy, ModelPreset};
use olab_net::Topology;
use olab_parallel::{fsdp, pipeline, ExecutionMode};

fn bench_schedules(c: &mut Criterion) {
    let sku = GpuSku::h100();
    let topo = Topology::nvswitch(4, sku.link_bw_unidir_gbs, sku.link_latency_us);

    let mut g = c.benchmark_group("schedule_build");
    for model in [ModelPreset::Gpt3Xl, ModelPreset::Gpt3_13B] {
        let plan = fsdp::FsdpPlan {
            model: model.config(),
            ranks: 4,
            batch_per_rank: 8,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            grad_accum_steps: 1,
            overlap: Default::default(),
        };
        g.bench_with_input(
            BenchmarkId::new("fsdp", model.config().name),
            &plan,
            |b, plan| b.iter(|| fsdp::fsdp_timeline(plan, &sku, &topo, ExecutionMode::Overlapped)),
        );

        let pp = pipeline::PipelinePlan {
            model: model.config(),
            stages: 4,
            microbatches: 8,
            batch_total: 64,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            schedule: Default::default(),
        };
        g.bench_with_input(
            BenchmarkId::new("pipeline", model.config().name),
            &pp,
            |b, pp| {
                b.iter(|| pipeline::pipeline_timeline(pp, &sku, &topo, ExecutionMode::Overlapped))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
