//! The canonical cell-result body: one JSON object, byte-stable.
//!
//! Both the daemon's `/v1/cell` route and the offline `--oneshot` path
//! render through [`render_cell_body`], which is what makes the service
//! contract checkable: a served body must be byte-identical to what an
//! offline sweep of the same cell would print. Floats are fixed to six
//! decimal places (the observability layer's convention) so the bytes
//! don't drift across platforms or libm versions printing shortest-form.

use std::fmt::Write as _;

use olab_core::fmtutil::json_escape;
use olab_core::{CellError, CellMetrics, CellOutcome};

/// Renders one cell outcome as a single JSON line (with trailing
/// newline): the canonical response body.
///
/// Feasible cells carry the paper's metrics; infeasible cells (out of
/// memory, invalid configuration — the paper's missing bars) are
/// first-class results with `"ok": false` and the same error wording the
/// offline sweep prints.
pub fn render_cell_body(descriptor: &str, outcome: &CellOutcome) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(out, "{{\"descriptor\": \"{}\"", json_escape(descriptor));
    match outcome {
        Ok(cell) => {
            let _ = write!(out, ", \"ok\": true");
            render_metrics(&mut out, cell);
        }
        Err(err) => {
            let _ = write!(
                out,
                ", \"ok\": false, \"error_kind\": \"{}\", \"error\": \"{}\"",
                error_kind(err),
                json_escape(&err.to_string())
            );
        }
    }
    out.push_str("}\n");
    out
}

fn render_metrics(out: &mut String, cell: &CellMetrics) {
    let m = &cell.metrics;
    let _ = write!(
        out,
        ", \"activation_policy\": \"{:?}\", \"compute_slowdown\": {:.6}, \
         \"overlap_ratio\": {:.6}, \"e2e_overlapped_s\": {:.6}, \"e2e_ideal_s\": {:.6}, \
         \"e2e_sequential_derived_s\": {:.6}, \"e2e_sequential_measured_s\": {:.6}, \
         \"avg_power_w\": {:.3}, \"peak_power_w\": {:.3}, \"avg_power_sequential_w\": {:.3}, \
         \"peak_power_sequential_w\": {:.3}, \"energy_j\": {:.3}, \"sampled_avg_w\": {:.3}, \
         \"sampled_peak_w\": {:.3}, \"ideal_simulated_e2e_s\": {:.6}, \"comm_s\": {:.6}, \
         \"overlapped_compute_s\": {:.6}, \"hidden_comm_s\": {:.6}",
        cell.activation_policy,
        m.compute_slowdown,
        m.overlap_ratio,
        m.e2e_overlapped_s,
        m.e2e_ideal_s,
        m.e2e_sequential_derived_s,
        m.e2e_sequential_measured_s,
        m.avg_power_w,
        m.peak_power_w,
        m.avg_power_sequential_w,
        m.peak_power_sequential_w,
        m.energy_j,
        cell.sampled_avg_w,
        cell.sampled_peak_w,
        cell.ideal_simulated_e2e_s,
        cell.comm_s,
        cell.overlapped_compute_s,
        cell.hidden_comm_s
    );
}

/// A stable machine-readable tag for each error class.
fn error_kind(err: &CellError) -> &'static str {
    match err {
        CellError::OutOfMemory { .. } => "out_of_memory",
        CellError::InvalidConfig(_) => "invalid_config",
        CellError::Sim(_) => "sim",
        CellError::Panic(_) => "panic",
        CellError::Timeout { .. } => "timeout",
        CellError::RetriesExhausted { .. } => "retries_exhausted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::fmtutil::validate_json;
    use olab_core::sweep::cell_descriptor;
    use olab_core::{Experiment, Strategy, Sweep};
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn cell() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(128)
    }

    #[test]
    fn a_feasible_cell_renders_valid_json_with_the_paper_metrics() {
        let exp = cell();
        let outcome = &Sweep::new().run(std::slice::from_ref(&exp)).cells[0];
        let body = render_cell_body(&cell_descriptor(&exp), outcome);
        assert!(body.ends_with('\n'));
        validate_json(body.trim_end()).unwrap_or_else(|e| panic!("{body}: {e}"));
        assert!(body.contains("\"ok\": true"), "{body}");
        assert!(body.contains("\"overlap_ratio\": "), "{body}");
        assert!(body.contains("\"energy_j\": "), "{body}");
    }

    #[test]
    fn rendering_is_deterministic_across_runs() {
        let exp = cell();
        let a = render_cell_body(
            &cell_descriptor(&exp),
            &Sweep::new().run(std::slice::from_ref(&exp)).cells[0],
        );
        let b = render_cell_body(
            &cell_descriptor(&exp),
            &Sweep::new().run(std::slice::from_ref(&exp)).cells[0],
        );
        assert_eq!(a, b, "the canonical body must be byte-stable");
    }

    #[test]
    fn an_infeasible_cell_is_a_first_class_result() {
        let outcome: CellOutcome = Err(CellError::OutOfMemory {
            needed_gib: 120.0,
            budget_gib: 80.0,
        });
        let body = render_cell_body("olab-cell \"x\"", &outcome);
        validate_json(body.trim_end()).unwrap_or_else(|e| panic!("{body}: {e}"));
        assert!(body.contains("\"ok\": false"), "{body}");
        assert!(body.contains("\"error_kind\": \"out_of_memory\""), "{body}");
        assert!(body.contains("out of device memory"), "{body}");
    }
}
