//! The daemon: accept → admit → coalesce → execute → respond, and drain.
//!
//! ## Pipeline
//!
//! One acceptor thread owns the listener. Each accepted connection is
//! pushed into a bounded [`AdmissionQueue`]; when the queue is full the
//! acceptor *itself* answers `429 Too Many Requests` with a `Retry-After`
//! derived from the engine's observed p90 cell-execution latency — load
//! is shed at the door, before a worker is occupied. A fixed pool of
//! connection workers pops admitted sockets and runs the routes.
//!
//! ## Coalescing and deadlines
//!
//! `/v1/cell` requests join a [`CoalesceMap`] keyed by the cell's
//! content-address: the first request for a cold cell executes it (with
//! the request's own `timeout_ms` tightened into the engine's execution
//! guard), and every concurrent duplicate waits on that single flight
//! under its *own* deadline. A waiter that times out gets `504` while the
//! flight runs on — the result still lands in the cache for the retry.
//!
//! ## Drain
//!
//! `POST /v1/drain` (or [`ServerHandle::shutdown`]) flips the draining
//! flag, closes the admission queue — already-admitted requests finish,
//! new arrivals get `503` — and wakes the acceptor with a loopback
//! connection so no thread is ever left blocked in `accept()`. Shutdown
//! then joins the workers under a bounded timeout and reports how many
//! (if any) were stranded, and flushes the metrics expositions to disk
//! when an output directory is configured.

use std::fs::File;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use olab_core::sweep::{cell_descriptor, cell_key};
use olab_core::{CellError, Sweep};
use olab_grid::AdmissionQueue;
use olab_grid::{CoalesceMap, GuardConfig, Join, RejectReason, WaitOutcome};
use olab_obs::{JsonlProgress, ObsEvent};

use crate::http::{read_request, write_response, Request};
use crate::metrics::serve_metrics;
use crate::render::render_cell_body;
use crate::request::parse_query;

/// How long a socket read may block before the worker gives up on the
/// client.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Default waiter deadline when a request carries no `timeout_ms`.
const DEFAULT_WAIT_MS: u64 = 60_000;

/// Everything `olab serve` can configure.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine worker threads (`0` = available parallelism).
    pub jobs: usize,
    /// Disk cache tier directory.
    pub cache_dir: Option<PathBuf>,
    /// Disk cache byte cap.
    pub cache_max_bytes: Option<u64>,
    /// The engine's own per-cell deadline, seconds.
    pub cell_timeout_s: Option<f64>,
    /// Retry budget for failed cells.
    pub retries: u32,
    /// Admission queue depth; connections beyond it are shed with `429`.
    pub max_queue: usize,
    /// Connection-handling threads.
    pub http_workers: usize,
    /// How long [`ServerHandle::shutdown`] waits for workers, seconds.
    pub drain_timeout_s: f64,
    /// Directory for metrics expositions flushed at shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Restrict the flushed expositions to deterministic families only.
    pub metrics_deterministic: bool,
    /// Request-lifecycle JSONL log path.
    pub log: Option<PathBuf>,
    /// Holds each coalescing leader's flight open for this long after the
    /// cell completes — soak/verification instrumentation that widens the
    /// window duplicate requests must land in. Zero in production.
    pub coalesce_hold_ms: u64,
    /// Deterministic fault plan for the serve-layer chaos points
    /// (`serve.slow_client`, `serve.conn_reset`).
    #[cfg(feature = "chaos")]
    pub chaos: Option<olab_grid::ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            cache_dir: None,
            cache_max_bytes: None,
            cell_timeout_s: None,
            retries: 0,
            max_queue: 32,
            http_workers: 16,
            drain_timeout_s: 5.0,
            metrics_out: None,
            metrics_deterministic: false,
            log: None,
            coalesce_hold_ms: 0,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// What a completed drain looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Workers that failed to exit within the drain timeout. Zero on a
    /// clean shutdown.
    pub stranded_workers: usize,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    engine: Sweep,
    queue: AdmissionQueue<TcpStream>,
    coalesce: CoalesceMap<(u16, String)>,
    draining: AtomicBool,
    request_seq: AtomicU64,
    workers_exited: Mutex<usize>,
    exit_cv: Condvar,
    log: Option<JsonlProgress<BufWriter<File>>>,
}

impl Shared {
    fn log_event(&self, event: &ObsEvent<'_>) {
        if let Some(log) = &self.log {
            log.write_event(event);
        }
    }

    /// Flips the draining flag, closes the queue, and wakes the acceptor
    /// with a loopback connection. Idempotent.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        // The poison pill: accept() has no timeout, so hand it one last
        // connection to chew on; it observes `draining` and exits.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping the handle leaks the threads; call
/// [`ServerHandle::shutdown`] for a clean exit.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolved port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a drain has started (via HTTP or programmatically).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the daemon: no new admissions, every admitted
    /// request finished, workers joined under the configured timeout,
    /// metrics expositions flushed.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let total = self.workers.len();
        let deadline = Instant::now() + Duration::from_secs_f64(self.shared.cfg.drain_timeout_s);
        let mut exited = self
            .shared
            .workers_exited
            .lock()
            .expect("worker exit count poisoned");
        while *exited < total {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let (next, _) = self
                .shared
                .exit_cv
                .wait_timeout(exited, remaining)
                .expect("worker exit count poisoned");
            exited = next;
        }
        let stranded_workers = total - *exited;
        drop(exited);
        if stranded_workers == 0 {
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
        // Flush expositions after the last worker that could still record
        // a sample has exited.
        if let Some(dir) = &self.shared.cfg.metrics_out {
            let result = if self.shared.cfg.metrics_deterministic {
                olab_metrics::write_files_deterministic(dir)
            } else {
                olab_metrics::write_files(dir)
            };
            if let Err(e) = result {
                eprintln!(
                    "[olab-serve] metrics flush to {} failed: {e}",
                    dir.display()
                );
            }
        }
        DrainReport { stranded_workers }
    }

    /// Blocks until something requests a drain (`POST /v1/drain` or a
    /// process signal translated by the embedder), then runs
    /// [`ServerHandle::shutdown`]. This is the CLI daemon's main loop.
    pub fn run_until_drained(self) -> DrainReport {
        while !self.draining() {
            thread::sleep(Duration::from_millis(100));
        }
        self.shutdown()
    }
}

/// Builds the engine, binds the listener, and spawns the pipeline.
///
/// # Errors
///
/// Binding the address, creating the cache directory, or opening the log
/// file can all fail.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    let mut engine = Sweep::new();
    if cfg.jobs > 0 {
        engine = engine.with_jobs(cfg.jobs);
    }
    if let Some(dir) = &cfg.cache_dir {
        engine = engine.with_disk_cache(dir)?;
    }
    if let Some(cap) = cfg.cache_max_bytes {
        engine = engine.with_cache_cap(cap);
    }
    let guard = GuardConfig {
        cell_timeout_s: cfg.cell_timeout_s,
        retries: cfg.retries,
        ..GuardConfig::default()
    };
    engine = engine.with_guard(guard);
    // The chaos plan arms both layers: the serve points (slow clients,
    // connection resets) fire in the connection handler, the engine
    // points (ENOSPC, torn writes) inside the cell executor and cache.
    #[cfg(feature = "chaos")]
    if let Some(plan) = cfg.chaos {
        engine = engine.with_chaos(plan);
    }

    let log = match &cfg.log {
        Some(path) => Some(JsonlProgress::new(BufWriter::new(File::create(path)?))),
        None => None,
    };

    // A daemon always records its own telemetry; the deterministic gate
    // is unaffected (serve families are wall-clock class).
    olab_metrics::set_enabled(true);
    olab_grid::metrics::touch();
    crate::metrics::touch();

    let max_queue = cfg.max_queue;
    let http_workers = cfg.http_workers.max(1);
    let shared = Arc::new(Shared {
        addr,
        engine,
        queue: AdmissionQueue::new(max_queue),
        coalesce: CoalesceMap::new(),
        draining: AtomicBool::new(false),
        request_seq: AtomicU64::new(0),
        workers_exited: Mutex::new(0),
        exit_cv: Condvar::new(),
        log,
        cfg,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("olab-serve-accept".into())
            .spawn(move || accept_loop(listener, &shared))?
    };
    let mut workers = Vec::with_capacity(http_workers);
    for i in 0..http_workers {
        let shared = Arc::clone(&shared);
        workers.push(
            thread::Builder::new()
                .name(format!("olab-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

/// `Retry-After` seconds derived from the engine's observed p90 cell
/// execution latency (floor one second while the histogram is empty).
fn retry_after_s() -> u64 {
    let p90_ns = olab_metrics::histogram(
        "olab_grid_cell_exec_ns",
        "Wall-clock of each computed (non-cached) cell execution.",
    )
    .snapshot()
    .p90();
    p90_ns.div_ceil(1_000_000_000).max(1)
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    let m = serve_metrics();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Late arrival (or the poison pill itself): turn it away.
            // The pill sends nothing, so bound the drain read tightly.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let _ = read_request(&stream);
            let _ = write_response(stream, 503, "text/plain", &[], "draining\n");
            break;
        }
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        match shared.queue.push(stream) {
            Ok(()) => {
                m.accepted.inc();
                m.queue_depth.set(shared.queue.depth() as i64);
            }
            Err(rejected) => {
                m.shed.inc();
                // Drain the request head before responding: closing with
                // unread bytes in the receive buffer turns the close into
                // a TCP reset and the client never sees the 429. The
                // read is bounded by the socket timeout set above.
                let _ = read_request(&rejected.item);
                let (status, headers, body): (u16, Vec<String>, &str) = match rejected.reason {
                    RejectReason::Full => (
                        429,
                        vec![format!("Retry-After: {}", retry_after_s())],
                        "shed: admission queue full\n",
                    ),
                    RejectReason::Closed => (503, Vec::new(), "draining\n"),
                };
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let _ = write_response(rejected.item, status, "text/plain", &header_refs, body);
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        serve_metrics().queue_depth.set(shared.queue.depth() as i64);
        handle_connection(shared, stream);
    }
    let mut exited = shared
        .workers_exited
        .lock()
        .expect("worker exit count poisoned");
    *exited += 1;
    shared.exit_cv.notify_all();
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let start = Instant::now();
    let request_id = shared.request_seq.fetch_add(1, Ordering::Relaxed);
    let req = match read_request(&stream) {
        Ok(req) => req,
        Err(_) => {
            let _ = write_response(&stream, 400, "text/plain", &[], "malformed request\n");
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_response(&stream, 200, "application/json", &[], &health_body(shared));
        }
        ("GET", "/readyz") => {
            let health = shared.engine.cache_health();
            if shared.draining.load(Ordering::SeqCst) {
                let _ = write_response(&stream, 503, "text/plain", &[], "draining\n");
            } else if health.degraded {
                let _ = write_response(&stream, 503, "text/plain", &[], "cache degraded\n");
            } else {
                let _ = write_response(&stream, 200, "text/plain", &[], "ready\n");
            }
        }
        ("GET", "/metricsz") => {
            let _ = write_response(
                &stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                &olab_metrics::render_prom(),
            );
        }
        ("POST", "/v1/drain") => {
            let queued = shared.queue.depth();
            shared.begin_drain();
            let body = format!("{{\"draining\": true, \"queued\": {queued}}}\n");
            let _ = write_response(&stream, 200, "application/json", &[], &body);
        }
        ("GET", "/v1/cell") => handle_cell(shared, stream, &req, request_id, start),
        ("GET" | "POST", _) => {
            let _ = write_response(&stream, 404, "text/plain", &[], "no such route\n");
        }
        _ => {
            let _ = write_response(&stream, 405, "text/plain", &[], "method not allowed\n");
        }
    }
    serve_metrics()
        .request_ns
        .observe(start.elapsed().as_nanos() as u64);
}

fn health_body(shared: &Shared) -> String {
    let health = shared.engine.cache_health();
    let draining = shared.draining.load(Ordering::SeqCst);
    let status = if draining {
        "draining"
    } else if health.degraded {
        "degraded"
    } else {
        "ok"
    };
    format!(
        "{{\"status\": \"{status}\", \"draining\": {draining}, \"degraded\": {}, \
         \"queue_depth\": {}, \"queue_capacity\": {}, \"in_flight\": {}, \
         \"disk_enabled\": {}, \"disk_entries\": {}, \"disk_bytes\": {}}}\n",
        health.degraded,
        shared.queue.depth(),
        shared.queue.capacity(),
        shared.coalesce.in_flight(),
        health.disk_enabled,
        health.disk_entries,
        health.disk_bytes,
    )
}

fn handle_cell(shared: &Shared, stream: TcpStream, req: &Request, request_id: u64, start: Instant) {
    let m = serve_metrics();
    let cell = match parse_query(&req.query) {
        Ok(cell) => cell,
        Err(msg) => {
            let _ = write_response(&stream, 400, "text/plain", &[], &format!("{msg}\n"));
            return;
        }
    };
    let descriptor = cell_descriptor(&cell.experiment);
    let key = cell_key(&cell.experiment);
    shared.log_event(&ObsEvent::RequestStart {
        descriptor: &descriptor,
        timeout_ms: cell.timeout_ms.unwrap_or(0),
    });

    // One retry so a waiter whose leader abandoned (panicked) becomes the
    // fresh leader instead of failing the client outright.
    let mut outcome_tag = "error";
    let mut response: (u16, String) = (500, "{\"ok\": false, \"error\": \"abandoned\"}\n".into());
    for _ in 0..2 {
        match shared.coalesce.join(key) {
            Join::Leader(leader) => {
                let mut guard = *shared.engine.guard();
                if let Some(ms) = cell.timeout_ms {
                    let budget_s = ms as f64 / 1000.0;
                    guard.cell_timeout_s = Some(match guard.cell_timeout_s {
                        Some(own) => own.min(budget_s),
                        None => budget_s,
                    });
                }
                let outcome = shared
                    .engine
                    .run_guarded(std::slice::from_ref(&cell.experiment), guard, None)
                    .cells
                    .remove(0);
                let status = match &outcome {
                    Err(CellError::Timeout { .. }) => 504,
                    _ => 200,
                };
                let body = render_cell_body(&descriptor, &outcome);
                m.executed.inc();
                if shared.cfg.coalesce_hold_ms > 0 {
                    // Soak instrumentation: keep the flight open so a
                    // duplicate storm reliably lands inside it.
                    thread::sleep(Duration::from_millis(shared.cfg.coalesce_hold_ms));
                }
                leader.complete((status, body.clone()));
                outcome_tag = "executed";
                response = (status, body);
                break;
            }
            Join::Waiter(waiter) => {
                let wait = Duration::from_millis(cell.timeout_ms.unwrap_or(DEFAULT_WAIT_MS));
                match waiter.wait(wait) {
                    WaitOutcome::Done((status, body)) => {
                        m.coalesced.inc();
                        outcome_tag = "coalesced";
                        response = (status, body);
                        break;
                    }
                    WaitOutcome::TimedOut => {
                        outcome_tag = "timeout";
                        response = (
                            504,
                            format!(
                                "{{\"descriptor\": \"{}\", \"ok\": false, \
                                 \"error_kind\": \"deadline\", \"error\": \"request deadline \
                                 expired waiting on an identical in-flight request\"}}\n",
                                olab_core::fmtutil::json_escape(&descriptor)
                            ),
                        );
                        break;
                    }
                    WaitOutcome::Abandoned => {
                        // Loop: re-join; this request likely leads now.
                        outcome_tag = "error";
                    }
                }
            }
        }
    }

    let (status, body) = response;
    let extra: &[&str] = if outcome_tag == "coalesced" {
        &["X-Olab-Outcome: coalesced"]
    } else if outcome_tag == "executed" {
        &["X-Olab-Outcome: executed"]
    } else {
        &[]
    };
    #[cfg(feature = "chaos")]
    if let Some(plan) = &shared.cfg.chaos {
        if plan.slow_client(request_id) {
            thread::sleep(Duration::from_millis(plan.slow_client_ms));
        }
        if plan.conn_reset(request_id) {
            // The client sees a reset mid-exchange; the flight's result is
            // published and cached all the same.
            drop(stream);
            shared.log_event(&ObsEvent::RequestDone {
                descriptor: &descriptor,
                status: 0,
                outcome: "conn_reset",
                wall_ms: start.elapsed().as_millis() as u64,
            });
            return;
        }
    }
    #[cfg(not(feature = "chaos"))]
    let _ = request_id;
    let _ = write_response(&stream, status, "application/json", extra, &body);
    shared.log_event(&ObsEvent::RequestDone {
        descriptor: &descriptor,
        status,
        outcome: outcome_tag,
        wall_ms: start.elapsed().as_millis() as u64,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A minimal test client: one request, the parsed status line, all
    /// headers, and the body.
    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        request(addr, "GET", target)
    }

    fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        (status, head.to_string(), body.to_string())
    }

    fn serve(cfg: ServeConfig) -> ServerHandle {
        start(cfg).expect("server starts")
    }

    #[test]
    fn health_ready_and_metrics_routes_respond() {
        let handle = serve(ServeConfig::default());
        let addr = handle.addr();
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\": \"ok\""), "{body}");
        let (status, _, body) = get(addr, "/readyz");
        assert_eq!(status, 200, "{body}");
        let (status, _, body) = get(addr, "/metricsz");
        assert_eq!(status, 200);
        assert!(body.contains("olab_serve_accepted_total"), "{body}");
        assert!(body.contains("olab_grid_cell_exec_ns"), "{body}");
        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = request(addr, "PUT", "/v1/cell");
        assert_eq!(status, 405);
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn a_served_cell_is_byte_identical_to_the_offline_sweep() {
        let handle = serve(ServeConfig::default());
        let query = "sku=h100&gpus=4&model=gpt3-xl&strategy=fsdp&batch=8&seq=128";
        let (status, _, body) = get(handle.addr(), &format!("/v1/cell?{query}"));
        assert_eq!(status, 200, "{body}");
        let offline = crate::oneshot(query).expect("offline render");
        assert_eq!(body, offline, "served body must match the offline sweep");
        // A second request is served from cache with the same bytes.
        let (status, _, again) = get(handle.addr(), &format!("/v1/cell?{query}"));
        assert_eq!(status, 200);
        assert_eq!(again, offline);
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn a_duplicate_storm_coalesces_onto_one_execution() {
        let cfg = ServeConfig {
            coalesce_hold_ms: 400,
            ..ServeConfig::default()
        };
        let handle = serve(cfg);
        let addr = handle.addr();
        let target = "/v1/cell?seq=192&batch=4";
        let responses: Vec<(u16, String, String)> = thread::scope(|s| {
            let clients: Vec<_> = (0..8).map(|_| s.spawn(move || get(addr, target))).collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });
        let executed = responses
            .iter()
            .filter(|(_, head, _)| head.contains("X-Olab-Outcome: executed"))
            .count();
        let coalesced = responses
            .iter()
            .filter(|(_, head, _)| head.contains("X-Olab-Outcome: coalesced"))
            .count();
        assert_eq!(executed, 1, "exactly one request executes the cell");
        assert_eq!(coalesced, 7, "every duplicate rides the same flight");
        let first = &responses[0].2;
        for (status, _, body) in &responses {
            assert_eq!(*status, 200);
            assert_eq!(body, first, "all coalesced bodies are byte-identical");
        }
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn overload_is_shed_with_retry_after() {
        let cfg = ServeConfig {
            http_workers: 1,
            max_queue: 1,
            coalesce_hold_ms: 500,
            ..ServeConfig::default()
        };
        let handle = serve(cfg);
        let addr = handle.addr();
        // Occupy the single worker with a held cell; while it holds, the
        // one-slot queue fills and further concurrent arrivals must shed.
        let busy = thread::spawn(move || get(addr, "/v1/cell?seq=224&batch=4"));
        thread::sleep(Duration::from_millis(150));
        let results: Vec<(u16, String, String)> = thread::scope(|s| {
            let clients: Vec<_> = (0..4)
                .map(|_| s.spawn(move || get(addr, "/healthz")))
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });
        let head = results
            .iter()
            .find(|(status, _, _)| *status == 429)
            .map(|(_, head, _)| head.clone())
            .expect("an arrival during the hold must be shed with 429");
        assert!(head.contains("Retry-After: "), "{head}");
        let retry_s: u64 = head
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .unwrap()
            .trim()
            .parse()
            .expect("integral Retry-After");
        assert!(retry_s >= 1);
        let (status, _, _) = busy.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn a_request_deadline_propagates_into_the_guard() {
        let handle = serve(ServeConfig::default());
        // A deliberately heavy cell so a 1 ms budget can't be met even by
        // the analytic fast path.
        let (status, _, body) = get(
            handle.addr(),
            "/v1/cell?model=gpt3-13b&gpus=8&seq=2048&batch=16&timeout_ms=1",
        );
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("\"error_kind\": \"timeout\""), "{body}");
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn bad_queries_are_rejected_with_400() {
        let handle = serve(ServeConfig::default());
        let (status, _, body) = get(handle.addr(), "/v1/cell?sku=z900");
        assert_eq!(status, 400);
        assert!(body.contains("unknown sku"), "{body}");
        assert_eq!(handle.shutdown().stranded_workers, 0);
    }

    #[test]
    fn drain_over_http_stops_admissions_and_strands_nobody() {
        let handle = serve(ServeConfig::default());
        let addr = handle.addr();
        // Warm one cell so the drain has something behind it in the cache.
        let (status, _, _) = get(addr, "/v1/cell?seq=128&batch=2");
        assert_eq!(status, 200);
        let (status, _, body) = request(addr, "POST", "/v1/drain");
        assert_eq!(status, 200);
        assert!(body.contains("\"draining\": true"), "{body}");
        assert!(handle.draining());
        let report = handle.shutdown();
        assert_eq!(report.stranded_workers, 0, "drain must strand no workers");
    }

    #[test]
    fn the_request_lifecycle_is_logged_as_obs_events() {
        let dir = std::env::temp_dir().join(format!("olab-serve-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.jsonl");
        let cfg = ServeConfig {
            log: Some(path.clone()),
            ..ServeConfig::default()
        };
        let handle = serve(cfg);
        let (status, _, _) = get(handle.addr(), "/v1/cell?seq=128&batch=4&timeout_ms=60000");
        assert_eq!(status, 200);
        assert_eq!(handle.shutdown().stranded_workers, 0);
        let log = std::fs::read_to_string(&path).unwrap();
        assert!(log.contains("\"event\": \"request_start\""), "{log}");
        assert!(log.contains("\"event\": \"request_done\""), "{log}");
        assert!(log.contains("\"timeout_ms\": 60000"), "{log}");
        assert!(log.contains("\"outcome\": \"executed\""), "{log}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
