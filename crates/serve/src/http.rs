//! A deliberately tiny HTTP/1.1 surface: enough to read one request line
//! plus headers from a socket and write one response, nothing more.
//!
//! The daemon speaks `Connection: close` semantics — one request per
//! connection — so there is no keep-alive state machine, no chunked
//! transfer coding, and no body parsing (every route is a `GET` query
//! string or a bodyless `POST`). Request heads are capped at 16 KiB so a
//! hostile or broken client cannot grow memory by streaming an endless
//! header section.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The path component before any `?`.
    pub path: String,
    /// The raw query string after `?` (empty when absent), still
    /// percent-encoded.
    pub query: String,
}

/// Reads one request head from `stream`.
///
/// # Errors
///
/// `InvalidData` on a malformed request line or a head exceeding 16 KiB;
/// any underlying socket error is passed through.
pub fn read_request<S: Read>(stream: S) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let method = method.to_string();
    // Drain the header section so the client sees a clean close; the
    // routes carry everything in the request line.
    let mut consumed = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        consumed += n;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        if consumed >= MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    Ok(Request {
        method,
        path,
        query,
    })
}

/// Writes one complete response and flushes. `extra_headers` are emitted
/// verbatim (no trailing CRLF), e.g. `["Retry-After: 2"]`.
pub fn write_response<S: Write>(
    mut stream: S,
    status: u16,
    content_type: &str,
    extra_headers: &[&str],
    body: &str,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for header in extra_headers {
        write!(stream, "{header}\r\n")?;
    }
    write!(stream, "\r\n{body}")?;
    stream.flush()
}

/// The canonical reason phrase for the statuses the daemon emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_method_path_and_query() {
        let raw = b"GET /v1/cell?sku=h100&batch=8 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/cell");
        assert_eq!(req.query, "sku=h100&batch=8");
    }

    #[test]
    fn a_bare_path_has_an_empty_query() {
        let req = read_request(&b"POST /v1/drain HTTP/1.1\r\n\r\n"[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/drain");
        assert_eq!(req.query, "");
    }

    #[test]
    fn an_endless_header_section_is_rejected_not_buffered() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for _ in 0..2048 {
            raw.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_is_invalid_data() {
        assert!(read_request(&b"\r\n"[..]).is_err());
    }

    #[test]
    fn responses_carry_length_and_extra_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "text/plain", &["Retry-After: 2"], "shed\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nshed\n"), "{text}");
    }
}
