//! The daemon's own telemetry families.
//!
//! All serve-side families are wall-clock shaped ([`Determinism::Wall`]):
//! request arrival order, shed decisions, and coalescing wins depend on
//! live socket timing, so none of them belong in the deterministic
//! exposition used for byte-compare gates — the engine's `CrossRun`
//! families cover that half.

use std::sync::OnceLock;

use olab_metrics::{counter, gauge, histogram, Counter, Determinism, Gauge, Histogram};

/// Handles to every serve metric family.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests admitted past the accept queue.
    pub accepted: &'static Counter,
    /// Requests shed with `429` because the queue was full.
    pub shed: &'static Counter,
    /// Requests that piggybacked on another request's in-flight
    /// execution instead of executing themselves.
    pub coalesced: &'static Counter,
    /// Requests that actually executed a cell (leader side).
    pub executed: &'static Counter,
    /// Connections waiting in the admission queue right now.
    pub queue_depth: &'static Gauge,
    /// End-to-end request latency, admission to response, nanoseconds.
    pub request_ns: &'static Histogram,
}

/// The process-wide serve metric handles (registered on first use).
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        accepted: counter(
            "olab_serve_accepted_total",
            Determinism::Wall,
            "Requests admitted past the accept queue.",
        ),
        shed: counter(
            "olab_serve_shed_total",
            Determinism::Wall,
            "Requests shed with 429 because the admission queue was full.",
        ),
        coalesced: counter(
            "olab_serve_coalesced_total",
            Determinism::Wall,
            "Requests served by piggybacking on an identical in-flight execution.",
        ),
        executed: counter(
            "olab_serve_executed_total",
            Determinism::Wall,
            "Requests that executed a cell themselves (coalescing leaders).",
        ),
        queue_depth: gauge(
            "olab_serve_queue_depth",
            Determinism::Wall,
            "Connections waiting in the admission queue.",
        ),
        request_ns: histogram(
            "olab_serve_request_ns",
            "End-to-end request latency from admission to response.",
        ),
    })
}

/// Forces registration of the serve families so expositions are complete
/// even before the first request.
pub fn touch() {
    let _ = serve_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_registers_and_exposes() {
        touch();
        let prom = olab_metrics::render_prom();
        for family in [
            "olab_serve_accepted_total",
            "olab_serve_shed_total",
            "olab_serve_coalesced_total",
            "olab_serve_executed_total",
            "olab_serve_queue_depth",
            "olab_serve_request_ns",
        ] {
            assert!(prom.contains(family), "missing {family} in:\n{prom}");
        }
    }
}
