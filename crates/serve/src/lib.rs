//! overlap-lab sweep-as-a-service: the paper's experiment grid behind a
//! tiny HTTP daemon.
//!
//! `olab serve` wraps the hardened sweep engine ([`olab_core::Sweep`])
//! in a std-only TCP front-end so cells can be requested on demand —
//! with the same robustness story the batch path has, translated to a
//! serving context:
//!
//! - **Admission control** — a bounded accept queue sheds overload at
//!   the door with `429` + `Retry-After` derived from the engine's
//!   observed p90 cell latency ([`server`]).
//! - **Request coalescing** — concurrent requests for the same
//!   content-addressed cell share one execution
//!   ([`olab_grid::CoalesceMap`]); the thundering-herd storm costs one
//!   simulation.
//! - **Deadline propagation** — a request's `timeout_ms` tightens the
//!   engine's per-cell execution guard and bounds the coalescing wait;
//!   late results are discarded for that caller but still cached.
//! - **Graceful degradation and drain** — cache health surfaces in
//!   `/healthz` / `/readyz`, and `POST /v1/drain` (or
//!   [`ServerHandle::shutdown`]) finishes admitted work, strands no
//!   worker, and flushes metrics expositions.
//!
//! The response body contract is *byte identity with the offline sweep*:
//! [`render::render_cell_body`] is the single renderer behind both the
//! daemon and [`oneshot`], which the CLI exposes for CI comparison.
//!
//! Everything is plain `std` — `TcpListener`, worker threads, a
//! hand-rolled HTTP/1.1 head parser — keeping the workspace's
//! zero-registry-dependency invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod render;
pub mod request;
pub mod server;

pub use render::render_cell_body;
pub use request::{parse_query, CellRequest};
pub use server::{start, DrainReport, ServeConfig, ServerHandle};

use olab_core::sweep::cell_descriptor;
use olab_core::Sweep;

/// Runs one cell offline — no sockets, a fresh default engine — and
/// returns exactly the body the daemon would serve for the same query.
///
/// This is the service contract made checkable: CI starts a daemon,
/// fetches `/v1/cell?Q`, and byte-compares against `olab serve
/// --oneshot Q`.
///
/// # Errors
///
/// A human-readable message when the query string does not parse.
pub fn oneshot(query: &str) -> Result<String, String> {
    let cell = parse_query(query)?;
    let outcome = Sweep::new()
        .run(std::slice::from_ref(&cell.experiment))
        .cells
        .remove(0);
    Ok(render_cell_body(
        &cell_descriptor(&cell.experiment),
        &outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_renders_the_canonical_body() {
        let body = oneshot("seq=128&batch=2").expect("default cell renders");
        assert!(body.contains("\"ok\": true"), "{body}");
        assert!(body.starts_with("{\"descriptor\": "), "{body}");
        assert!(body.ends_with("}\n"), "{body}");
    }

    #[test]
    fn oneshot_propagates_parse_errors() {
        let err = oneshot("model=unknown-model").unwrap_err();
        assert!(err.contains("unknown model"), "{err}");
    }
}
