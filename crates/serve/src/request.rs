//! Query-string → [`Experiment`] decoding for the `/v1/cell` route.
//!
//! The wire format is a plain `k=v&k=v` query string (percent-encoding
//! honoured) — no JSON parser enters the request path. Parameter names
//! and accepted values mirror the `olab` CLI flags one-for-one, so a cell
//! is addressed identically from the command line and over HTTP:
//!
//! ```text
//! /v1/cell?sku=h100&gpus=4&model=gpt3-xl&strategy=fsdp&batch=8&seq=256
//! ```
//!
//! Unknown keys are rejected (a typo must not silently select the
//! default cell), and every value error names the offending key.

use olab_core::{Experiment, Strategy};
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;

/// One decoded cell request: the experiment plus the caller's own
/// deadline, which the server propagates into the execution guard.
#[derive(Debug, Clone)]
pub struct CellRequest {
    /// The cell to simulate (or serve from cache).
    pub experiment: Experiment,
    /// The request's deadline budget, milliseconds. `None` = no deadline
    /// beyond the server's own per-cell guard.
    pub timeout_ms: Option<u64>,
}

/// Decodes `%XX` escapes and `+`-as-space in one query component.
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in '{s}'"))?;
                out.push(hex);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query component '{s}' is not UTF-8"))
}

fn parse_sku(s: &str) -> Result<SkuKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "a100" => Ok(SkuKind::A100),
        "h100" => Ok(SkuKind::H100),
        "mi210" => Ok(SkuKind::Mi210),
        "mi250" => Ok(SkuKind::Mi250),
        other => Err(format!(
            "unknown sku '{other}' (expected a100|h100|mi210|mi250)"
        )),
    }
}

fn parse_model(s: &str) -> Result<ModelPreset, String> {
    match s.to_ascii_lowercase().as_str() {
        "gpt3-xl" | "gpt3-1.3b" => Ok(ModelPreset::Gpt3Xl),
        "gpt3-2.7b" => Ok(ModelPreset::Gpt3_2_7B),
        "gpt3-6.7b" => Ok(ModelPreset::Gpt3_6_7B),
        "gpt3-13b" => Ok(ModelPreset::Gpt3_13B),
        "llama2-13b" => Ok(ModelPreset::Llama2_13B),
        other => Err(format!(
            "unknown model '{other}' (expected gpt3-xl|gpt3-2.7b|gpt3-6.7b|gpt3-13b|llama2-13b)"
        )),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s.to_ascii_lowercase().as_str() {
        "fsdp" => Ok(Strategy::Fsdp),
        "pp" | "pipeline" => Ok(Strategy::Pipeline { microbatch_size: 8 }),
        "tp" | "tensor" => Ok(Strategy::TensorParallel),
        other => Err(format!("unknown strategy '{other}' (expected fsdp|pp|tp)")),
    }
}

fn parse_precision(s: &str) -> Result<Precision, String> {
    match s.to_ascii_lowercase().as_str() {
        "fp16" => Ok(Precision::Fp16),
        "bf16" => Ok(Precision::Bf16),
        "fp32" => Ok(Precision::Fp32),
        "tf32" => Ok(Precision::Tf32),
        other => Err(format!("unknown precision '{other}'")),
    }
}

fn parse_datapath(s: &str) -> Result<Datapath, String> {
    match s.to_ascii_lowercase().as_str() {
        "tensor" | "tensorcore" => Ok(Datapath::TensorCore),
        "vector" => Ok(Datapath::Vector),
        other => Err(format!("unknown datapath '{other}'")),
    }
}

fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{key}: cannot parse '{value}'"))
}

/// Decodes a `/v1/cell` query string into a [`CellRequest`].
///
/// Missing parameters take the CLI's defaults (`sku=h100`, `gpus=4`,
/// `model=gpt3-xl`, `strategy=fsdp`, `batch=8`; the rest from
/// [`Experiment::new`]).
///
/// # Errors
///
/// A human-readable message naming the offending key, for the `400`
/// response body.
pub fn parse_query(query: &str) -> Result<CellRequest, String> {
    let mut sku = SkuKind::H100;
    let mut gpus = 4usize;
    let mut model = ModelPreset::Gpt3Xl;
    let mut strategy = Strategy::Fsdp;
    let mut batch = 8u64;
    let mut seq = None;
    let mut microbatch = None;
    let mut precision = None;
    let mut datapath = None;
    let mut power_cap = None;
    let mut freq_cap = None;
    let mut grad_accum = None;
    let mut timeout_ms = None;

    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (raw_key, raw_value) = pair
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{pair}'"))?;
        let key = percent_decode(raw_key)?;
        let value = percent_decode(raw_value)?;
        match key.as_str() {
            "sku" => sku = parse_sku(&value)?,
            "gpus" => gpus = num(&key, &value)?,
            "model" => model = parse_model(&value)?,
            "strategy" => strategy = parse_strategy(&value)?,
            "batch" => batch = num(&key, &value)?,
            "seq" => seq = Some(num(&key, &value)?),
            "microbatch" => microbatch = Some(num(&key, &value)?),
            "precision" => precision = Some(parse_precision(&value)?),
            "datapath" => datapath = Some(parse_datapath(&value)?),
            "power_cap" => power_cap = Some(num::<f64>(&key, &value)?),
            "freq_cap" => freq_cap = Some(num::<f64>(&key, &value)?),
            "grad_accum" => grad_accum = Some(num(&key, &value)?),
            "timeout_ms" => timeout_ms = Some(num(&key, &value)?),
            other => return Err(format!("unknown parameter '{other}'")),
        }
    }

    if let (Strategy::Pipeline { microbatch_size }, Some(mb)) = (&mut strategy, microbatch) {
        *microbatch_size = mb;
    }
    let mut experiment = Experiment::new(sku, gpus, model, strategy, batch);
    if let Some(seq) = seq {
        experiment = experiment.with_seq(seq);
    }
    if let Some(precision) = precision {
        experiment = experiment.with_precision(precision);
    }
    if let Some(datapath) = datapath {
        experiment = experiment.with_datapath(datapath);
    }
    if let Some(watts) = power_cap {
        experiment = experiment.with_power_cap(watts);
    }
    if let Some(factor) = freq_cap {
        experiment = experiment.with_freq_cap(factor);
    }
    if let Some(steps) = grad_accum {
        experiment = experiment.with_grad_accum(steps);
    }
    Ok(CellRequest {
        experiment,
        timeout_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::sweep::cell_key;

    #[test]
    fn an_empty_query_is_the_default_cell() {
        let req = parse_query("").unwrap();
        assert_eq!(req.experiment.sku, SkuKind::H100);
        assert_eq!(req.experiment.n_gpus, 4);
        assert_eq!(req.experiment.model, ModelPreset::Gpt3Xl);
        assert_eq!(req.experiment.strategy, Strategy::Fsdp);
        assert_eq!(req.experiment.batch, 8);
        assert_eq!(req.timeout_ms, None);
    }

    #[test]
    fn a_full_query_round_trips_every_field() {
        let req = parse_query(
            "sku=mi250&gpus=8&model=gpt3-2.7b&strategy=pp&microbatch=4&batch=16&seq=512\
             &precision=bf16&datapath=vector&power_cap=350&freq_cap=0.8&grad_accum=2\
             &timeout_ms=2500",
        )
        .unwrap();
        let e = &req.experiment;
        assert_eq!(e.sku, SkuKind::Mi250);
        assert_eq!(e.n_gpus, 8);
        assert_eq!(e.strategy, Strategy::Pipeline { microbatch_size: 4 });
        assert_eq!(e.batch, 16);
        assert_eq!(e.seq, 512);
        assert_eq!(e.precision, Precision::Bf16);
        assert_eq!(e.datapath, Datapath::Vector);
        assert_eq!(e.power_cap_w, Some(350.0));
        assert_eq!(e.freq_cap, Some(0.8));
        assert_eq!(e.grad_accum_steps, 2);
        assert_eq!(req.timeout_ms, Some(2500));
    }

    #[test]
    fn identical_queries_address_the_same_cell_key() {
        let a = parse_query("sku=a100&batch=8&seq=256").unwrap();
        let b = parse_query("seq=256&batch=8&sku=a100").unwrap();
        assert_eq!(cell_key(&a.experiment), cell_key(&b.experiment));
    }

    #[test]
    fn percent_escapes_and_plus_decode() {
        assert_eq!(percent_decode("gpt3%2Dxl").unwrap(), "gpt3-xl");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
        assert!(percent_decode("%zz").is_err());
        let req = parse_query("model=gpt3%2Dxl").unwrap();
        assert_eq!(req.experiment.model, ModelPreset::Gpt3Xl);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected_by_name() {
        let err = parse_query("skew=h100").unwrap_err();
        assert!(err.contains("skew"), "{err}");
        let err = parse_query("gpus=many").unwrap_err();
        assert!(err.contains("gpus"), "{err}");
        let err = parse_query("sku").unwrap_err();
        assert!(err.contains("key=value"), "{err}");
    }
}
