//! Chrome-trace export: renders a [`SimTrace`] as the JSON event format
//! understood by `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//! with one process per GPU and one thread per stream — the same way
//! PyTorch profiler traces look, so the overlap windows are immediately
//! visible.

use olab_sim::{SimTrace, StreamKind};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a trace as Chrome-trace JSON (an array of complete events).
///
/// Durations are emitted in microseconds (the format's native unit). Tasks
/// spanning several GPUs (collectives) appear once per participant.
pub fn to_chrome_trace(trace: &SimTrace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for record in trace.records() {
        for gpu in &record.participants {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let tid = match record.stream {
                StreamKind::Compute => 0,
                StreamKind::Comm => 1,
            };
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
                escape(&record.label),
                record.stream,
                record.start.as_micros(),
                record.duration().as_micros(),
                gpu.index(),
                tid
            );
        }
    }
    // Thread name metadata so the viewer labels the rows.
    for (g, _) in trace.gpus().iter().enumerate() {
        for (tid, name) in [(0, "compute"), (1, "comm")] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {g}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"gpu{g}/{name}\"}}}}"
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, Machine};
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn sample_trace() -> SimTrace {
        let sku = GpuSku::h100();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            2,
            128,
            Precision::Fp16,
            Datapath::TensorCore,
            ActivationPolicy::Full,
        );
        let w = fsdp::fsdp_timeline(
            &plan,
            &sku,
            &machine.config().topology,
            ExecutionMode::Overlapped,
        );
        execute(&w, &machine).unwrap().trace
    }

    #[test]
    fn output_is_wellformed_json_array() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // Balanced braces (no naive truncation).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn every_task_appears_per_participant() {
        let trace = sample_trace();
        let json = to_chrome_trace(&trace);
        let events = json.matches("\"ph\": \"X\"").count();
        let expected: usize = trace.records().iter().map(|r| r.participants.len()).sum();
        assert_eq!(events, expected);
    }

    #[test]
    fn thread_metadata_names_both_streams() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.contains("gpu0/compute"));
        assert!(json.contains("gpu3/comm"));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
