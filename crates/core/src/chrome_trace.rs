//! Chrome-trace export: renders a [`SimTrace`] as the JSON event format
//! understood by `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//! with one process per GPU and one thread per stream — the same way
//! PyTorch profiler traces look, so the overlap windows are immediately
//! visible.

use crate::fmtutil::json_escape as escape;
use olab_sim::{SimTrace, StreamKind};
use std::fmt::Write as _;

/// An extra interval to render alongside the task events — fault windows,
/// watchdog stalls, communicator rebuilds. Annotations live in their own
/// trace process (pid = number of GPUs), one thread per `track`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnnotation {
    /// Event label shown in the viewer.
    pub name: String,
    /// Row the event is drawn on (e.g. `"throttle"`, `"link"`, `"watchdog"`).
    pub track: String,
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds.
    pub end_s: f64,
}

/// A sampled per-GPU counter series rendered as a Perfetto counter track
/// (`"ph": "C"` events) under the GPU's task timeline — the simulated
/// equivalent of the power/occupancy curves the paper reads from NVML.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name shown on the track (e.g. `"power_w"`).
    pub name: String,
    /// Device the track belongs to (trace pid).
    pub gpu: usize,
    /// `(time_s, value)` samples, ascending in time.
    pub points: Vec<(f64, f64)>,
}

/// Renders a trace as Chrome-trace JSON (an array of complete events).
///
/// Durations are emitted in microseconds (the format's native unit). Tasks
/// spanning several GPUs (collectives) appear once per participant.
pub fn to_chrome_trace(trace: &SimTrace) -> String {
    to_chrome_trace_annotated(trace, &[])
}

/// Like [`to_chrome_trace`], with extra annotation intervals rendered in a
/// dedicated process below the GPUs. With an empty slice the output is
/// byte-identical to [`to_chrome_trace`].
pub fn to_chrome_trace_annotated(trace: &SimTrace, notes: &[TraceAnnotation]) -> String {
    to_chrome_trace_full(trace, notes, &[])
}

/// Like [`to_chrome_trace_annotated`], with Perfetto counter tracks
/// appended after the task and annotation events. With empty slices the
/// output is byte-identical to [`to_chrome_trace`].
pub fn to_chrome_trace_full(
    trace: &SimTrace,
    notes: &[TraceAnnotation],
    counters: &[CounterTrack],
) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for record in trace.records() {
        for gpu in &record.participants {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let tid = match record.stream {
                StreamKind::Compute => 0,
                StreamKind::Comm => 1,
            };
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
                escape(&record.label),
                record.stream,
                record.start.as_micros(),
                record.duration().as_micros(),
                gpu.index(),
                tid
            );
        }
    }
    // Annotations render in their own process, one thread per track, in
    // order of first appearance.
    let fault_pid = trace.gpus().len();
    let mut tracks: Vec<&str> = Vec::new();
    for note in notes {
        let tid = match tracks.iter().position(|t| *t == note.track) {
            Some(i) => i,
            None => {
                tracks.push(&note.track);
                tracks.len() - 1
            }
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"fault\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
            escape(&note.name),
            note.start_s * 1e6,
            (note.end_s - note.start_s).max(0.0) * 1e6,
            fault_pid,
            tid
        );
    }
    // Thread name metadata so the viewer labels the rows.
    for (g, _) in trace.gpus().iter().enumerate() {
        for (tid, name) in [(0, "compute"), (1, "comm")] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {g}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"gpu{g}/{name}\"}}}}"
            );
        }
    }
    for (tid, track) in tracks.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {fault_pid}, \
             \"tid\": {tid}, \"args\": {{\"name\": \"faults/{}\"}}}}",
            escape(track)
        );
    }
    // Counter tracks: one "ph": "C" event per sample, keyed by counter
    // name within the GPU's process so Perfetto draws a curve per track.
    for track in counters {
        let name = escape(&track.name);
        for &(t_s, value) in &track.points {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{name}\", \"cat\": \"counter\", \"ph\": \"C\", \
                 \"ts\": {:.3}, \"pid\": {}, \"args\": {{\"{name}\": {:.6}}}}}",
                t_s * 1e6,
                track.gpu,
                value
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, Machine};
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn sample_trace() -> SimTrace {
        let sku = GpuSku::h100();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            2,
            128,
            Precision::Fp16,
            Datapath::TensorCore,
            ActivationPolicy::Full,
        );
        let w = fsdp::fsdp_timeline(
            &plan,
            &sku,
            &machine.config().topology,
            ExecutionMode::Overlapped,
        );
        execute(&w, &machine).unwrap().trace
    }

    #[test]
    fn output_is_wellformed_json_array() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        crate::fmtutil::validate_json(&json).expect("plain export must parse");
    }

    #[test]
    fn every_task_appears_per_participant() {
        let trace = sample_trace();
        let json = to_chrome_trace(&trace);
        let events = json.matches("\"ph\": \"X\"").count();
        let expected: usize = trace.records().iter().map(|r| r.participants.len()).sum();
        assert_eq!(events, expected);
    }

    #[test]
    fn thread_metadata_names_both_streams() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.contains("gpu0/compute"));
        assert!(json.contains("gpu3/comm"));
    }

    #[test]
    fn no_annotations_is_byte_identical_to_plain_export() {
        let trace = sample_trace();
        assert_eq!(
            to_chrome_trace(&trace),
            to_chrome_trace_annotated(&trace, &[])
        );
    }

    #[test]
    fn annotations_render_in_their_own_process() {
        let trace = sample_trace();
        let notes = vec![
            TraceAnnotation {
                name: "throttle gpu1 x0.65".into(),
                track: "throttle".into(),
                start_s: 0.1,
                end_s: 0.2,
            },
            TraceAnnotation {
                name: "watchdog stall".into(),
                track: "watchdog".into(),
                start_s: 0.15,
                end_s: 0.3,
            },
        ];
        let json = to_chrome_trace_annotated(&trace, &notes);
        let fault_pid = trace.gpus().len();
        assert!(json.contains(&format!("\"pid\": {fault_pid}, \"tid\": 0")));
        assert!(json.contains("faults/throttle"));
        assert!(json.contains("faults/watchdog"));
        assert!(json.contains("\"cat\": \"fault\""));
        crate::fmtutil::validate_json(&json).expect("annotated export must parse");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn empty_counters_are_byte_identical_to_annotated_export() {
        let trace = sample_trace();
        let notes = vec![TraceAnnotation {
            name: "throttle gpu1 x0.65".into(),
            track: "throttle".into(),
            start_s: 0.1,
            end_s: 0.2,
        }];
        assert_eq!(
            to_chrome_trace_annotated(&trace, &notes),
            to_chrome_trace_full(&trace, &notes, &[])
        );
    }

    #[test]
    fn counter_tracks_render_as_counter_events_and_parse() {
        let trace = sample_trace();
        let notes = vec![TraceAnnotation {
            name: "stall \"ar\"".into(),
            track: "watchdog".into(),
            start_s: 0.05,
            end_s: 0.1,
        }];
        let counters = vec![
            CounterTrack {
                name: "power_w".into(),
                gpu: 0,
                points: vec![(0.0, 310.5), (0.1, 655.25)],
            },
            CounterTrack {
                name: "sm_occupancy".into(),
                gpu: 1,
                points: vec![(0.0, 0.75)],
            },
        ];
        let json = to_chrome_trace_full(&trace, &notes, &counters);
        crate::fmtutil::validate_json(&json).expect("full export must parse");
        assert_eq!(json.matches("\"ph\": \"C\"").count(), 3);
        assert!(json.contains("\"args\": {\"power_w\": 655.250000}"));
        assert!(json.contains("\"args\": {\"sm_occupancy\": 0.750000}"));
        assert!(json.contains("\"cat\": \"counter\""));
    }
}
