//! Chrome-trace export: renders a [`SimTrace`] as the JSON event format
//! understood by `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//! with one process per GPU and one thread per stream — the same way
//! PyTorch profiler traces look, so the overlap windows are immediately
//! visible.

use olab_sim::{SimTrace, StreamKind};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An extra interval to render alongside the task events — fault windows,
/// watchdog stalls, communicator rebuilds. Annotations live in their own
/// trace process (pid = number of GPUs), one thread per `track`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnnotation {
    /// Event label shown in the viewer.
    pub name: String,
    /// Row the event is drawn on (e.g. `"throttle"`, `"link"`, `"watchdog"`).
    pub track: String,
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds.
    pub end_s: f64,
}

/// Renders a trace as Chrome-trace JSON (an array of complete events).
///
/// Durations are emitted in microseconds (the format's native unit). Tasks
/// spanning several GPUs (collectives) appear once per participant.
pub fn to_chrome_trace(trace: &SimTrace) -> String {
    to_chrome_trace_annotated(trace, &[])
}

/// Like [`to_chrome_trace`], with extra annotation intervals rendered in a
/// dedicated process below the GPUs. With an empty slice the output is
/// byte-identical to [`to_chrome_trace`].
pub fn to_chrome_trace_annotated(trace: &SimTrace, notes: &[TraceAnnotation]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for record in trace.records() {
        for gpu in &record.participants {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let tid = match record.stream {
                StreamKind::Compute => 0,
                StreamKind::Comm => 1,
            };
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
                escape(&record.label),
                record.stream,
                record.start.as_micros(),
                record.duration().as_micros(),
                gpu.index(),
                tid
            );
        }
    }
    // Annotations render in their own process, one thread per track, in
    // order of first appearance.
    let fault_pid = trace.gpus().len();
    let mut tracks: Vec<&str> = Vec::new();
    for note in notes {
        let tid = match tracks.iter().position(|t| *t == note.track) {
            Some(i) => i,
            None => {
                tracks.push(&note.track);
                tracks.len() - 1
            }
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"fault\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}}}",
            escape(&note.name),
            note.start_s * 1e6,
            (note.end_s - note.start_s).max(0.0) * 1e6,
            fault_pid,
            tid
        );
    }
    // Thread name metadata so the viewer labels the rows.
    for (g, _) in trace.gpus().iter().enumerate() {
        for (tid, name) in [(0, "compute"), (1, "comm")] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {g}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"gpu{g}/{name}\"}}}}"
            );
        }
    }
    for (tid, track) in tracks.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {fault_pid}, \
             \"tid\": {tid}, \"args\": {{\"name\": \"faults/{}\"}}}}",
            escape(track)
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, Machine};
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn sample_trace() -> SimTrace {
        let sku = GpuSku::h100();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            2,
            128,
            Precision::Fp16,
            Datapath::TensorCore,
            ActivationPolicy::Full,
        );
        let w = fsdp::fsdp_timeline(
            &plan,
            &sku,
            &machine.config().topology,
            ExecutionMode::Overlapped,
        );
        execute(&w, &machine).unwrap().trace
    }

    #[test]
    fn output_is_wellformed_json_array() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // Balanced braces (no naive truncation).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn every_task_appears_per_participant() {
        let trace = sample_trace();
        let json = to_chrome_trace(&trace);
        let events = json.matches("\"ph\": \"X\"").count();
        let expected: usize = trace.records().iter().map(|r| r.participants.len()).sum();
        assert_eq!(events, expected);
    }

    #[test]
    fn thread_metadata_names_both_streams() {
        let json = to_chrome_trace(&sample_trace());
        assert!(json.contains("gpu0/compute"));
        assert!(json.contains("gpu3/comm"));
    }

    #[test]
    fn no_annotations_is_byte_identical_to_plain_export() {
        let trace = sample_trace();
        assert_eq!(
            to_chrome_trace(&trace),
            to_chrome_trace_annotated(&trace, &[])
        );
    }

    #[test]
    fn annotations_render_in_their_own_process() {
        let trace = sample_trace();
        let notes = vec![
            TraceAnnotation {
                name: "throttle gpu1 x0.65".into(),
                track: "throttle".into(),
                start_s: 0.1,
                end_s: 0.2,
            },
            TraceAnnotation {
                name: "watchdog stall".into(),
                track: "watchdog".into(),
                start_s: 0.15,
                end_s: 0.3,
            },
        ];
        let json = to_chrome_trace_annotated(&trace, &notes);
        let fault_pid = trace.gpus().len();
        assert!(json.contains(&format!("\"pid\": {fault_pid}, \"tid\": 0")));
        assert!(json.contains("faults/throttle"));
        assert!(json.contains("faults/watchdog"));
        assert!(json.contains("\"cat\": \"fault\""));
        // Still balanced and well-formed.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
