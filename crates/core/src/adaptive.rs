//! Adaptive overlap scheduling — the paper's proposed mitigation
//! ("optimizing workload scheduling and improving the management of
//! overlapping execution", Sec. V-B), implemented.
//!
//! Instead of the always-overlap consensus the paper challenges, the
//! adaptive scheduler searches the FSDP selective-overlap policy space
//! (prefetch all-gathers? overlap reduce-scatters?) and picks the policy
//! that optimizes a chosen objective. On lightly-contended fabrics full
//! overlap wins everything; on heavily-contended ones (MI250) partially or
//! fully serialized policies can win **energy** and **EDP**, because
//! overlap's contention stretches near-peak-power compute.

use crate::{Experiment, ExperimentError, ExperimentReport, Strategy};
use olab_parallel::fsdp::FsdpOverlap;
use std::fmt;

/// What the adaptive scheduler optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Iteration latency (seconds).
    Latency,
    /// Iteration energy (joules).
    Energy,
    /// Energy-delay product.
    Edp,
}

impl Objective {
    /// All objectives.
    pub const ALL: [Objective; 3] = [Objective::Latency, Objective::Energy, Objective::Edp];

    /// Scores a report (lower is better).
    pub fn score(self, report: &ExperimentReport) -> f64 {
        let latency = report.metrics.e2e_overlapped_s;
        let energy = report.metrics.energy_j;
        match self {
            Objective::Latency => latency,
            Objective::Energy => energy,
            Objective::Edp => latency * energy,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Latency => write!(f, "latency"),
            Objective::Energy => write!(f, "energy"),
            Objective::Edp => write!(f, "EDP"),
        }
    }
}

/// One evaluated overlap policy.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The policy.
    pub policy: FsdpOverlap,
    /// Its full report.
    pub report: ExperimentReport,
    /// Its score under the tuning objective.
    pub score: f64,
}

/// The scheduler's decision.
#[derive(Debug, Clone)]
pub struct AdaptiveChoice {
    /// The objective tuned for.
    pub objective: Objective,
    /// The winning candidate (first element) and all others, sorted by
    /// ascending score.
    pub candidates: Vec<Candidate>,
}

impl AdaptiveChoice {
    /// The winning policy.
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }

    /// Improvement of the winner over the always-overlap default, as a
    /// fraction of the default's score.
    pub fn gain_over_default(&self) -> f64 {
        let default = self
            .candidates
            .iter()
            .find(|c| c.policy == FsdpOverlap::default())
            .expect("default policy is always evaluated");
        1.0 - self.best().score / default.score
    }
}

/// Evaluates every FSDP overlap policy for an experiment and picks the best
/// under `objective`.
///
/// # Errors
///
/// Returns the underlying [`ExperimentError`] if the experiment is
/// infeasible (OOM) or a simulation fails; returns
/// [`ExperimentError::InvalidConfig`] for non-FSDP strategies.
pub fn tune_fsdp(
    experiment: &Experiment,
    objective: Objective,
) -> Result<AdaptiveChoice, ExperimentError> {
    if !matches!(experiment.strategy, Strategy::Fsdp) {
        return Err(ExperimentError::InvalidConfig(
            "adaptive overlap tuning applies to FSDP experiments".into(),
        ));
    }
    let mut candidates = Vec::with_capacity(4);
    for policy in FsdpOverlap::all_policies() {
        let report = experiment.clone().with_fsdp_overlap(policy).run()?;
        let score = objective.score(&report);
        candidates.push(Candidate {
            policy,
            report,
            score,
        });
    }
    candidates.sort_by(|a, b| a.score.total_cmp(&b.score));
    Ok(AdaptiveChoice {
        objective,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn experiment(sku: SkuKind) -> Experiment {
        Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    #[test]
    fn latency_tuning_prefers_full_overlap_on_h100() {
        let choice = tune_fsdp(&experiment(SkuKind::H100), Objective::Latency).unwrap();
        assert_eq!(choice.best().policy, FsdpOverlap::default());
        assert_eq!(choice.candidates.len(), 4);
    }

    #[test]
    fn energy_tuning_can_prefer_serialization_on_mi250() {
        let choice = tune_fsdp(&experiment(SkuKind::Mi250), Objective::Energy).unwrap();
        // On the heavily-contended MI250 the all-overlap policy is *not*
        // the energy optimum.
        assert_ne!(
            choice.best().policy,
            FsdpOverlap::default(),
            "expected a serialized policy to win energy on MI250"
        );
        assert!(choice.gain_over_default() > 0.0);
    }

    #[test]
    fn candidates_are_sorted_ascending() {
        let choice = tune_fsdp(&experiment(SkuKind::A100), Objective::Edp).unwrap();
        for pair in choice.candidates.windows(2) {
            assert!(pair[0].score <= pair[1].score);
        }
    }

    #[test]
    fn non_fsdp_strategies_are_rejected() {
        let exp = Experiment::new(
            SkuKind::A100,
            4,
            ModelPreset::Gpt3Xl,
            Strategy::TensorParallel,
            8,
        );
        assert!(matches!(
            tune_fsdp(&exp, Objective::Latency),
            Err(ExperimentError::InvalidConfig(_))
        ));
    }

    #[test]
    fn objectives_display_distinctly() {
        let names: Vec<String> = Objective::ALL.iter().map(|o| o.to_string()).collect();
        assert_eq!(names, vec!["latency", "energy", "EDP"]);
    }
}
