//! Executing schedules and collecting run statistics.

use crate::Machine;
use olab_parallel::Op;
use olab_power::PowerTrace;
use olab_sim::{
    Engine, EngineObserver, GpuId, NullObserver, SimError, SimTrace, StreamKind, Workload,
};

/// Per-GPU statistics of one run.
#[derive(Debug, Clone)]
pub struct GpuRunStats {
    /// Sum of compute-kernel durations, seconds.
    pub compute_s: f64,
    /// Sum of communication-task durations, seconds.
    pub comm_s: f64,
    /// Compute time co-active with communication, seconds (Eq. 2 numerator).
    pub overlapped_compute_s: f64,
    /// Communication time co-active with compute — the *hidden* comm time.
    pub hidden_comm_s: f64,
    /// Exact power trace.
    pub power: PowerTrace,
    /// Overlap windows (both streams busy), as (start, end) seconds.
    pub overlap_windows: Vec<(f64, f64)>,
}

/// Output of executing one schedule.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The raw simulation trace.
    pub trace: SimTrace,
    /// End-to-end iteration time, seconds.
    pub e2e_s: f64,
    /// Per-GPU statistics.
    pub gpus: Vec<GpuRunStats>,
}

impl RunResult {
    /// Total compute time across GPUs, seconds.
    pub fn compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.compute_s).sum()
    }

    /// Total communication time across GPUs, seconds.
    pub fn comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.comm_s).sum()
    }

    /// Total compute time co-active with communication, seconds.
    pub fn overlapped_compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.overlapped_compute_s).sum()
    }

    /// Total hidden (co-active) communication time, seconds.
    pub fn hidden_comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.hidden_comm_s).sum()
    }

    /// Eq. 2: fraction of compute time overlapped with communication.
    pub fn overlap_ratio(&self) -> f64 {
        let c = self.compute_s();
        if c > 0.0 {
            self.overlapped_compute_s() / c
        } else {
            0.0
        }
    }

    /// Mean over GPUs of the time-average power, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.gpus.is_empty() {
            return 0.0;
        }
        self.gpus.iter().map(|g| g.power.average()).sum::<f64>() / self.gpus.len() as f64
    }

    /// Highest instantaneous draw across GPUs, watts.
    pub fn peak_power_w(&self) -> f64 {
        self.gpus
            .iter()
            .map(|g| g.power.peak_instantaneous())
            .fold(0.0, f64::max)
    }

    /// Total energy across GPUs, joules.
    pub fn energy_j(&self) -> f64 {
        self.gpus.iter().map(|g| g.power.energy_j()).sum()
    }
}

/// Runs a schedule on a machine.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine (malformed DAG, deadlock, or a
/// misbehaving rate model).
pub fn execute(workload: &Workload<Op>, machine: &Machine) -> Result<RunResult, SimError> {
    execute_model(workload, machine.clone())
}

/// Like [`execute`], driving an [`EngineObserver`] through the run so
/// telemetry sinks see task edges and per-epoch counters as they happen.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_observed<O: EngineObserver>(
    workload: &Workload<Op>,
    machine: &Machine,
    obs: &mut O,
) -> Result<RunResult, SimError> {
    execute_model_observed(workload, machine.clone(), obs)
}

/// Runs a schedule on any [`RateModel`] pricing [`Op`] payloads — the hook
/// that lets wrappers (fault injectors, what-if models) reuse the standard
/// per-GPU statistics pipeline. Pass `&mut model` to inspect the model's
/// state after the run.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_model<M>(workload: &Workload<Op>, model: M) -> Result<RunResult, SimError>
where
    M: olab_sim::RateModel<Payload = Op>,
{
    execute_model_observed(workload, model, &mut NullObserver)
}

/// Like [`execute_model`], driving an [`EngineObserver`] through the run —
/// the instrumented path under the `olab-obs` telemetry layer.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_model_observed<M, O>(
    workload: &Workload<Op>,
    model: M,
    obs: &mut O,
) -> Result<RunResult, SimError>
where
    M: olab_sim::RateModel<Payload = Op>,
    O: EngineObserver,
{
    let trace = Engine::new(model).run_observed(workload, obs)?;
    let n = workload.n_gpus();
    let mut gpus = Vec::with_capacity(n);
    for g in 0..n {
        let gpu = GpuId(g as u16);
        let activity = trace.gpu(gpu);
        gpus.push(GpuRunStats {
            compute_s: trace.stream_time_on(gpu, StreamKind::Compute).as_secs(),
            comm_s: trace.stream_time_on(gpu, StreamKind::Comm).as_secs(),
            overlapped_compute_s: trace.coactive_time_on(gpu, StreamKind::Compute).as_secs(),
            hidden_comm_s: trace.coactive_time_on(gpu, StreamKind::Comm).as_secs(),
            power: PowerTrace::from_segments(&activity.power),
            overlap_windows: activity
                .overlap_windows
                .iter()
                .map(|w| (w.start.as_secs(), w.end.as_secs()))
                .collect(),
        });
    }
    Ok(RunResult {
        e2e_s: trace.makespan().as_secs(),
        trace,
        gpus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn tiny_fsdp(mode: ExecutionMode) -> RunResult {
        let sku = GpuSku::h100();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 2,
            seq: 128,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            grad_accum_steps: 1,
            overlap: Default::default(),
        };
        let w = fsdp::fsdp_timeline(&plan, &sku, &machine.config().topology, mode);
        execute(&w, &machine).expect("fsdp executes")
    }

    #[test]
    fn overlapped_beats_sequential_end_to_end() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(
            ovl.e2e_s < seq.e2e_s,
            "overlap {} should beat sequential {}",
            ovl.e2e_s,
            seq.e2e_s
        );
    }

    #[test]
    fn sequential_mode_has_zero_overlap_ratio() {
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(seq.overlap_ratio() < 1e-9, "got {}", seq.overlap_ratio());
    }

    #[test]
    fn overlapped_mode_hides_communication() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        assert!(ovl.overlap_ratio() > 0.02, "got {}", ovl.overlap_ratio());
        assert!(ovl.hidden_comm_s() > 0.0);
        assert!(!ovl.gpus[0].overlap_windows.is_empty());
    }

    #[test]
    fn compute_time_is_larger_under_overlap_than_sequential() {
        // Eq. 1's numerator: contention stretches compute kernels.
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(ovl.compute_s() > seq.compute_s());
    }

    #[test]
    fn power_statistics_are_populated() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        assert!(ovl.average_power_w() > GpuSku::h100().idle_w);
        assert!(ovl.peak_power_w() > ovl.average_power_w());
        assert!(ovl.energy_j() > 0.0);
    }
}
