//! Executing schedules and collecting run statistics.

use crate::Machine;
use olab_parallel::Op;
use olab_power::PowerTrace;
use olab_sim::{
    Engine, EngineObserver, GpuId, NullObserver, SimError, SimTrace, StreamKind, Workload,
};

/// Per-GPU statistics of one run.
#[derive(Debug, Clone)]
pub struct GpuRunStats {
    /// Sum of compute-kernel durations, seconds.
    pub compute_s: f64,
    /// Sum of communication-task durations, seconds.
    pub comm_s: f64,
    /// Compute time co-active with communication, seconds (Eq. 2 numerator).
    pub overlapped_compute_s: f64,
    /// Communication time co-active with compute — the *hidden* comm time.
    pub hidden_comm_s: f64,
    /// Exact power trace.
    pub power: PowerTrace,
    /// Overlap windows (both streams busy), as (start, end) seconds.
    pub overlap_windows: Vec<(f64, f64)>,
}

/// Output of executing one schedule.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The raw simulation trace.
    pub trace: SimTrace,
    /// End-to-end iteration time, seconds.
    pub e2e_s: f64,
    /// Per-GPU statistics.
    pub gpus: Vec<GpuRunStats>,
}

impl RunResult {
    /// Total compute time across GPUs, seconds.
    pub fn compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.compute_s).sum()
    }

    /// Total communication time across GPUs, seconds.
    pub fn comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.comm_s).sum()
    }

    /// Total compute time co-active with communication, seconds.
    pub fn overlapped_compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.overlapped_compute_s).sum()
    }

    /// Total hidden (co-active) communication time, seconds.
    pub fn hidden_comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.hidden_comm_s).sum()
    }

    /// Eq. 2: fraction of compute time overlapped with communication.
    pub fn overlap_ratio(&self) -> f64 {
        let c = self.compute_s();
        if c > 0.0 {
            self.overlapped_compute_s() / c
        } else {
            0.0
        }
    }

    /// Mean over GPUs of the time-average power, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.gpus.is_empty() {
            return 0.0;
        }
        self.gpus.iter().map(|g| g.power.average()).sum::<f64>() / self.gpus.len() as f64
    }

    /// One-pass power summary: (mean average watts, peak watts, total
    /// joules). Matches [`average_power_w`](RunResult::average_power_w),
    /// [`peak_power_w`](RunResult::peak_power_w) and
    /// [`energy_j`](RunResult::energy_j) bit-for-bit while walking each
    /// GPU's segments once instead of three times.
    pub fn power_summary(&self) -> (f64, f64, f64) {
        let (mut avg, mut peak, mut energy) = (0.0f64, 0.0f64, 0.0f64);
        for g in &self.gpus {
            let s = g.power.stats();
            avg += s.average_w;
            peak = peak.max(s.peak_w);
            energy += s.energy_j;
        }
        let avg = if self.gpus.is_empty() {
            0.0
        } else {
            avg / self.gpus.len() as f64
        };
        (avg, peak, energy)
    }

    /// Highest instantaneous draw across GPUs, watts.
    pub fn peak_power_w(&self) -> f64 {
        self.gpus
            .iter()
            .map(|g| g.power.peak_instantaneous())
            .fold(0.0, f64::max)
    }

    /// Total energy across GPUs, joules.
    pub fn energy_j(&self) -> f64 {
        self.gpus.iter().map(|g| g.power.energy_j()).sum()
    }
}

/// Scalar per-GPU statistics of one run — the [`GpuRunStats`] quantities
/// without the materialized power trace or window list.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LeanGpuStats {
    /// Sum of compute-kernel durations, seconds.
    pub compute_s: f64,
    /// Sum of communication-task durations, seconds.
    pub comm_s: f64,
    /// Compute time co-active with communication, seconds (Eq. 2 numerator).
    pub overlapped_compute_s: f64,
    /// Communication time co-active with compute — the *hidden* comm time.
    pub hidden_comm_s: f64,
    /// Time-average power over the run, watts.
    pub average_power_w: f64,
    /// Peak instantaneous power, watts.
    pub peak_power_w: f64,
    /// Total energy over the run, joules.
    pub energy_j: f64,
    /// Number of merged overlap windows (both streams busy).
    pub overlap_windows: usize,
}

/// Scalar-only output of executing one schedule: everything a metrics
/// consumer reads from a [`RunResult`], with no trace, task records, or
/// power segments behind it.
///
/// Produced either by [`execute_lean`] (where the analytic fast path can
/// compute these quantities directly, without materializing a trace at
/// all — its cheapest mode) or from an existing full result via
/// [`LeanRun::summarize`].
#[derive(Debug, Clone, PartialEq)]
pub struct LeanRun {
    /// End-to-end iteration time, seconds.
    pub e2e_s: f64,
    /// Per-GPU scalar statistics.
    pub gpus: Vec<LeanGpuStats>,
}

impl LeanRun {
    /// Reduces a full [`RunResult`] to its scalar statistics. Each quantity
    /// equals the corresponding [`RunResult`] / [`GpuRunStats`] accessor
    /// bit-for-bit; the differential suite in `olab-oracle` pins that the
    /// fast path's directly-computed [`execute_lean`] output agrees with
    /// this reduction of the event loop's result.
    pub fn summarize(full: &RunResult) -> LeanRun {
        LeanRun {
            e2e_s: full.e2e_s,
            gpus: full
                .gpus
                .iter()
                .map(|g| {
                    let p = g.power.stats();
                    LeanGpuStats {
                        compute_s: g.compute_s,
                        comm_s: g.comm_s,
                        overlapped_compute_s: g.overlapped_compute_s,
                        hidden_comm_s: g.hidden_comm_s,
                        average_power_w: p.average_w,
                        peak_power_w: p.peak_w,
                        energy_j: p.energy_j,
                        overlap_windows: g.overlap_windows.len(),
                    }
                })
                .collect(),
        }
    }

    /// Total compute time across GPUs, seconds.
    pub fn compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.compute_s).sum()
    }

    /// Total communication time across GPUs, seconds.
    pub fn comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.comm_s).sum()
    }

    /// Total compute time co-active with communication, seconds.
    pub fn overlapped_compute_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.overlapped_compute_s).sum()
    }

    /// Total hidden (co-active) communication time, seconds.
    pub fn hidden_comm_s(&self) -> f64 {
        self.gpus.iter().map(|g| g.hidden_comm_s).sum()
    }

    /// Eq. 2: fraction of compute time overlapped with communication.
    pub fn overlap_ratio(&self) -> f64 {
        let c = self.compute_s();
        if c > 0.0 {
            self.overlapped_compute_s() / c
        } else {
            0.0
        }
    }

    /// Mean over GPUs of the time-average power, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.gpus.is_empty() {
            return 0.0;
        }
        self.gpus.iter().map(|g| g.average_power_w).sum::<f64>() / self.gpus.len() as f64
    }

    /// Highest instantaneous draw across GPUs, watts.
    pub fn peak_power_w(&self) -> f64 {
        self.gpus.iter().map(|g| g.peak_power_w).fold(0.0, f64::max)
    }

    /// Total energy across GPUs, joules.
    pub fn energy_j(&self) -> f64 {
        self.gpus.iter().map(|g| g.energy_j).sum()
    }
}

/// Runs a schedule on a machine.
///
/// When the cell qualifies (see [`CellClassifier`](crate::CellClassifier))
/// the run is served by the contention-free analytic fast path instead of
/// the event loop; the result is the same to floating-point rounding (the
/// differential suite in `olab-oracle` pins this) and
/// [`fastpath::fast_runs`](crate::fastpath::fast_runs) /
/// [`SweepStats::fast_path`](crate::SweepStats) record which path ran.
/// Generic models going through [`execute_model`] — fault injectors,
/// wrappers — never reach the classifier: only plain `Machine` execution
/// can skip the event loop.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine (malformed DAG, deadlock, or a
/// misbehaving rate model).
pub fn execute(workload: &Workload<Op>, machine: &Machine) -> Result<RunResult, SimError> {
    let start = olab_metrics::now_if_enabled();
    if crate::fastpath::machine_eligible(machine) {
        if let Some(result) = crate::analytic::execute_fast(workload, machine) {
            crate::fastpath::note_fast_run();
            let m = crate::fastpath::route_metrics();
            m.fast_full.inc();
            m.fast_full_ns.observe_since(start);
            return Ok(result);
        }
    }
    crate::fastpath::note_event_loop_run();
    let result = execute_model(workload, machine.clone());
    let m = crate::fastpath::route_metrics();
    m.event_loop_full.inc();
    m.event_loop_full_ns.observe_since(start);
    result
}

/// Runs a schedule on a machine, producing only the scalar [`LeanRun`]
/// metrics.
///
/// This is the cheapest way to evaluate a cell when the caller needs
/// numbers, not traces: a fast-path-eligible run computes the statistics in
/// closed form without materializing task records or power segments at all,
/// while an ineligible run falls back to the event loop and reduces its
/// full result with [`LeanRun::summarize`]. Path routing and counters match
/// [`execute`] exactly.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine (malformed DAG, deadlock, or a
/// misbehaving rate model).
pub fn execute_lean(workload: &Workload<Op>, machine: &Machine) -> Result<LeanRun, SimError> {
    let start = olab_metrics::now_if_enabled();
    if crate::fastpath::machine_eligible(machine) {
        if let Some(result) = crate::analytic::execute_fast_lean(workload, machine) {
            crate::fastpath::note_fast_run();
            let m = crate::fastpath::route_metrics();
            m.fast_lean.inc();
            m.fast_lean_ns.observe_since(start);
            return Ok(result);
        }
    }
    crate::fastpath::note_event_loop_run();
    let result = execute_model(workload, machine.clone())?;
    let m = crate::fastpath::route_metrics();
    m.event_loop_lean.inc();
    m.event_loop_lean_ns.observe_since(start);
    Ok(LeanRun::summarize(&result))
}

/// Runs a schedule on a machine through the event loop unconditionally,
/// bypassing the fast-path classifier (and its counters). This is the
/// reference implementation the differential harness and the `cell_cost`
/// benchmark compare against.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_event_loop(
    workload: &Workload<Op>,
    machine: &Machine,
) -> Result<RunResult, SimError> {
    execute_model(workload, machine.clone())
}

/// Like [`execute`], driving an [`EngineObserver`] through the run so
/// telemetry sinks see task edges and per-epoch counters as they happen.
///
/// A disabled observer (`O::ENABLED == false`) compiles the instrumentation
/// away, so the run routes through [`execute`] and stays fast-path
/// eligible; an enabled observer forces the event loop (only it can drive
/// task-edge and epoch callbacks).
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_observed<O: EngineObserver>(
    workload: &Workload<Op>,
    machine: &Machine,
    obs: &mut O,
) -> Result<RunResult, SimError> {
    if !O::ENABLED {
        return execute(workload, machine);
    }
    execute_model_observed(workload, machine.clone(), obs)
}

/// Runs a schedule on any [`RateModel`] pricing [`Op`] payloads — the hook
/// that lets wrappers (fault injectors, what-if models) reuse the standard
/// per-GPU statistics pipeline. Pass `&mut model` to inspect the model's
/// state after the run.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_model<M>(workload: &Workload<Op>, model: M) -> Result<RunResult, SimError>
where
    M: olab_sim::RateModel<Payload = Op>,
{
    execute_model_observed(workload, model, &mut NullObserver)
}

/// Like [`execute_model`], driving an [`EngineObserver`] through the run —
/// the instrumented path under the `olab-obs` telemetry layer.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn execute_model_observed<M, O>(
    workload: &Workload<Op>,
    model: M,
    obs: &mut O,
) -> Result<RunResult, SimError>
where
    M: olab_sim::RateModel<Payload = Op>,
    O: EngineObserver,
{
    let trace = Engine::new(model).run_observed(workload, obs)?;
    Ok(run_result_from_trace(trace, workload.n_gpus()))
}

/// Derives the per-GPU statistics of a [`RunResult`] from a trace. Both
/// execution paths (event loop and analytic fast path) funnel through this,
/// so the statistics derivation is shared by construction.
pub(crate) fn run_result_from_trace(trace: SimTrace, n_gpus: usize) -> RunResult {
    // One pass over the records accumulates all four per-(GPU, stream)
    // sums. Each (gpu, stream) bucket sees its records in the same order
    // `SimTrace::stream_time_on`/`coactive_time_on` would visit them, so
    // the totals are bit-identical to the accessor-per-quantity derivation
    // this replaces — at 2×streams×gpus fewer record walks.
    let mut busy = vec![[olab_sim::SimTime::ZERO; 2]; n_gpus];
    let mut coactive = vec![[olab_sim::SimTime::ZERO; 2]; n_gpus];
    for r in trace.records() {
        let s = r.stream.index();
        for g in &r.participants {
            busy[g.index()][s] += r.duration();
            coactive[g.index()][s] += r.coactive;
        }
    }
    let mut gpus = Vec::with_capacity(n_gpus);
    for g in 0..n_gpus {
        let activity = trace.gpu(GpuId(g as u16));
        gpus.push(GpuRunStats {
            compute_s: busy[g][StreamKind::Compute.index()].as_secs(),
            comm_s: busy[g][StreamKind::Comm.index()].as_secs(),
            overlapped_compute_s: coactive[g][StreamKind::Compute.index()].as_secs(),
            hidden_comm_s: coactive[g][StreamKind::Comm.index()].as_secs(),
            power: PowerTrace::from_segments(&activity.power),
            overlap_windows: activity
                .overlap_windows
                .iter()
                .map(|w| (w.start.as_secs(), w.end.as_secs()))
                .collect(),
        });
    }
    RunResult {
        e2e_s: trace.makespan().as_secs(),
        trace,
        gpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn tiny_fsdp(mode: ExecutionMode) -> RunResult {
        let sku = GpuSku::h100();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 2,
            seq: 128,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            grad_accum_steps: 1,
            overlap: Default::default(),
        };
        let w = fsdp::fsdp_timeline(&plan, &sku, &machine.config().topology, mode);
        execute(&w, &machine).expect("fsdp executes")
    }

    #[test]
    fn overlapped_beats_sequential_end_to_end() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(
            ovl.e2e_s < seq.e2e_s,
            "overlap {} should beat sequential {}",
            ovl.e2e_s,
            seq.e2e_s
        );
    }

    #[test]
    fn sequential_mode_has_zero_overlap_ratio() {
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(seq.overlap_ratio() < 1e-9, "got {}", seq.overlap_ratio());
    }

    #[test]
    fn overlapped_mode_hides_communication() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        assert!(ovl.overlap_ratio() > 0.02, "got {}", ovl.overlap_ratio());
        assert!(ovl.hidden_comm_s() > 0.0);
        assert!(!ovl.gpus[0].overlap_windows.is_empty());
    }

    #[test]
    fn compute_time_is_larger_under_overlap_than_sequential() {
        // Eq. 1's numerator: contention stretches compute kernels.
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        let seq = tiny_fsdp(ExecutionMode::Sequential);
        assert!(ovl.compute_s() > seq.compute_s());
    }

    #[test]
    fn power_statistics_are_populated() {
        let ovl = tiny_fsdp(ExecutionMode::Overlapped);
        assert!(ovl.average_power_w() > GpuSku::h100().idle_w);
        assert!(ovl.peak_power_w() > ovl.average_power_w());
        assert!(ovl.energy_j() > 0.0);
    }
}
