//! Closed-form first-order estimates of FSDP iteration time.
//!
//! The simulator prices contention epoch by epoch; this module computes
//! what a back-of-envelope model (the kind the paper says distributed
//! frameworks implicitly assume: "constant computation and communication
//! latencies") predicts. It serves two purposes:
//!
//! * a **fast planner** — microseconds instead of milliseconds per
//!   configuration, useful for sweeping thousands of candidate setups;
//! * a **cross-check** — integration tests assert the simulator stays
//!   within a sane band of the closed form for the quantities the closed
//!   form can capture (isolated compute/comm totals, the sequential bound),
//!   and quantify exactly where the naive model breaks (the contention the
//!   paper characterizes).

use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{roofline, GpuSku};
use olab_models::memory::ActivationPolicy;
use olab_models::ops;
use olab_net::Topology;
use olab_parallel::fsdp::FsdpPlan;

/// First-order estimates for one FSDP iteration, per GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimate {
    /// Sum of isolated compute-kernel durations, seconds.
    pub compute_s: f64,
    /// Sum of isolated collective durations, seconds.
    pub comm_s: f64,
    /// Sequential execution estimate: compute + comm.
    pub e2e_sequential_s: f64,
    /// Contention-free overlap estimate: compute plus the comm that cannot
    /// hide (the first forward all-gather, plus any comm overhang beyond
    /// the compute it overlaps).
    pub e2e_ideal_s: f64,
}

impl AnalyticEstimate {
    /// Communication-to-computation ratio.
    pub fn comm_ratio(&self) -> f64 {
        if self.compute_s > 0.0 {
            self.comm_s / self.compute_s
        } else {
            0.0
        }
    }
}

/// Estimates one FSDP iteration analytically.
pub fn estimate_fsdp(plan: &FsdpPlan, sku: &GpuSku, topo: &Topology) -> AnalyticEstimate {
    let layer = ops::layer_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let head = ops::head_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let emb = ops::embedding_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let layers = f64::from(plan.model.layers);
    let steps = f64::from(plan.grad_accum_steps);

    let kernel_time = |kernels: &[olab_gpu::KernelKind]| -> f64 {
        kernels
            .iter()
            .map(|k| roofline::isolated_duration(k, sku, plan.precision, plan.datapath, 1.0))
            .sum()
    };

    let fwd = kernel_time(&layer.forward);
    let bwd = match plan.activation_policy {
        ActivationPolicy::Full => kernel_time(&layer.backward),
        ActivationPolicy::Recompute => kernel_time(&layer.forward) + kernel_time(&layer.backward),
    };
    let edge = kernel_time(&emb) + kernel_time(&head.forward) + kernel_time(&head.backward);
    let adam = roofline::isolated_duration(
        &ops::optimizer_kernel(plan.model.param_count() / plan.ranks as u64),
        sku,
        plan.precision,
        plan.datapath,
        1.0,
    );
    let accum_overhead = if plan.grad_accum_steps > 1 {
        (steps - 1.0)
            * layers
            * roofline::isolated_duration(
                &olab_gpu::KernelKind::Elementwise {
                    elems: plan.model.layer_params(),
                    flops_per_elem: 1,
                    streams: 3,
                },
                sku,
                plan.precision,
                plan.datapath,
                1.0,
            )
    } else {
        0.0
    };
    let compute_s = steps * (layers * (fwd + bwd) + edge) + adam + accum_overhead;

    let group: Vec<olab_sim::GpuId> = (0..plan.ranks as u16).map(olab_sim::GpuId).collect();
    let layer_bytes = plan.layer_bytes();
    let ag = lower(
        &Collective::all_gather(layer_bytes, group.clone()),
        Algorithm::auto(olab_ccl::CollectiveKind::AllGather, layer_bytes, plan.ranks),
        sku,
        topo,
        plan.precision,
    )
    .isolated_duration_s();
    let rs = lower(
        &Collective::reduce_scatter(layer_bytes, group),
        Algorithm::auto(
            olab_ccl::CollectiveKind::ReduceScatter,
            layer_bytes,
            plan.ranks,
        ),
        sku,
        topo,
        plan.precision,
    )
    .isolated_duration_s();
    // Per micro-step: forward + backward all-gathers; final step adds the
    // reduce-scatters.
    let comm_s = steps * layers * 2.0 * ag + layers * rs;

    // Ideal overlap: forward comm hides under forward compute (except the
    // un-prefetchable first gather), backward likewise.
    let fwd_comm = layers * ag;
    let bwd_comm = layers * (ag + rs / steps.max(1.0));
    let fwd_exposed = ag + (fwd_comm - layers * fwd).max(0.0);
    let bwd_exposed = (bwd_comm - layers * bwd).max(0.0);
    let e2e_ideal_s = compute_s + steps * (fwd_exposed + bwd_exposed);

    AnalyticEstimate {
        compute_s,
        comm_s,
        e2e_sequential_s: compute_s + comm_s,
        e2e_ideal_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, Strategy};
    use olab_gpu::{Datapath, Precision, SkuKind};
    use olab_models::ModelPreset;

    fn estimate_and_simulate(sku: SkuKind) -> (AnalyticEstimate, crate::ExperimentReport) {
        let exp = Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(512);
        let policy = exp.validate().unwrap();
        let machine = exp.machine();
        let plan = FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            8,
            512,
            Precision::Fp16,
            Datapath::TensorCore,
            policy,
        );
        let est = estimate_fsdp(&plan, &machine.config().sku, &machine.config().topology);
        (est, exp.run().unwrap())
    }

    #[test]
    fn analytic_compute_matches_sequential_simulation() {
        // With no contention, the simulator's per-GPU compute time is the
        // sum of isolated kernel durations — the closed form exactly.
        let (est, report) = estimate_and_simulate(SkuKind::H100);
        let simulated = report.sequential.compute_s() / 4.0;
        let ratio = est.compute_s / simulated;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn analytic_sequential_bounds_hold_on_all_skus() {
        for sku in SkuKind::ALL {
            let (est, report) = estimate_and_simulate(sku);
            let measured = report.metrics.e2e_sequential_measured_s;
            let ratio = est.e2e_sequential_s / measured;
            assert!((0.85..1.15).contains(&ratio), "{sku}: ratio {ratio}");
        }
    }

    #[test]
    fn naive_model_underestimates_overlapped_e2e_under_contention() {
        // The paper's point: assuming constant latencies (no contention)
        // underpredicts the overlapped iteration. On the MI250 the gap is
        // large; the ideal estimate must sit at or below the simulated
        // overlapped time.
        let (est, report) = estimate_and_simulate(SkuKind::Mi250);
        assert!(
            est.e2e_ideal_s < report.metrics.e2e_overlapped_s,
            "naive {} vs simulated {}",
            est.e2e_ideal_s,
            report.metrics.e2e_overlapped_s
        );
        // And the gap is what Eq. 4 calls the slowdown. (At this small
        // sequence length the MI250 is already comm-bound, so the analytic
        // ideal includes a large exposed-comm overhang; the remaining gap
        // is pure contention.)
        let gap = report.metrics.e2e_overlapped_s / est.e2e_ideal_s - 1.0;
        assert!(gap > 0.04, "expected a contention gap, got {gap}");
    }

    #[test]
    fn comm_ratio_is_higher_on_slower_fabrics() {
        let (h100, _) = estimate_and_simulate(SkuKind::H100);
        let (mi250, _) = estimate_and_simulate(SkuKind::Mi250);
        assert!(mi250.comm_ratio() > 2.0 * h100.comm_ratio());
    }
}
