//! Closed-form first-order estimates of FSDP iteration time.
//!
//! The simulator prices contention epoch by epoch; this module computes
//! what a back-of-envelope model (the kind the paper says distributed
//! frameworks implicitly assume: "constant computation and communication
//! latencies") predicts. It serves two purposes:
//!
//! * a **fast planner** — microseconds instead of milliseconds per
//!   configuration, useful for sweeping thousands of candidate setups;
//! * a **cross-check** — integration tests assert the simulator stays
//!   within a sane band of the closed form for the quantities the closed
//!   form can capture (isolated compute/comm totals, the sequential bound),
//!   and quantify exactly where the naive model breaks (the contention the
//!   paper characterizes).

use crate::executor::{run_result_from_trace, LeanGpuStats, LeanRun, RunResult};
use crate::Machine;
use olab_ccl::{lower, Algorithm, Collective, CommOp};
use olab_gpu::{roofline, GpuSku};
use olab_models::memory::ActivationPolicy;
use olab_models::ops;
use olab_net::Topology;
use olab_parallel::fsdp::FsdpPlan;
use olab_parallel::{ComputeOp, Op};
use olab_sim::{
    GpuActivity, PowerSegment, SimTime, SimTrace, StreamKind, TaskId, TaskRecord, Window, Workload,
};
use std::collections::HashMap;

/// First-order estimates for one FSDP iteration, per GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimate {
    /// Sum of isolated compute-kernel durations, seconds.
    pub compute_s: f64,
    /// Sum of isolated collective durations, seconds.
    pub comm_s: f64,
    /// Sequential execution estimate: compute + comm.
    pub e2e_sequential_s: f64,
    /// Contention-free overlap estimate: compute plus the comm that cannot
    /// hide (the first forward all-gather, plus any comm overhang beyond
    /// the compute it overlaps).
    pub e2e_ideal_s: f64,
}

impl AnalyticEstimate {
    /// Communication-to-computation ratio.
    pub fn comm_ratio(&self) -> f64 {
        if self.compute_s > 0.0 {
            self.comm_s / self.compute_s
        } else {
            0.0
        }
    }
}

/// Estimates one FSDP iteration analytically.
pub fn estimate_fsdp(plan: &FsdpPlan, sku: &GpuSku, topo: &Topology) -> AnalyticEstimate {
    let layer = ops::layer_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let head = ops::head_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let emb = ops::embedding_kernels(&plan.model, plan.batch_per_rank, plan.seq);
    let layers = f64::from(plan.model.layers);
    let steps = f64::from(plan.grad_accum_steps);

    let kernel_time = |kernels: &[olab_gpu::KernelKind]| -> f64 {
        roofline::isolated_total_duration(kernels, sku, plan.precision, plan.datapath, 1.0)
    };

    let fwd = kernel_time(&layer.forward);
    let bwd = match plan.activation_policy {
        ActivationPolicy::Full => kernel_time(&layer.backward),
        ActivationPolicy::Recompute => kernel_time(&layer.forward) + kernel_time(&layer.backward),
    };
    let edge = kernel_time(&emb) + kernel_time(&head.forward) + kernel_time(&head.backward);
    let adam = roofline::isolated_duration(
        &ops::optimizer_kernel(plan.model.param_count() / plan.ranks as u64),
        sku,
        plan.precision,
        plan.datapath,
        1.0,
    );
    let accum_overhead = if plan.grad_accum_steps > 1 {
        (steps - 1.0)
            * layers
            * roofline::isolated_duration(
                &olab_gpu::KernelKind::Elementwise {
                    elems: plan.model.layer_params(),
                    flops_per_elem: 1,
                    streams: 3,
                },
                sku,
                plan.precision,
                plan.datapath,
                1.0,
            )
    } else {
        0.0
    };
    let compute_s = steps * (layers * (fwd + bwd) + edge) + adam + accum_overhead;

    let group: Vec<olab_sim::GpuId> = (0..plan.ranks as u16).map(olab_sim::GpuId).collect();
    let layer_bytes = plan.layer_bytes();
    let ag = lower(
        &Collective::all_gather(layer_bytes, group.clone()),
        Algorithm::auto(olab_ccl::CollectiveKind::AllGather, layer_bytes, plan.ranks),
        sku,
        topo,
        plan.precision,
    )
    .isolated_duration_s();
    let rs = lower(
        &Collective::reduce_scatter(layer_bytes, group),
        Algorithm::auto(
            olab_ccl::CollectiveKind::ReduceScatter,
            layer_bytes,
            plan.ranks,
        ),
        sku,
        topo,
        plan.precision,
    )
    .isolated_duration_s();
    // Per micro-step: forward + backward all-gathers; final step adds the
    // reduce-scatters.
    let comm_s = steps * layers * 2.0 * ag + layers * rs;

    // Ideal overlap: forward comm hides under forward compute (except the
    // un-prefetchable first gather), backward likewise.
    let fwd_comm = layers * ag;
    let bwd_comm = layers * (ag + rs / steps.max(1.0));
    let fwd_exposed = ag + (fwd_comm - layers * fwd).max(0.0);
    let bwd_exposed = (bwd_comm - layers * bwd).max(0.0);
    let e2e_ideal_s = compute_s + steps * (fwd_exposed + bwd_exposed);

    AnalyticEstimate {
        compute_s,
        comm_s,
        e2e_sequential_s: compute_s + comm_s,
        e2e_ideal_s,
    }
}

/// Sentinel for "no interned payload of this kind" in the per-task tables.
const NONE: u32 = u32::MAX;

/// The speculative solo-priced schedule of one fast-path-eligible cell:
/// task intervals, per-(GPU, stream) interval lists ("lanes"), and the
/// payload interning tables both output shapes — the full
/// [`RunResult`] of [`execute_fast`] and the scalar-only
/// [`LeanRun`](crate::LeanRun) of [`execute_fast_lean`] — price power from.
struct FastSchedule<'w> {
    start: Vec<f64>,
    end: Vec<f64>,
    lanes: Vec<[Vec<usize>; 2]>,
    makespan: f64,
    kernel_ops: Vec<&'w ComputeOp>,
    comm_interned: Vec<(&'w CommOp, f64)>,
    task_kernel: Vec<u32>,
    task_comm: Vec<u32>,
}

/// Payload interning shared by the schedule builders. Timelines repeat a
/// handful of distinct kernel shapes and collectives thousands of times
/// (one per layer per step), and an eligible cell has no per-GPU state
/// that could differentiate them — so each distinct payload is priced once
/// and every repeat is a lookup.
#[derive(Default)]
struct Interner<'w> {
    kernel_ids: HashMap<&'w ComputeOp, u32, FxBuildHasher>,
    kernel_ops: Vec<&'w ComputeOp>,
    kernel_durations: Vec<f64>,
    comm_interned: Vec<(&'w CommOp, f64)>,
}

impl<'w> Interner<'w> {
    /// Interns one task's payload and returns `(solo duration, kernel id,
    /// comm id)` with [`NONE`] for the absent kind, or `None` when the task
    /// disqualifies the cell: a payload kind disagreeing with its stream
    /// (the engine prices by payload while the closed form walks streams)
    /// or a non-finite/non-positive solo duration (the event loop then
    /// produces the proper rate error).
    fn intern(
        &mut self,
        task: &'w olab_sim::TaskSpec<Op>,
        machine: &Machine,
    ) -> Option<(f64, u32, u32)> {
        let (duration, kid, cid) = match &task.payload {
            Op::Compute(c) => {
                if task.stream != StreamKind::Compute {
                    return None;
                }
                let id = *self.kernel_ids.entry(c).or_insert_with(|| {
                    self.kernel_ops.push(c);
                    self.kernel_durations
                        .push(machine.solo_compute_duration(task.participants[0].index(), c));
                    (self.kernel_durations.len() - 1) as u32
                });
                (self.kernel_durations[id as usize], id, NONE)
            }
            // Comm ops carry floats, so they intern by linear scan — the
            // distinct count is tiny (one per collective shape). Equal
            // `CommOp`s imply equal groups (the collective embeds its
            // group), so the memoized duration transfers.
            Op::Comm(op) => {
                if task.stream != StreamKind::Comm {
                    return None;
                }
                match self.comm_interned.iter().position(|&(m, _)| m == op) {
                    Some(id) => (self.comm_interned[id].1, NONE, id as u32),
                    None => {
                        let d = machine.solo_comm_duration(&task.participants, op);
                        self.comm_interned.push((op, d));
                        (d, NONE, (self.comm_interned.len() - 1) as u32)
                    }
                }
            }
        };
        if !(duration.is_finite() && duration > 0.0) {
            return None;
        }
        Some((duration, kid, cid))
    }
}

/// Builds the one-pass speculative schedule at solo prices, or `None` when
/// the cell needs the event loop after all:
///
/// * a dependency that does not point strictly backward in push order —
///   this also covers self-dependencies and out-of-range indices, so the
///   event-loop fallback reproduces the exact [`olab_sim::SimError`] a
///   malformed workload deserves;
/// * a payload kind disagreeing with its stream (the engine prices by
///   payload while the closed form walks streams);
/// * a non-finite or non-positive solo duration (the event loop then
///   produces the proper rate error);
/// * on a **contended** machine, any compute/comm co-residency in the
///   resulting schedule: co-resident pairs are priced differently there —
///   exactly the paper's phenomenon — and only the event loop prices that
///   epoch by epoch. On an uncontended machine overlap is fine: rates are
///   co-residency independent.
///
/// The engine with constant rates admits this closed form: a task starts at
/// the max of (a) its queue predecessors' ends on every participant stream
/// and (b) its dependencies' ends, and runs for its solo duration — one
/// O(n) pass in push order. Durations come from the *same* per-GPU pricing
/// the event loop uses (`Machine::gpu_epoch` via `solo_compute_duration` /
/// `solo_comm_duration`), so agreement is by construction, not by
/// re-derivation.
///
/// Timelines repeat a handful of distinct kernel shapes and collectives
/// thousands of times (one per layer per step), and an eligible cell has no
/// per-GPU state that could differentiate them — the caller has excluded
/// jitter and transient frequency caps, so `Machine::gpu_epoch` is a pure
/// function of the payload alone. Interning each distinct payload once
/// turns the hot loops from O(n) pricing calls into O(n) map lookups plus
/// O(distinct) pricing calls.
fn build_schedule<'w>(workload: &'w Workload<Op>, machine: &Machine) -> Option<FastSchedule<'w>> {
    debug_assert!(
        !machine.has_jitter() && !machine.has_gpu_freq_caps(),
        "build_schedule requires a deterministic machine"
    );
    let n = workload.len();
    let n_gpus = workload.n_gpus();
    let tasks = workload.tasks();

    let mut interner = Interner::default();
    let mut task_kernel = vec![NONE; n];
    let mut task_comm = vec![NONE; n];

    // The per-(GPU, stream) lanes fall out of the same pass: each queue
    // serializes its tasks, so push order is start order within a lane.
    let mut lanes: Vec<[Vec<usize>; 2]> = vec![[Vec::new(), Vec::new()]; n_gpus];
    let mut start = vec![0.0f64; n];
    let mut end = vec![0.0f64; n];
    let mut queue_last = vec![0.0f64; n_gpus * 2];
    for (i, task) in tasks.iter().enumerate() {
        let mut t = 0.0f64;
        for dep in &task.deps {
            if dep.index() >= i {
                return None;
            }
            t = t.max(end[dep.index()]);
        }
        for g in &task.participants {
            t = t.max(queue_last[g.index() * 2 + task.stream.index()]);
        }
        let (duration, kid, cid) = interner.intern(task, machine)?;
        task_kernel[i] = kid;
        task_comm[i] = cid;
        start[i] = t;
        end[i] = t + duration;
        for g in &task.participants {
            queue_last[g.index() * 2 + task.stream.index()] = end[i];
            lanes[g.index()][task.stream.index()].push(i);
        }
    }
    let makespan = end.iter().copied().fold(0.0f64, f64::max);
    let Interner {
        kernel_ops,
        comm_interned,
        ..
    } = interner;

    // A posteriori validation: on a contended machine any compute/comm
    // co-residency invalidates solo pricing — fall back to the event loop.
    if machine.is_contended() {
        for lane in &lanes {
            if lanes_intersect(&lane[0], &lane[1], &start, &end) {
                return None;
            }
        }
    }

    Some(FastSchedule {
        start,
        end,
        lanes,
        makespan,
        kernel_ops,
        comm_interned,
        task_kernel,
        task_comm,
    })
}

/// Looks up (pricing on first use) the draw of the (kernel, comm)
/// co-resident pair in the dense memo matrix — (kernels + idle) ×
/// (comms + idle), NaN = not yet priced. Like the durations,
/// `segment_power_w` has no per-GPU input on an eligible machine, so the
/// memo is shared across GPUs.
fn priced(
    s: &FastSchedule<'_>,
    machine: &Machine,
    power_memo: &mut [f64],
    g: usize,
    kid: u32,
    cid: u32,
) -> f64 {
    let cslots = s.comm_interned.len() + 1;
    let k_ix = if kid == NONE {
        s.kernel_ops.len()
    } else {
        kid as usize
    };
    let c_ix = if cid == NONE {
        s.comm_interned.len()
    } else {
        cid as usize
    };
    let slot = &mut power_memo[k_ix * cslots + c_ix];
    if slot.is_nan() {
        let kernel = (kid != NONE).then(|| s.kernel_ops[kid as usize]);
        let comm = (cid != NONE).then(|| s.comm_interned[cid as usize].0);
        *slot = machine.segment_power_w(g, kernel, comm);
    }
    *slot
}

/// Sweeps GPU `g`'s elementary power segments — every interval edge plus
/// `[0, makespan)` coverage — pricing each with its co-resident set exactly
/// as the engine prices an epoch, and feeding each `(start, end, watts)` to
/// `emit`. Each lane's edge stream (start, end, start, end, …) is already
/// non-decreasing — the queue serializes its tasks — so the segment
/// boundaries come from a two-pointer merge of the two streams,
/// deduplicated on the fly, instead of a sort.
fn sweep_power_segments(
    s: &FastSchedule<'_>,
    machine: &Machine,
    g: usize,
    bounds: &mut Vec<f64>,
    power_memo: &mut [f64],
    mut emit: impl FnMut(f64, f64, f64),
) {
    let compute_lane = &s.lanes[g][0];
    let comm_lane = &s.lanes[g][1];
    bounds.clear();
    bounds.push(0.0);
    let edge = |lane: &[usize], k: usize| {
        let t = lane[k >> 1];
        if k & 1 == 0 {
            s.start[t]
        } else {
            s.end[t]
        }
    };
    let (mut ei, mut ej) = (0usize, 0usize);
    let (ni, nj) = (compute_lane.len() * 2, comm_lane.len() * 2);
    while ei < ni || ej < nj {
        let a = if ei < ni {
            edge(compute_lane, ei)
        } else {
            f64::INFINITY
        };
        let b = if ej < nj {
            edge(comm_lane, ej)
        } else {
            f64::INFINITY
        };
        let v = if a <= b {
            ei += 1;
            a
        } else {
            ej += 1;
            b
        };
        if v > *bounds.last().expect("bounds is non-empty") {
            bounds.push(v);
        }
    }
    if s.makespan > *bounds.last().expect("bounds is non-empty") {
        bounds.push(s.makespan);
    }
    let (mut pi, mut pj) = (0usize, 0usize);
    for w in bounds.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 <= t0 {
            continue;
        }
        while pi < compute_lane.len() && s.end[compute_lane[pi]] <= t0 {
            pi += 1;
        }
        while pj < comm_lane.len() && s.end[comm_lane[pj]] <= t0 {
            pj += 1;
        }
        let kid = if pi < compute_lane.len() && s.start[compute_lane[pi]] <= t0 {
            s.task_kernel[compute_lane[pi]]
        } else {
            NONE
        };
        let cid = if pj < comm_lane.len() && s.start[comm_lane[pj]] <= t0 {
            s.task_comm[comm_lane[pj]]
        } else {
            NONE
        };
        let watts = priced(s, machine, power_memo, g, kid, cid);
        emit(t0, t1, watts);
    }
}

/// Co-active time per task: measure of the union, over its participants,
/// of other-stream busy intervals clipped to the task's own interval.
/// Any such clip is by definition inside one of the participant's overlap
/// windows, so tasks whose participants all have none (`has_overlap[g] ==
/// false` — every task of a sequential schedule) skip the lane scans
/// outright.
fn coactive_times(
    tasks: &[olab_sim::TaskSpec<Op>],
    s: &FastSchedule<'_>,
    has_overlap: &[bool],
) -> Vec<f64> {
    let mut coactive = vec![0.0f64; tasks.len()];
    let mut clips: Vec<(f64, f64)> = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        if task.participants.iter().all(|g| !has_overlap[g.index()]) {
            continue;
        }
        let other = task.stream.other().index();
        clips.clear();
        for g in &task.participants {
            let lane = &s.lanes[g.index()][other];
            let from = lane.partition_point(|&j| s.end[j] <= s.start[i]);
            for &j in &lane[from..] {
                if s.start[j] >= s.end[i] {
                    break;
                }
                let lo = s.start[j].max(s.start[i]);
                let hi = s.end[j].min(s.end[i]);
                if hi > lo {
                    clips.push((lo, hi));
                }
            }
        }
        if clips.is_empty() {
            continue;
        }
        clips.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (mut cur_lo, mut cur_hi) = clips[0];
        let mut total = 0.0;
        for &(lo, hi) in &clips[1..] {
            if lo > cur_hi {
                total += cur_hi - cur_lo;
                (cur_lo, cur_hi) = (lo, hi);
            } else {
                cur_hi = cur_hi.max(hi);
            }
        }
        total += cur_hi - cur_lo;
        coactive[i] = total;
    }
    coactive
}

/// Executes a fast-path-eligible workload analytically, producing the same
/// [`RunResult`] the event loop would (to floating-point rounding), or
/// `None` if the schedule turns out to need the event loop after all (see
/// [`build_schedule`] for the bail conditions — including malformed
/// workloads, whose fallback run reproduces the exact engine error).
///
/// Power segments are reconstructed with the full co-resident set, so the
/// per-GPU traces match the engine's segment by segment.
pub(crate) fn execute_fast(workload: &Workload<Op>, machine: &Machine) -> Option<RunResult> {
    let n = workload.len();
    let n_gpus = workload.n_gpus();
    let tasks = workload.tasks();

    if n == 0 {
        let trace = SimTrace::from_parts(
            Vec::new(),
            vec![GpuActivity::default(); n_gpus],
            SimTime::ZERO,
        );
        return Some(run_result_from_trace(trace, n_gpus));
    }

    let s = build_schedule(workload, machine)?;

    // Per-GPU activity: busy time, overlap windows, power segments.
    let cslots = s.comm_interned.len() + 1;
    let mut power_memo: Vec<f64> = vec![f64::NAN; (s.kernel_ops.len() + 1) * cslots];
    let mut gpus: Vec<GpuActivity> = vec![GpuActivity::default(); n_gpus];
    let mut bounds: Vec<f64> = Vec::new();
    for (g, activity) in gpus.iter_mut().enumerate() {
        let compute_lane = &s.lanes[g][0];
        let comm_lane = &s.lanes[g][1];

        for (lane_ix, lane) in [compute_lane, comm_lane].into_iter().enumerate() {
            let total: f64 = lane.iter().map(|&i| s.end[i] - s.start[i]).sum();
            activity.busy[lane_ix] = SimTime::from_secs(total);
        }

        // Overlap windows: intersections of the two lanes, merged with the
        // engine's contiguity rule.
        let (mut i, mut j) = (0, 0);
        while i < compute_lane.len() && j < comm_lane.len() {
            let (a, b) = (compute_lane[i], comm_lane[j]);
            let lo = s.start[a].max(s.start[b]);
            let hi = s.end[a].min(s.end[b]);
            if hi > lo {
                push_window(&mut activity.overlap_windows, lo, hi);
            }
            if s.end[a] <= s.end[b] {
                i += 1;
            } else {
                j += 1;
            }
        }

        let power = &mut activity.power;
        sweep_power_segments(&s, machine, g, &mut bounds, &mut power_memo, |t0, t1, w| {
            push_power(power, t0, t1, w);
        });
    }

    let has_overlap: Vec<bool> = gpus.iter().map(|a| !a.overlap_windows.is_empty()).collect();
    let coactive = coactive_times(tasks, &s, &has_overlap);

    let records: Vec<TaskRecord> = tasks
        .iter()
        .enumerate()
        .map(|(i, spec)| TaskRecord {
            id: TaskId(i as u32),
            label: spec.label.clone(),
            participants: spec.participants.clone(),
            stream: spec.stream,
            start: SimTime::from_secs(s.start[i]),
            end: SimTime::from_secs(s.end[i]),
            coactive: SimTime::from_secs(coactive[i]),
        })
        .collect();
    let trace = SimTrace::from_parts(records, gpus, SimTime::from_secs(s.makespan));
    Some(run_result_from_trace(trace, n_gpus))
}

/// Executes a fast-path-eligible workload analytically, producing only the
/// scalar metrics of [`LeanRun`] — no task records, no power segments, no
/// trace. This is where the closed form's asymmetry over the event loop is
/// largest: the engine *must* run every epoch and materialize its trace
/// before any statistic exists, while the closed form integrates the same
/// quantities directly. Agrees with
/// [`LeanRun::summarize`](crate::LeanRun::summarize) of the event loop's
/// result to floating-point rounding (the differential suite in
/// `olab-oracle` pins this). Returns `None` exactly when [`execute_fast`]
/// would (the bail conditions are the same).
///
/// Two regimes:
///
/// * **no cross-stream co-residency** (every sequential schedule): one
///   fused pass computes the schedule and every scalar together — each
///   instant is kernel-only, comm-only, or idle, so energy is the sum of
///   per-task `watts × duration` plus idle draw over the remaining
///   `makespan − busy`, and windows and co-activity are zero;
/// * **overlapping streams** (uncontended machines only): the generic
///   lanes-based derivation ([`lean_from_lanes`]), which counts merged
///   windows, accumulates co-activity, and integrates power with the same
///   boundary sweep as [`execute_fast`] — without materializing segments.
///
/// Average power is `energy / makespan`: both paths' segments cover
/// `[0, makespan]` per GPU, so the time-weighted average divides by the
/// makespan exactly as [`olab_power::PowerTrace::average`] does.
pub(crate) fn execute_fast_lean(workload: &Workload<Op>, machine: &Machine) -> Option<LeanRun> {
    let n = workload.len();
    let n_gpus = workload.n_gpus();
    let tasks = workload.tasks();

    if n == 0 {
        return Some(LeanRun {
            e2e_s: 0.0,
            gpus: vec![LeanGpuStats::default(); n_gpus],
        });
    }

    // Specialized single pass for the common case: schedule and scalar
    // statistics together, with no lanes, no start array, and no
    // per-task id tables. Cross-stream co-residency is detected on the
    // fly: a task starting before the other stream's latest end on any
    // participant *may* overlap an earlier interval (it may also land in
    // a gap), and any actual overlap pair is caught this way on its
    // later-pushed member — so `clean == true` proves the schedule has no
    // co-residency at all, on any GPU. Clean schedules finish right here;
    // flagged ones redo through the generic lanes-based path below.
    let mut interner = Interner::default();
    let mut kernel_watts: Vec<f64> = Vec::new();
    let mut comm_watts: Vec<f64> = Vec::new();
    let mut end = vec![0.0f64; n];
    let mut queue_last = vec![0.0f64; n_gpus * 2];
    let mut busy = vec![[0.0f64; 2]; n_gpus];
    let mut energy = vec![0.0f64; n_gpus];
    let mut peak = vec![0.0f64; n_gpus];
    let mut clean = true;
    for (i, task) in tasks.iter().enumerate() {
        let mut t = 0.0f64;
        for dep in &task.deps {
            if dep.index() >= i {
                return None;
            }
            t = t.max(end[dep.index()]);
        }
        let si = task.stream.index();
        let oi = task.stream.other().index();
        for g in &task.participants {
            t = t.max(queue_last[g.index() * 2 + si]);
        }
        let (duration, kid, cid) = interner.intern(task, machine)?;
        // Solo draw, memoized per interned payload (new ids are appended
        // sequentially, so a fresh id is priced exactly once). Like the
        // durations, `segment_power_w` has no per-GPU input on an eligible
        // machine.
        let w = if kid != NONE {
            let k = kid as usize;
            if k == kernel_watts.len() {
                kernel_watts.push(machine.segment_power_w(
                    task.participants[0].index(),
                    Some(interner.kernel_ops[k]),
                    None,
                ));
            }
            kernel_watts[k]
        } else {
            let c = cid as usize;
            if c == comm_watts.len() {
                comm_watts.push(machine.segment_power_w(
                    task.participants[0].index(),
                    None,
                    Some(interner.comm_interned[c].0),
                ));
            }
            comm_watts[c]
        };
        let e = t + duration;
        end[i] = e;
        let task_energy = w * duration;
        for g in &task.participants {
            let gi = g.index();
            if t < queue_last[gi * 2 + oi] {
                clean = false;
            }
            queue_last[gi * 2 + si] = e;
            busy[gi][si] += duration;
            energy[gi] += task_energy;
            peak[gi] = peak[gi].max(w);
        }
    }
    if !clean {
        return lean_from_lanes(workload, machine);
    }

    let makespan = end.iter().copied().fold(0.0f64, f64::max);
    let mut gpus = Vec::with_capacity(n_gpus);
    for g in 0..n_gpus {
        let compute_s = busy[g][StreamKind::Compute.index()];
        let comm_s = busy[g][StreamKind::Comm.index()];
        let mut energy_j = energy[g];
        let mut peak_w = peak[g];
        // With no co-residency, each instant is kernel-only, comm-only, or
        // idle; the idle remainder draws the floor (the full path emits
        // idle segments only over genuine gaps, so `idle == 0` means it
        // emitted none).
        let idle = makespan - compute_s - comm_s;
        if idle > 0.0 {
            let w = machine.segment_power_w(g, None, None);
            energy_j += w * idle;
            peak_w = peak_w.max(w);
        }
        gpus.push(LeanGpuStats {
            compute_s,
            comm_s,
            overlapped_compute_s: 0.0,
            hidden_comm_s: 0.0,
            average_power_w: if makespan > 0.0 {
                energy_j / makespan
            } else {
                0.0
            },
            peak_power_w: peak_w,
            energy_j,
            overlap_windows: 0,
        });
    }
    Some(LeanRun {
        e2e_s: makespan,
        gpus,
    })
}

/// The generic lanes-based lean evaluation: builds the full
/// [`FastSchedule`] and derives the [`LeanRun`] scalars from its lanes —
/// overlap window counts under the engine's merge rule, energy/peak via the
/// boundary sweep where streams overlap, and co-activity per participant.
/// [`execute_fast_lean`] reaches this only when its single-pass scan flags
/// potential cross-stream co-residency.
fn lean_from_lanes(workload: &Workload<Op>, machine: &Machine) -> Option<LeanRun> {
    let n_gpus = workload.n_gpus();
    let tasks = workload.tasks();
    let s = build_schedule(workload, machine)?;

    let cslots = s.comm_interned.len() + 1;
    let mut power_memo: Vec<f64> = vec![f64::NAN; (s.kernel_ops.len() + 1) * cslots];
    let mut gpus: Vec<LeanGpuStats> = Vec::with_capacity(n_gpus);
    let mut has_overlap = vec![false; n_gpus];
    let mut bounds: Vec<f64> = Vec::new();
    for (g, gpu_overlaps) in has_overlap.iter_mut().enumerate() {
        let compute_lane = &s.lanes[g][0];
        let comm_lane = &s.lanes[g][1];
        let compute_s: f64 = compute_lane.iter().map(|&i| s.end[i] - s.start[i]).sum();
        let comm_s: f64 = comm_lane.iter().map(|&i| s.end[i] - s.start[i]).sum();

        // Window count under the engine's contiguity merge rule.
        let mut overlap_windows = 0usize;
        let mut last_end = f64::NEG_INFINITY;
        let (mut i, mut j) = (0, 0);
        while i < compute_lane.len() && j < comm_lane.len() {
            let (a, b) = (compute_lane[i], comm_lane[j]);
            let lo = s.start[a].max(s.start[b]);
            let hi = s.end[a].min(s.end[b]);
            if hi > lo {
                if (last_end - lo).abs() >= 1e-12 {
                    overlap_windows += 1;
                }
                last_end = hi;
            }
            if s.end[a] <= s.end[b] {
                i += 1;
            } else {
                j += 1;
            }
        }
        *gpu_overlaps = overlap_windows > 0;

        let (mut energy_j, mut peak_w) = (0.0f64, 0.0f64);
        if overlap_windows == 0 {
            for &t in compute_lane {
                let w = priced(&s, machine, &mut power_memo, g, s.task_kernel[t], NONE);
                energy_j += w * (s.end[t] - s.start[t]);
                peak_w = peak_w.max(w);
            }
            for &t in comm_lane {
                let w = priced(&s, machine, &mut power_memo, g, NONE, s.task_comm[t]);
                energy_j += w * (s.end[t] - s.start[t]);
                peak_w = peak_w.max(w);
            }
            let idle = s.makespan - compute_s - comm_s;
            if idle > 0.0 {
                let w = priced(&s, machine, &mut power_memo, g, NONE, NONE);
                energy_j += w * idle;
                peak_w = peak_w.max(w);
            }
        } else {
            sweep_power_segments(&s, machine, g, &mut bounds, &mut power_memo, |t0, t1, w| {
                energy_j += w * (t1 - t0);
                peak_w = peak_w.max(w);
            });
        }

        gpus.push(LeanGpuStats {
            compute_s,
            comm_s,
            overlapped_compute_s: 0.0,
            hidden_comm_s: 0.0,
            average_power_w: if s.makespan > 0.0 {
                energy_j / s.makespan
            } else {
                0.0
            },
            peak_power_w: peak_w,
            energy_j,
            overlap_windows,
        });
    }

    // Co-activity, accumulated per (GPU, stream) exactly as the full
    // statistics derivation does (each participant is credited the task's
    // whole union measure).
    if has_overlap.iter().any(|&h| h) {
        let coactive = coactive_times(tasks, &s, &has_overlap);
        for (i, task) in tasks.iter().enumerate() {
            if coactive[i] == 0.0 {
                continue;
            }
            for g in &task.participants {
                let stats = &mut gpus[g.index()];
                match task.stream {
                    StreamKind::Compute => stats.overlapped_compute_s += coactive[i],
                    StreamKind::Comm => stats.hidden_comm_s += coactive[i],
                }
            }
        }
    }

    Some(LeanRun {
        e2e_s: s.makespan,
        gpus,
    })
}

/// A multiply-xor hasher (FxHash-style) for the payload-interning map: the
/// keys are small all-integer structs hashed once per task in the schedule
/// loop, where the default SipHash would dominate the lookup cost. Not
/// DoS-resistant — fine for interning a workload's own payloads.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// Whether two sorted, internally non-overlapping interval lists share any
/// positive-measure intersection.
fn lanes_intersect(a: &[usize], b: &[usize], start: &[f64], end: &[f64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = start[a[i]].max(start[b[j]]);
        let hi = end[a[i]].min(end[b[j]]);
        if hi > lo {
            return true;
        }
        if end[a[i]] <= end[b[j]] {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// The engine's window-merge rule: append, coalescing with the previous
/// window when contiguous within 1e-12 s.
fn push_window(windows: &mut Vec<Window>, lo: f64, hi: f64) {
    if let Some(last) = windows.last_mut() {
        if (last.end.as_secs() - lo).abs() < 1e-12 {
            last.end = SimTime::from_secs(hi);
            return;
        }
    }
    windows.push(Window {
        start: SimTime::from_secs(lo),
        end: SimTime::from_secs(hi),
    });
}

/// The engine's power-merge rule: append, coalescing when contiguous within
/// 1e-12 s and equal draw within 1e-9 W.
fn push_power(segments: &mut Vec<PowerSegment>, lo: f64, hi: f64, watts: f64) {
    if let Some(last) = segments.last_mut() {
        let contiguous = (last.window.end.as_secs() - lo).abs() < 1e-12;
        if contiguous && (last.watts - watts).abs() < 1e-9 {
            last.window.end = SimTime::from_secs(hi);
            return;
        }
    }
    segments.push(PowerSegment {
        window: Window {
            start: SimTime::from_secs(lo),
            end: SimTime::from_secs(hi),
        },
        watts,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, Strategy};
    use olab_gpu::{Datapath, Precision, SkuKind};
    use olab_models::ModelPreset;

    fn estimate_and_simulate(sku: SkuKind) -> (AnalyticEstimate, crate::ExperimentReport) {
        let exp = Experiment::new(sku, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(512);
        let policy = exp.validate().unwrap();
        let machine = exp.machine();
        let plan = FsdpPlan::new(
            ModelPreset::Gpt3Xl.config(),
            4,
            8,
            512,
            Precision::Fp16,
            Datapath::TensorCore,
            policy,
        );
        let est = estimate_fsdp(&plan, &machine.config().sku, &machine.config().topology);
        (est, exp.run().unwrap())
    }

    #[test]
    fn analytic_compute_matches_sequential_simulation() {
        // With no contention, the simulator's per-GPU compute time is the
        // sum of isolated kernel durations — the closed form exactly.
        let (est, report) = estimate_and_simulate(SkuKind::H100);
        let simulated = report.sequential.compute_s() / 4.0;
        let ratio = est.compute_s / simulated;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn analytic_sequential_bounds_hold_on_all_skus() {
        for sku in SkuKind::ALL {
            let (est, report) = estimate_and_simulate(sku);
            let measured = report.metrics.e2e_sequential_measured_s;
            let ratio = est.e2e_sequential_s / measured;
            assert!((0.85..1.15).contains(&ratio), "{sku}: ratio {ratio}");
        }
    }

    #[test]
    fn naive_model_underestimates_overlapped_e2e_under_contention() {
        // The paper's point: assuming constant latencies (no contention)
        // underpredicts the overlapped iteration. On the MI250 the gap is
        // large; the ideal estimate must sit at or below the simulated
        // overlapped time.
        let (est, report) = estimate_and_simulate(SkuKind::Mi250);
        assert!(
            est.e2e_ideal_s < report.metrics.e2e_overlapped_s,
            "naive {} vs simulated {}",
            est.e2e_ideal_s,
            report.metrics.e2e_overlapped_s
        );
        // And the gap is what Eq. 4 calls the slowdown. (At this small
        // sequence length the MI250 is already comm-bound, so the analytic
        // ideal includes a large exposed-comm overhang; the remaining gap
        // is pure contention.)
        let gap = report.metrics.e2e_overlapped_s / est.e2e_ideal_s - 1.0;
        assert!(gap > 0.04, "expected a contention gap, got {gap}");
    }

    #[test]
    fn comm_ratio_is_higher_on_slower_fabrics() {
        let (h100, _) = estimate_and_simulate(SkuKind::H100);
        let (mi250, _) = estimate_and_simulate(SkuKind::Mi250);
        assert!(mi250.comm_ratio() > 2.0 * h100.comm_ratio());
    }
}
