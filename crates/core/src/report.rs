//! Table rendering shared by the figure regenerators.

use std::fmt::Write as _;

/// A simple table that renders as markdown or CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a column-aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, " {:width$} |", cell, width = widths[i]);
            }
            out.push('\n');
        };
        render(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }

    /// Renders as CSV (comma-separated, RFC 4180 quoting via
    /// [`crate::fmtutil::csv_escape`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .map(|c| crate::fmtutil::csv_escape(c))
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `12.3%`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats seconds as milliseconds with one decimal, e.g. `123.4 ms`.
pub fn ms(seconds: f64) -> String {
    format!("{:.1} ms", seconds * 1e3)
}

/// Formats watts normalized to a TDP, e.g. `1.24x TDP`.
pub fn xtdp(watts: f64, tdp_w: f64) -> String {
    format!("{:.2}x TDP", watts / tdp_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned_columns() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a   | bb |"));
        assert!(md.contains("| 333 | 4  |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]).row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatters_produce_expected_strings() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(ms(0.1234), "123.4 ms");
        assert_eq!(xtdp(840.0, 700.0), "1.20x TDP");
    }
}
