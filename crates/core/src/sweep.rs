//! Parallel, cached execution of experiment grids.
//!
//! This module is the bridge between [`Experiment`] and the generic
//! `olab-grid` engine: it defines the compact per-cell result that sweeps
//! carry ([`CellMetrics`]), the serializable error mirror
//! ([`CellError`]), the canonical cache descriptor covering *every* field
//! of the cell configuration plus the calibration-constant version, and
//! the [`Sweep`] front-end every figure regenerator, ablation, and CLI
//! sweep runs through.
//!
//! Because the simulator is deterministic, a parallel sweep is
//! bit-identical to a serial one (`--jobs 1`); `tests/integration_grid.rs`
//! pins that invariant on the paper's main grid.

use crate::{Experiment, ExperimentError, ExperimentReport, OverlapMetrics};
use olab_grid::{
    CacheCost, CacheCounters, CacheHealth, CacheValue, CellFailure, Executor, GridJob, GuardConfig,
    ProgressSink, Reader, SweepRun, SweepStats, Writer,
};
use olab_models::memory::ActivationPolicy;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Version of the [`CellMetrics`] wire encoding. Part of every cache
/// descriptor, so a layout change invalidates old disk entries instead of
/// misreading them.
pub const CELL_SCHEMA_VERSION: u32 = 1;

/// Everything a sweep consumer needs from one cell, without the heavyweight
/// simulation traces (those stay with [`Experiment::run`]): the paper's
/// derived metrics plus the per-run aggregates the figure regenerators
/// print. Small, cloneable, and round-trippable through the grid cache's
/// byte codec.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// The paper's metrics (Eqs. 1–5) for the cell.
    pub metrics: OverlapMetrics,
    /// The activation policy the memory check selected.
    pub activation_policy: ActivationPolicy,
    /// Vendor-sampler average power, watts.
    pub sampled_avg_w: f64,
    /// Vendor-sampler peak power, watts.
    pub sampled_peak_w: f64,
    /// E2E of the contention-free simulation (Eq. 4 cross-check), seconds.
    pub ideal_simulated_e2e_s: f64,
    /// Total communication time across GPUs in the overlapped run, seconds.
    pub comm_s: f64,
    /// Total compute time co-active with communication, seconds.
    pub overlapped_compute_s: f64,
    /// Total hidden (co-active) communication time, seconds.
    pub hidden_comm_s: f64,
}

impl CellMetrics {
    /// Extracts the compact cell result from a full report.
    pub fn from_report(report: &ExperimentReport) -> Self {
        CellMetrics {
            metrics: report.metrics.clone(),
            activation_policy: report.activation_policy,
            sampled_avg_w: report.sampled_avg_w,
            sampled_peak_w: report.sampled_peak_w,
            ideal_simulated_e2e_s: report.ideal_simulated_e2e_s,
            comm_s: report.overlapped.comm_s(),
            overlapped_compute_s: report.overlapped.overlapped_compute_s(),
            hidden_comm_s: report.overlapped.hidden_comm_s(),
        }
    }
}

/// A serializable mirror of [`ExperimentError`], so infeasible cells (the
/// paper's missing bars) are cached like any other result and a warm rerun
/// re-simulates nothing at all.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The configuration does not fit in device memory.
    OutOfMemory {
        /// Required bytes (cheapest activation policy), GiB.
        needed_gib: f64,
        /// Usable capacity, GiB.
        budget_gib: f64,
    },
    /// The batch does not divide into microbatches, or similar.
    InvalidConfig(String),
    /// The simulation failed.
    Sim(String),
    /// The cell's worker panicked mid-sweep; the panic was isolated to
    /// this slot (and never cached) instead of aborting the sweep.
    Panic(String),
    /// Every attempt of the cell exceeded its per-attempt wall-clock
    /// deadline; the late results were discarded, never cached.
    Timeout {
        /// The per-attempt deadline that was missed, seconds.
        deadline_s: f64,
        /// Total attempts made.
        attempts: u32,
    },
    /// Retries were configured and every attempt failed; the final
    /// attempt's panic message is kept.
    RetriesExhausted {
        /// Total attempts made.
        attempts: u32,
        /// The last attempt's panic, rendered to text.
        last: String,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors ExperimentError's wording so rewired regenerators print
        // byte-identical rows for infeasible cells.
        match self {
            CellError::OutOfMemory {
                needed_gib,
                budget_gib,
            } => write!(
                f,
                "out of device memory: needs {needed_gib:.1} GiB, {budget_gib:.1} GiB usable"
            ),
            CellError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CellError::Sim(msg) => write!(f, "simulation failed: {msg}"),
            CellError::Panic(msg) => write!(f, "cell panicked: {msg}"),
            CellError::Timeout {
                deadline_s,
                attempts,
            } => write!(
                f,
                "cell timed out: {attempts} attempt(s) each exceeded the {deadline_s} s deadline"
            ),
            CellError::RetriesExhausted { attempts, last } => {
                write!(f, "cell failed after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl From<CellFailure> for CellError {
    fn from(failure: CellFailure) -> Self {
        match failure {
            CellFailure::Panic(p) => CellError::Panic(p.message),
            CellFailure::Timeout {
                deadline_s,
                attempts,
            } => CellError::Timeout {
                deadline_s,
                attempts,
            },
            CellFailure::RetriesExhausted { attempts, last } => CellError::RetriesExhausted {
                attempts,
                last: last.message,
            },
        }
    }
}

impl std::error::Error for CellError {}

impl From<ExperimentError> for CellError {
    fn from(e: ExperimentError) -> Self {
        match e {
            ExperimentError::OutOfMemory {
                needed_gib,
                budget_gib,
            } => CellError::OutOfMemory {
                needed_gib,
                budget_gib,
            },
            ExperimentError::InvalidConfig(msg) => CellError::InvalidConfig(msg),
            ExperimentError::Sim(e) => CellError::Sim(e.to_string()),
        }
    }
}

/// The outcome of one sweep cell: compact metrics, or the (also cached)
/// reason the cell is infeasible.
pub type CellOutcome = Result<CellMetrics, CellError>;

fn encode_policy(policy: ActivationPolicy) -> u8 {
    match policy {
        ActivationPolicy::Full => 0,
        ActivationPolicy::Recompute => 1,
    }
}

fn decode_policy(tag: u8) -> Option<ActivationPolicy> {
    match tag {
        0 => Some(ActivationPolicy::Full),
        1 => Some(ActivationPolicy::Recompute),
        _ => None,
    }
}

fn encode_metrics(m: &OverlapMetrics, w: &mut Writer) {
    for v in [
        m.compute_slowdown,
        m.overlap_ratio,
        m.e2e_overlapped_s,
        m.e2e_ideal_s,
        m.e2e_sequential_derived_s,
        m.e2e_sequential_measured_s,
        m.avg_power_w,
        m.peak_power_w,
        m.avg_power_sequential_w,
        m.peak_power_sequential_w,
        m.energy_j,
    ] {
        w.put_f64(v);
    }
}

fn decode_metrics(r: &mut Reader<'_>) -> Option<OverlapMetrics> {
    Some(OverlapMetrics {
        compute_slowdown: r.get_f64()?,
        overlap_ratio: r.get_f64()?,
        e2e_overlapped_s: r.get_f64()?,
        e2e_ideal_s: r.get_f64()?,
        e2e_sequential_derived_s: r.get_f64()?,
        e2e_sequential_measured_s: r.get_f64()?,
        avg_power_w: r.get_f64()?,
        peak_power_w: r.get_f64()?,
        avg_power_sequential_w: r.get_f64()?,
        peak_power_sequential_w: r.get_f64()?,
        energy_j: r.get_f64()?,
    })
}

/// Newtype carrying a [`CellOutcome`] through the grid cache (the orphan
/// rule forbids implementing the foreign `CacheValue` trait on `Result`
/// directly).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCell(pub CellOutcome);

impl CacheValue for CachedCell {
    fn encode(&self, w: &mut Writer) {
        match &self.0 {
            Ok(cell) => {
                w.put_u8(0);
                encode_metrics(&cell.metrics, w);
                w.put_u8(encode_policy(cell.activation_policy));
                w.put_f64(cell.sampled_avg_w);
                w.put_f64(cell.sampled_peak_w);
                w.put_f64(cell.ideal_simulated_e2e_s);
                w.put_f64(cell.comm_s);
                w.put_f64(cell.overlapped_compute_s);
                w.put_f64(cell.hidden_comm_s);
            }
            Err(CellError::OutOfMemory {
                needed_gib,
                budget_gib,
            }) => {
                w.put_u8(1);
                w.put_f64(*needed_gib);
                w.put_f64(*budget_gib);
            }
            Err(CellError::InvalidConfig(msg)) => {
                w.put_u8(2);
                w.put_str(msg);
            }
            Err(CellError::Sim(msg)) => {
                w.put_u8(3);
                w.put_str(msg);
            }
            Err(CellError::Panic(msg)) => {
                w.put_u8(4);
                w.put_str(msg);
            }
            Err(CellError::Timeout {
                deadline_s,
                attempts,
            }) => {
                w.put_u8(5);
                w.put_f64(*deadline_s);
                w.put_u32(*attempts);
            }
            Err(CellError::RetriesExhausted { attempts, last }) => {
                w.put_u8(6);
                w.put_u32(*attempts);
                w.put_str(last);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let outcome = match r.get_u8()? {
            0 => Some(Ok(CellMetrics {
                metrics: decode_metrics(r)?,
                activation_policy: decode_policy(r.get_u8()?)?,
                sampled_avg_w: r.get_f64()?,
                sampled_peak_w: r.get_f64()?,
                ideal_simulated_e2e_s: r.get_f64()?,
                comm_s: r.get_f64()?,
                overlapped_compute_s: r.get_f64()?,
                hidden_comm_s: r.get_f64()?,
            })),
            1 => Some(Err(CellError::OutOfMemory {
                needed_gib: r.get_f64()?,
                budget_gib: r.get_f64()?,
            })),
            2 => Some(Err(CellError::InvalidConfig(r.get_str()?))),
            3 => Some(Err(CellError::Sim(r.get_str()?))),
            4 => Some(Err(CellError::Panic(r.get_str()?))),
            5 => Some(Err(CellError::Timeout {
                deadline_s: r.get_f64()?,
                attempts: r.get_u32()?,
            })),
            6 => Some(Err(CellError::RetriesExhausted {
                attempts: r.get_u32()?,
                last: r.get_str()?,
            })),
            _ => None,
        };
        outcome.map(CachedCell)
    }
}

/// The canonical cache descriptor of a cell under explicit schema and
/// calibration versions (tests use this to pin key-stability properties;
/// production code goes through [`cell_descriptor`]).
pub fn cell_descriptor_versioned(exp: &Experiment, schema: u32, calibration: u32) -> String {
    // Every field of Experiment appears here; Debug formatting of f64 is
    // shortest-roundtrip and therefore injective on values.
    format!(
        "olab-cell schema={schema} calib={calibration} sku={:?} gpus={} model={:?} \
         strategy={:?} batch={} seq={} precision={:?} datapath={:?} power_cap={:?} \
         freq_cap={:?} schedule={:?} grad_accum={} fsdp_overlap={:?}",
        exp.sku,
        exp.n_gpus,
        exp.model,
        exp.strategy,
        exp.batch,
        exp.seq,
        exp.precision,
        exp.datapath,
        exp.power_cap_w,
        exp.freq_cap,
        exp.pipeline_schedule,
        exp.grad_accum_steps,
        exp.fsdp_overlap,
    )
}

/// The canonical cache descriptor of a cell: the full configuration plus
/// the current cell-schema and calibration-constant versions.
pub fn cell_descriptor(exp: &Experiment) -> String {
    cell_descriptor_versioned(exp, CELL_SCHEMA_VERSION, olab_gpu::CALIBRATION_VERSION)
}

/// The content-addressed cache key of a cell (FNV-1a 64 of the
/// descriptor).
pub fn cell_key(exp: &Experiment) -> u64 {
    olab_grid::fnv1a_64(cell_descriptor(exp).as_bytes())
}

impl GridJob for Experiment {
    type Output = CachedCell;

    fn descriptor(&self) -> String {
        cell_descriptor(self)
    }

    fn execute(&self) -> CachedCell {
        CachedCell(
            self.run()
                .map(|report| CellMetrics::from_report(&report))
                .map_err(CellError::from),
        )
    }

    /// Cost class for the capped disk cache: cells the analytic fast path
    /// can serve are microseconds to recompute (`Cheap`), everything the
    /// event loop must re-simulate is `Expensive`, and a cell that fails
    /// validation caches only a tiny error record (`Cheap`). The
    /// classification is a pure function of the cell, so the eviction
    /// order it feeds stays schedule-independent.
    fn cost_hint(&self) -> CacheCost {
        let Ok(policy) = self.validate() else {
            return CacheCost::Cheap;
        };
        let Ok(workload) = self.timeline(olab_parallel::ExecutionMode::Overlapped, policy) else {
            return CacheCost::Cheap;
        };
        match crate::CellClassifier::classify(&workload, &self.machine(), false) {
            crate::FastPathDecision::Eligible => CacheCost::Cheap,
            _ => CacheCost::Expensive,
        }
    }
}

/// Environment variable overriding the default worker count for sweeps
/// built with [`Sweep::from_env`] (the regenerators).
pub const JOBS_ENV: &str = "OLAB_JOBS";

/// Environment variable pointing sweeps built with [`Sweep::from_env`] at
/// a persistent disk cache directory.
pub const CACHE_DIR_ENV: &str = "OLAB_CACHE_DIR";

/// Environment variable setting a per-cell wall-clock deadline, seconds,
/// for sweeps built with [`Sweep::from_env`].
pub const CELL_TIMEOUT_ENV: &str = "OLAB_CELL_TIMEOUT_S";

/// Environment variable setting the per-cell retry budget for sweeps
/// built with [`Sweep::from_env`].
pub const RETRIES_ENV: &str = "OLAB_RETRIES";

/// Environment variable capping the disk cache tier, bytes, for sweeps
/// built with [`Sweep::from_env`].
pub const CACHE_MAX_BYTES_ENV: &str = "OLAB_CACHE_MAX_BYTES";

/// The results of one sweep, index-aligned with the submitted cells.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-cell outcomes in input order.
    pub cells: Vec<CellOutcome>,
    /// Throughput and cache telemetry.
    pub stats: SweepStats,
}

impl SweepOutcome {
    /// Writes the one-line sweep telemetry to stderr (stderr so that
    /// markdown/CSV tables on stdout stay machine-readable).
    pub fn log_stats(&self) {
        eprintln!("[olab-grid] {}", self.stats);
    }
}

/// The sweep front-end: a configured grid engine for experiment cells.
pub struct Sweep {
    engine: Executor<CachedCell>,
}

impl Sweep {
    /// A sweep engine with `available_parallelism` workers and an
    /// in-memory cache.
    pub fn new() -> Self {
        Sweep {
            engine: Executor::new(),
        }
    }

    /// A sweep engine configured from the environment: worker count from
    /// `OLAB_JOBS`, disk cache from `OLAB_CACHE_DIR`, per-cell deadline
    /// from `OLAB_CELL_TIMEOUT_S`, retry budget from `OLAB_RETRIES`, and
    /// disk-cache byte cap from `OLAB_CACHE_MAX_BYTES`. Unset, unparsable,
    /// or uncreatable values fall back to the defaults (parallel,
    /// memory-only, unguarded, uncapped).
    pub fn from_env() -> Self {
        let mut sweep = Sweep::new();
        if let Some(jobs) = std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            sweep = sweep.with_jobs(jobs);
        }
        if let Ok(dir) = std::env::var(CACHE_DIR_ENV) {
            if !dir.is_empty() {
                if let Ok(with_disk) = Sweep::new().with_disk_cache(&dir) {
                    sweep = Sweep {
                        engine: with_disk.engine.with_jobs(sweep.engine.pool().workers()),
                    };
                }
            }
        }
        let mut guard = GuardConfig::default();
        if let Some(timeout) = std::env::var(CELL_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|t| t.is_finite() && *t > 0.0)
        {
            guard.cell_timeout_s = Some(timeout);
        }
        if let Some(retries) = std::env::var(RETRIES_ENV)
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            guard.retries = retries;
        }
        sweep = sweep.with_guard(guard);
        if let Some(cap) = std::env::var(CACHE_MAX_BYTES_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            sweep = sweep.with_cache_cap(cap);
        }
        sweep
    }

    /// Overrides the worker count (`1` forces a serial sweep).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.engine = self.engine.with_jobs(jobs);
        self
    }

    /// Adds an on-disk cache tier under `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> io::Result<Self> {
        self.engine = self.engine.with_disk_cache(dir)?;
        Ok(self)
    }

    /// Overrides the execution guard (per-cell deadline, retry budget).
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.engine = self.engine.with_guard(guard);
        self
    }

    /// Caps the disk cache tier at `max_bytes`; excess entries are evicted
    /// deterministically (cold first, ascending key) at the end of a run.
    pub fn with_cache_cap(mut self, max_bytes: u64) -> Self {
        self.engine = self.engine.with_cache_cap(max_bytes);
        self
    }

    /// Arms deterministic fault injection on the engine and its cache
    /// (see `olab_grid::chaos`). Feature-gated; soak harnesses only.
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: olab_grid::ChaosPlan) -> Self {
        self.engine = self.engine.with_chaos(plan);
        self
    }

    /// Worker threads this sweep will use.
    pub fn jobs(&self) -> usize {
        self.engine.pool().workers()
    }

    /// The execution guard the sweep runs under.
    pub fn guard(&self) -> &GuardConfig {
        self.engine.guard()
    }

    /// A point-in-time snapshot of cache health (tiering, degradation,
    /// disk usage against the cap).
    pub fn cache_health(&self) -> CacheHealth {
        self.engine.cache().health()
    }

    /// Hit/miss/store counters of the underlying cache.
    pub fn cache_counters(&self) -> CacheCounters {
        self.engine.cache().counters()
    }

    /// Runs every cell — parallel across the pool, misses simulated,
    /// hits served from cache — returning outcomes in input order.
    pub fn run(&self, cells: &[Experiment]) -> SweepOutcome {
        self.run_with_progress(cells, None)
    }

    /// Like [`Sweep::run`], reporting each resolved cell to `sink` as it
    /// completes (live progress for long sweeps). Sink time is accounted
    /// in [`SweepStats::observer_s`], never in the cache/throughput
    /// numbers; cell outcomes are byte-identical with or without a sink.
    pub fn run_with_progress(
        &self,
        cells: &[Experiment],
        sink: Option<&dyn ProgressSink>,
    ) -> SweepOutcome {
        self.run_guarded(cells, *self.engine.guard(), sink)
    }

    /// Like [`Sweep::run_with_progress`], but under `guard` instead of the
    /// engine's own guard — the deadline-propagation hook: a serving
    /// front-end tightens the per-cell deadline to each request's own
    /// budget while concurrent runs keep sharing one engine and cache.
    pub fn run_guarded(
        &self,
        cells: &[Experiment],
        guard: GuardConfig,
        sink: Option<&dyn ProgressSink>,
    ) -> SweepOutcome {
        let fast_before = crate::fastpath::fast_runs();
        let SweepRun { outputs, mut stats } = self.engine.run_guarded(cells, &guard, sink);
        // Process-global counter: concurrent sweeps can only inflate the
        // delta, never shrink it, so the attribution stays a lower bound
        // per-sweep and exact when sweeps don't overlap in time.
        stats.fast_path = (crate::fastpath::fast_runs() - fast_before) as usize;
        SweepOutcome {
            cells: outputs
                .into_iter()
                .map(|slot| match slot {
                    Ok(cell) => cell.0,
                    Err(failure) => Err(CellError::from(failure)),
                })
                .collect(),
            stats,
        }
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs a grid with the environment-configured engine (`OLAB_JOBS`,
/// `OLAB_CACHE_DIR`) and logs telemetry to stderr — the one-liner the
/// figure regenerators use.
pub fn run_cells(cells: &[Experiment]) -> SweepOutcome {
    let outcome = Sweep::from_env().run(cells);
    outcome.log_stats();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use olab_gpu::{Precision, SkuKind};
    use olab_models::ModelPreset;

    fn cell() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    #[test]
    fn same_config_same_key() {
        assert_eq!(cell_key(&cell()), cell_key(&cell()));
        assert_eq!(cell_descriptor(&cell()), cell_descriptor(&cell()));
    }

    #[test]
    fn every_field_feeds_the_key() {
        let base = cell();
        let variants = [
            Experiment::new(SkuKind::A100, 4, base.model, base.strategy, 8).with_seq(256),
            Experiment::new(base.sku, 8, base.model, base.strategy, 8).with_seq(256),
            Experiment::new(base.sku, 4, ModelPreset::Gpt3_2_7B, base.strategy, 8).with_seq(256),
            cell().with_seq(512),
            Experiment::new(
                base.sku,
                4,
                base.model,
                Strategy::Pipeline { microbatch_size: 2 },
                8,
            )
            .with_seq(256),
            cell().with_precision(Precision::Fp32),
            cell().with_datapath(olab_gpu::Datapath::Vector),
            cell().with_power_cap(300.0),
            cell().with_freq_cap(0.8),
            cell().with_grad_accum(2),
            cell().with_pipeline_schedule(olab_parallel::pipeline::PipelineSchedule::GPipe),
            cell().with_fsdp_overlap(olab_parallel::fsdp::FsdpOverlap {
                prefetch_all_gather: false,
                overlap_reduce_scatter: true,
            }),
        ];
        let base_key = cell_key(&base);
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base_key, cell_key(v), "variant {i} did not change the key");
        }
    }

    #[test]
    fn calibration_version_changes_the_key() {
        let exp = cell();
        let v1 = cell_descriptor_versioned(&exp, CELL_SCHEMA_VERSION, 1);
        let v2 = cell_descriptor_versioned(&exp, CELL_SCHEMA_VERSION, 2);
        assert_ne!(
            olab_grid::fnv1a_64(v1.as_bytes()),
            olab_grid::fnv1a_64(v2.as_bytes())
        );
        let s2 = cell_descriptor_versioned(&exp, CELL_SCHEMA_VERSION + 1, 1);
        assert_ne!(
            olab_grid::fnv1a_64(v1.as_bytes()),
            olab_grid::fnv1a_64(s2.as_bytes())
        );
    }

    #[test]
    fn cell_outcome_round_trips_through_the_codec() {
        let outcomes: Vec<CachedCell> = vec![
            cell().execute(),
            CachedCell(Err(CellError::OutOfMemory {
                needed_gib: 93.5,
                budget_gib: 36.0,
            })),
            CachedCell(Err(CellError::InvalidConfig(
                "batch 8 not divisible".into(),
            ))),
            CachedCell(Err(CellError::Sim("deadlock".into()))),
            CachedCell(Err(CellError::Panic("index out of bounds".into()))),
            CachedCell(Err(CellError::Timeout {
                deadline_s: 2.5,
                attempts: 3,
            })),
            CachedCell(Err(CellError::RetriesExhausted {
                attempts: 4,
                last: "boom".into(),
            })),
        ];
        for outcome in outcomes {
            let mut w = Writer::new();
            outcome.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = CachedCell::decode(&mut r).expect("decodes");
            assert_eq!(back, outcome);
            assert!(r.is_empty(), "trailing bytes");
        }
    }

    #[test]
    fn cell_error_prints_like_experiment_error() {
        let exp = Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_13B, Strategy::Fsdp, 8);
        let from_run = exp.run().unwrap_err().to_string();
        let from_cell = exp.execute().0.unwrap_err().to_string();
        assert_eq!(from_run, from_cell);
    }

    #[test]
    fn sweep_caches_within_one_engine() {
        let cells = vec![cell(), cell()];
        let sweep = Sweep::new().with_jobs(2);
        let first = sweep.run(&cells);
        assert_eq!(first.cells.len(), 2);
        let second = sweep.run(&cells);
        assert_eq!(second.stats.simulated, 0);
        assert_eq!(second.stats.memory_hits, 2);
        assert_eq!(first.cells, second.cells);
    }
}
