//! The Fig. 8 microbenchmark: an N×N matrix multiplication executed
//! concurrently with a 1 GB all-reduce, compared against the same GEMMs
//! with no communication in flight.

use crate::{execute, Machine};
use olab_ccl::{lower, Algorithm, Collective};
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_parallel::{ComputeOp, Op};
use olab_sim::{GpuId, SimError, StreamKind, TaskSpec, Workload};

/// Result of one microbenchmark point.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobenchResult {
    /// GEMM dimension (N×N×N).
    pub n: u64,
    /// Total GEMM time with no communication, seconds.
    pub isolated_gemm_s: f64,
    /// Total GEMM time with the all-reduce in flight, seconds.
    pub overlapped_gemm_s: f64,
    /// Average power of the isolated run, watts.
    pub avg_power_isolated_w: f64,
    /// Peak power of the isolated run, watts.
    pub peak_power_isolated_w: f64,
    /// Average power of the overlapped run, watts.
    pub avg_power_overlapped_w: f64,
    /// Peak power of the overlapped run, watts.
    pub peak_power_overlapped_w: f64,
}

impl MicrobenchResult {
    /// GEMM slowdown caused by the concurrent all-reduce.
    pub fn slowdown(&self) -> f64 {
        if self.isolated_gemm_s > 0.0 {
            self.overlapped_gemm_s / self.isolated_gemm_s - 1.0
        } else {
            0.0
        }
    }
}

/// Runs the microbenchmark on one SKU: `reps` back-to-back N×N×N GEMMs on
/// every GPU, once alone and once concurrent with a ring all-reduce of
/// `allreduce_bytes` over all GPUs.
///
/// # Errors
///
/// Propagates engine errors (none are expected for this fixed DAG).
pub fn gemm_vs_allreduce(
    sku: SkuKind,
    n_gpus: usize,
    n: u64,
    reps: usize,
    allreduce_bytes: u64,
    precision: Precision,
    datapath: Datapath,
) -> Result<MicrobenchResult, SimError> {
    let machine = Machine::stock(sku.sku(), n_gpus);
    let gemm = Op::Compute(ComputeOp::new(
        olab_gpu::KernelKind::gemm(n, n, n),
        precision,
        datapath,
    ));

    let build = |with_comm: bool| -> Workload<Op> {
        let mut w = Workload::new(n_gpus);
        for g in 0..n_gpus as u16 {
            for r in 0..reps {
                w.push(TaskSpec::compute(
                    format!("gemm{n}.r{r}.g{g}"),
                    GpuId(g),
                    gemm.clone(),
                ));
            }
        }
        if with_comm {
            let group: Vec<GpuId> = (0..n_gpus as u16).map(GpuId).collect();
            let c = Collective::all_reduce(allreduce_bytes, group.clone());
            let op = lower(
                &c,
                Algorithm::Ring,
                &machine.config().sku,
                &machine.config().topology,
                precision,
            );
            w.push(TaskSpec::new(
                "ar.1g",
                group,
                StreamKind::Comm,
                Op::Comm(op),
            ));
        }
        w
    };

    let isolated = execute(&build(false), &machine)?;
    let overlapped = execute(&build(true), &machine)?;

    let gemm_time = |run: &crate::RunResult| run.gpus[0].compute_s;
    // Power statistics are taken over the GEMM phase only — the all-reduce
    // tail after the last GEMM would otherwise dilute the averages.
    let gemm_end = |run: &crate::RunResult| {
        run.trace
            .records()
            .iter()
            .filter(|r| r.stream == StreamKind::Compute)
            .map(|r| r.end.as_secs())
            .fold(0.0, f64::max)
    };
    let window_stats = |run: &crate::RunResult| {
        let end = gemm_end(run);
        let avg = run
            .gpus
            .iter()
            .map(|g| g.power.average_over(0.0, end))
            .sum::<f64>()
            / run.gpus.len() as f64;
        let peak = run
            .gpus
            .iter()
            .map(|g| g.power.peak_over(0.0, end))
            .fold(0.0, f64::max);
        (avg, peak)
    };
    let (avg_iso, peak_iso) = window_stats(&isolated);
    let (avg_ovl, peak_ovl) = window_stats(&overlapped);

    Ok(MicrobenchResult {
        n,
        isolated_gemm_s: gemm_time(&isolated),
        overlapped_gemm_s: gemm_time(&overlapped),
        avg_power_isolated_w: avg_iso,
        peak_power_isolated_w: peak_iso,
        avg_power_overlapped_w: avg_ovl,
        peak_power_overlapped_w: peak_ovl,
    })
}

/// The paper's Fig. 8 sweep: N from 1Ki to 16Ki, 1 GB all-reduce.
pub fn fig8_sweep(sku: SkuKind, n_gpus: usize) -> Result<Vec<MicrobenchResult>, SimError> {
    [1024u64, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&n| {
            // Keep total GEMM time comparable across N: work scales as N^3.
            let reps = match n {
                1024 => 64,
                2048 => 16,
                4096 => 4,
                _ => 2,
            };
            gemm_vs_allreduce(
                sku,
                n_gpus,
                n,
                reps,
                1 << 30,
                Precision::Fp16,
                Datapath::TensorCore,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_slows_gemms_and_raises_power() {
        let r = gemm_vs_allreduce(
            SkuKind::H100,
            4,
            4096,
            4,
            1 << 30,
            Precision::Fp16,
            Datapath::TensorCore,
        )
        .unwrap();
        assert!(r.slowdown() > 0.0, "slowdown {}", r.slowdown());
        assert!(r.peak_power_overlapped_w > r.peak_power_isolated_w);
    }

    #[test]
    fn amd_slowdown_exceeds_nvidia_slowdown() {
        let h = gemm_vs_allreduce(
            SkuKind::H100,
            4,
            4096,
            4,
            1 << 30,
            Precision::Fp16,
            Datapath::TensorCore,
        )
        .unwrap();
        let m = gemm_vs_allreduce(
            SkuKind::Mi250,
            4,
            4096,
            4,
            1 << 30,
            Precision::Fp16,
            Datapath::TensorCore,
        )
        .unwrap();
        assert!(m.slowdown() > h.slowdown());
    }

    #[test]
    fn sweep_produces_all_points() {
        let points = fig8_sweep(SkuKind::A100, 4).unwrap();
        assert_eq!(points.len(), 5);
        assert!(points.iter().all(|p| p.isolated_gemm_s > 0.0));
    }
}
