//! One cell of the paper's evaluation grid.

use crate::{execute, execute_lean, Jitter, Machine, MachineConfig, OverlapMetrics, RunResult};
use olab_gpu::{Datapath, PowerLimit, Precision, SkuKind};
use olab_models::memory::{self, ActivationPolicy, Sharding};
use olab_models::ModelPreset;
use olab_parallel::pipeline::PipelineSchedule;
use olab_parallel::{fsdp, pipeline, tensor, ExecutionMode, Op};
use olab_power::Sampler;
use olab_sim::{SimError, Workload};
use std::error::Error;
use std::fmt;

/// The distribution strategy of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fully-Sharded Data Parallelism (ZeRO-3); `batch` is per-rank.
    Fsdp,
    /// GPipe pipeline parallelism; `batch` is the global batch, split into
    /// microbatches of `microbatch_size`.
    Pipeline {
        /// Samples per microbatch.
        microbatch_size: u64,
    },
    /// Megatron tensor parallelism; `batch` is global (replicated on every
    /// rank), layers are sharded intra-layer.
    TensorParallel,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Fsdp => write!(f, "FSDP"),
            Strategy::Pipeline { .. } => write!(f, "PP"),
            Strategy::TensorParallel => write!(f, "TP"),
        }
    }
}

/// Errors from configuring or running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The configuration does not fit in device memory (the paper's
    /// A100-can't-train-6.7B situation).
    OutOfMemory {
        /// Required bytes (cheapest activation policy).
        needed_gib: f64,
        /// Usable capacity.
        budget_gib: f64,
    },
    /// The batch does not divide into microbatches, or similar.
    InvalidConfig(String),
    /// The simulation failed.
    Sim(SimError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::OutOfMemory {
                needed_gib,
                budget_gib,
            } => write!(
                f,
                "out of device memory: needs {needed_gib:.1} GiB, {budget_gib:.1} GiB usable"
            ),
            ExperimentError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<olab_ccl::CclError> for ExperimentError {
    fn from(e: olab_ccl::CclError) -> Self {
        ExperimentError::InvalidConfig(e.to_string())
    }
}

/// One experiment: a (SKU, model, strategy, batch, precision, datapath,
/// power limit) cell, run in all three execution modes.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// GPU SKU.
    pub sku: SkuKind,
    /// Number of GPUs in the node.
    pub n_gpus: usize,
    /// Workload.
    pub model: ModelPreset,
    /// Distribution strategy.
    pub strategy: Strategy,
    /// Batch size (per-rank for FSDP, global for pipeline).
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Training precision.
    pub precision: Precision,
    /// Datapath for matrix kernels.
    pub datapath: Datapath,
    /// Optional strict power cap, watts (`nvidia-smi -pl`).
    pub power_cap_w: Option<f64>,
    /// Optional frequency cap as a fraction of boost clock.
    pub freq_cap: Option<f64>,
    /// Pipeline schedule flavor (1F1B by default, as in Megatron-LM).
    pub pipeline_schedule: PipelineSchedule,
    /// FSDP gradient-accumulation micro-steps (1 = the paper's setup).
    pub grad_accum_steps: u32,
    /// FSDP selective-overlap policy.
    pub fsdp_overlap: fsdp::FsdpOverlap,
}

impl Experiment {
    /// Creates an experiment with the paper's defaults: sequence length
    /// 1024, FP16 on tensor cores, stock power limits.
    pub fn new(
        sku: SkuKind,
        n_gpus: usize,
        model: ModelPreset,
        strategy: Strategy,
        batch: u64,
    ) -> Self {
        Experiment {
            sku,
            n_gpus,
            model,
            strategy,
            batch,
            seq: 1024,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            power_cap_w: None,
            freq_cap: None,
            pipeline_schedule: PipelineSchedule::OneFOneB,
            grad_accum_steps: 1,
            fsdp_overlap: fsdp::FsdpOverlap::default(),
        }
    }

    /// Sets the sequence length.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the numeric precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the matrix-kernel datapath.
    pub fn with_datapath(mut self, datapath: Datapath) -> Self {
        self.datapath = datapath;
        self
    }

    /// Applies a strict power cap in watts.
    pub fn with_power_cap(mut self, watts: f64) -> Self {
        self.power_cap_w = Some(watts);
        self
    }

    /// Applies a frequency cap as a fraction of the boost clock.
    pub fn with_freq_cap(mut self, factor: f64) -> Self {
        self.freq_cap = Some(factor);
        self
    }

    /// Selects the pipeline schedule (1F1B default; GPipe for ablations).
    pub fn with_pipeline_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.pipeline_schedule = schedule;
        self
    }

    /// Sets FSDP gradient-accumulation micro-steps.
    pub fn with_grad_accum(mut self, steps: u32) -> Self {
        self.grad_accum_steps = steps;
        self
    }

    /// Sets the FSDP selective-overlap policy.
    pub fn with_fsdp_overlap(mut self, overlap: fsdp::FsdpOverlap) -> Self {
        self.fsdp_overlap = overlap;
        self
    }

    /// A short label for report rows, e.g. `H100x4 GPT-3 XL FSDP b8`.
    pub fn label(&self) -> String {
        format!(
            "{}x{} {} {} b{}",
            self.sku,
            self.n_gpus,
            self.model.config().name,
            self.strategy,
            self.batch
        )
    }

    /// Samples one simulated iteration trains: the global batch. FSDP's
    /// `batch` is per-rank (data parallelism multiplies it by the world
    /// size); pipeline and tensor parallelism split one global batch.
    ///
    /// This is the numerator of the goodput metric — an elastic world-size
    /// change shifts it for FSDP but not for the model-parallel layouts.
    pub fn samples_per_iteration(&self) -> u64 {
        match self.strategy {
            Strategy::Fsdp => self.batch * self.n_gpus as u64,
            Strategy::Pipeline { .. } | Strategy::TensorParallel => self.batch,
        }
    }

    /// Microbatch count for pipeline experiments.
    fn microbatches(&self) -> Result<u32, ExperimentError> {
        match self.strategy {
            Strategy::Fsdp | Strategy::TensorParallel => Ok(0),
            Strategy::Pipeline { microbatch_size } => {
                if microbatch_size > self.batch {
                    return Err(ExperimentError::InvalidConfig(format!(
                        "microbatch size {microbatch_size} exceeds batch {}",
                        self.batch
                    )));
                }
                if microbatch_size == 0 || !self.batch.is_multiple_of(microbatch_size) {
                    return Err(ExperimentError::InvalidConfig(format!(
                        "batch {} not divisible by microbatch size {microbatch_size}",
                        self.batch
                    )));
                }
                Ok((self.batch / microbatch_size) as u32)
            }
        }
    }

    /// Validates device memory and picks the cheapest activation policy,
    /// exactly as the training frameworks would (keep activations if they
    /// fit, otherwise checkpoint).
    pub fn validate(&self) -> Result<ActivationPolicy, ExperimentError> {
        if self.n_gpus == 0 {
            return Err(ExperimentError::InvalidConfig(
                "node must have at least one GPU".into(),
            ));
        }
        if self.batch == 0 {
            return Err(ExperimentError::InvalidConfig(
                "batch size must be positive".into(),
            ));
        }
        if self.seq == 0 {
            return Err(ExperimentError::InvalidConfig(
                "sequence length must be positive".into(),
            ));
        }
        let cfg = self.model.config();
        let sku = self.sku.sku();
        let (sharding, batch) = match self.strategy {
            Strategy::Fsdp => (Sharding::FsdpZero3 { ranks: self.n_gpus }, self.batch),
            Strategy::TensorParallel => {
                (Sharding::TensorParallel { ranks: self.n_gpus }, self.batch)
            }
            Strategy::Pipeline { .. } => {
                let m = self.microbatches()?;
                let in_flight = match self.pipeline_schedule {
                    PipelineSchedule::GPipe => m as usize,
                    PipelineSchedule::OneFOneB => (m as usize).min(self.n_gpus),
                };
                (
                    Sharding::Pipeline {
                        stages: self.n_gpus,
                        in_flight,
                    },
                    self.batch / u64::from(m.max(1)),
                )
            }
        };
        memory::fit(&cfg, batch, self.seq, self.precision, sharding, &sku)
            .map(|(policy, _)| policy)
            .map_err(|estimate| ExperimentError::OutOfMemory {
                needed_gib: estimate.total_gib(),
                budget_gib: sku.mem_bytes() as f64 * memory::USABLE_FRACTION / (1u64 << 30) as f64,
            })
    }

    /// The machine this experiment runs on (with any power/frequency caps).
    pub fn machine(&self) -> Machine {
        let mut config = MachineConfig::stock(self.sku.sku(), self.n_gpus);
        if let Some(cap) = self.power_cap_w {
            config.governor.limit = PowerLimit::strict(cap);
        }
        if let Some(f) = self.freq_cap {
            config.governor.max_freq_factor = f;
        }
        Machine::new(config)
    }

    /// Builds the schedule for one execution mode.
    pub fn timeline(
        &self,
        mode: ExecutionMode,
        policy: ActivationPolicy,
    ) -> Result<Workload<Op>, ExperimentError> {
        let sku = self.sku.sku();
        let machine = self.machine();
        let topo = &machine.config().topology;
        match self.strategy {
            Strategy::Fsdp => {
                let mut plan = fsdp::FsdpPlan::new(
                    self.model.config(),
                    self.n_gpus,
                    self.batch,
                    self.seq,
                    self.precision,
                    self.datapath,
                    policy,
                );
                plan.grad_accum_steps = self.grad_accum_steps;
                plan.overlap = self.fsdp_overlap;
                Ok(fsdp::fsdp_timeline(&plan, &sku, topo, mode))
            }
            Strategy::TensorParallel => {
                let plan = tensor::TensorPlan {
                    model: self.model.config(),
                    ranks: self.n_gpus,
                    batch: self.batch,
                    seq: self.seq,
                    precision: self.precision,
                    datapath: self.datapath,
                    activation_policy: policy,
                };
                Ok(tensor::tensor_timeline(&plan, &sku, topo, mode))
            }
            Strategy::Pipeline { .. } => {
                let m = self.microbatches()?;
                let plan = pipeline::PipelinePlan {
                    model: self.model.config(),
                    stages: self.n_gpus,
                    microbatches: m,
                    batch_total: self.batch,
                    seq: self.seq,
                    precision: self.precision,
                    datapath: self.datapath,
                    activation_policy: policy,
                    schedule: self.pipeline_schedule,
                };
                Ok(pipeline::pipeline_timeline(&plan, &sku, topo, mode))
            }
        }
    }

    /// The vendor-appropriate telemetry sampler.
    pub fn sampler(&self) -> Sampler {
        match self.sku.sku().vendor {
            olab_gpu::Vendor::Nvidia => Sampler::nvml(),
            olab_gpu::Vendor::Amd => Sampler::amd_smi(),
        }
    }

    /// Runs the experiment: overlapped, sequential, and contention-free
    /// (ideal cross-check) simulations, plus all derived metrics.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::OutOfMemory`] if the configuration cannot fit,
    /// [`ExperimentError::InvalidConfig`] for bad batch/microbatch splits,
    /// [`ExperimentError::Sim`] if the engine rejects the schedule.
    pub fn run(&self) -> Result<ExperimentReport, ExperimentError> {
        let policy = self.validate()?;
        let machine = self.machine();

        let overlapped = execute(&self.timeline(ExecutionMode::Overlapped, policy)?, &machine)?;
        let sequential = execute(&self.timeline(ExecutionMode::Sequential, policy)?, &machine)?;
        // Only the ideal leg's end-to-end time is reported, so the lean
        // executor serves it without materializing a trace.
        let ideal = execute_lean(
            &self.timeline(ExecutionMode::Overlapped, policy)?,
            &machine.uncontended(),
        )?;

        let metrics = OverlapMetrics::derive(&overlapped, &sequential);
        let sampler = self.sampler();
        let sampled = overlapped.gpus[0].power.sample(sampler);

        Ok(ExperimentReport {
            experiment: self.clone(),
            activation_policy: policy,
            metrics,
            sampled_avg_w: sampled.average().unwrap_or(0.0),
            sampled_peak_w: sampled.peak().unwrap_or(0.0),
            ideal_simulated_e2e_s: ideal.e2e_s,
            overlapped,
            sequential,
        })
    }
}

/// Mean/std statistics over repeated jittered runs (the paper's
/// average-over-25-runs methodology).
#[derive(Debug, Clone)]
pub struct MultiRunStats {
    /// Per-run metrics.
    pub runs: Vec<OverlapMetrics>,
    /// The noise level used.
    pub sigma: f64,
}

impl MultiRunStats {
    fn series(&self, f: impl Fn(&OverlapMetrics) -> f64) -> (f64, f64) {
        let n = self.runs.len().max(1) as f64;
        let mean = self.runs.iter().map(&f).sum::<f64>() / n;
        let var = self.runs.iter().map(|m| (f(m) - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    /// Mean and standard deviation of the overlapped E2E time, seconds.
    pub fn e2e_overlapped(&self) -> (f64, f64) {
        self.series(|m| m.e2e_overlapped_s)
    }

    /// Mean and standard deviation of the Eq. 1 compute slowdown.
    pub fn compute_slowdown(&self) -> (f64, f64) {
        self.series(|m| m.compute_slowdown)
    }

    /// Coefficient of variation of the E2E time (std/mean).
    pub fn e2e_cv(&self) -> f64 {
        let (mean, std) = self.e2e_overlapped();
        if mean > 0.0 {
            std / mean
        } else {
            0.0
        }
    }
}

impl Experiment {
    /// Runs the experiment once with measurement noise.
    ///
    /// # Errors
    ///
    /// Same as [`Experiment::run`].
    pub fn run_jittered(&self, seed: u64, sigma: f64) -> Result<ExperimentReport, ExperimentError> {
        let policy = self.validate()?;
        let mut machine = self.machine();
        machine = machine.with_jitter(Jitter { seed, sigma });

        let overlapped = execute(&self.timeline(ExecutionMode::Overlapped, policy)?, &machine)?;
        let sequential = execute(&self.timeline(ExecutionMode::Sequential, policy)?, &machine)?;
        let ideal = execute_lean(
            &self.timeline(ExecutionMode::Overlapped, policy)?,
            &machine.uncontended(),
        )?;
        let metrics = OverlapMetrics::derive(&overlapped, &sequential);
        let sampled = overlapped.gpus[0].power.sample(self.sampler());
        Ok(ExperimentReport {
            experiment: self.clone(),
            activation_policy: policy,
            metrics,
            sampled_avg_w: sampled.average().unwrap_or(0.0),
            sampled_peak_w: sampled.peak().unwrap_or(0.0),
            ideal_simulated_e2e_s: ideal.e2e_s,
            overlapped,
            sequential,
        })
    }

    /// Runs the experiment `n` times with different noise seeds and returns
    /// the distribution of metrics — the paper's methodology ("all metrics
    /// were averaged over 25 runs").
    ///
    /// The seeds fan out across the `olab-grid` worker pool; results come
    /// back in seed order (seed `i` is always `runs[i]`) because the pool
    /// collects by input index, and each seeded run is deterministic.
    ///
    /// # Errors
    ///
    /// Same as [`Experiment::run`].
    pub fn run_n(&self, n: usize, sigma: f64) -> Result<MultiRunStats, ExperimentError> {
        let seeds: Vec<u64> = (0..n as u64).collect();
        let results = olab_grid::Pool::with_available_parallelism().map(&seeds, |&seed| {
            self.run_jittered(seed, sigma).map(|r| r.metrics)
        });
        let mut runs = Vec::with_capacity(n);
        for result in results {
            runs.push(result?);
        }
        Ok(MultiRunStats { runs, sigma })
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Everything measured and derived for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The configuration that produced this report.
    pub experiment: Experiment,
    /// The activation policy the memory check selected.
    pub activation_policy: ActivationPolicy,
    /// The paper's metrics (Eqs. 1–5).
    pub metrics: OverlapMetrics,
    /// The overlapped run.
    pub overlapped: RunResult,
    /// The sequential run.
    pub sequential: RunResult,
    /// E2E of the contention-free simulation (cross-check for Eq. 4).
    pub ideal_simulated_e2e_s: f64,
    /// Vendor-sampler average power, watts.
    pub sampled_avg_w: f64,
    /// Vendor-sampler peak power, watts.
    pub sampled_peak_w: f64,
}

impl ExperimentReport {
    /// TDP of the experiment's SKU, for normalized power columns.
    pub fn tdp_w(&self) -> f64 {
        self.experiment.sku.sku().tdp_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(sku: SkuKind, strategy: Strategy) -> Experiment {
        Experiment::new(sku, 4, ModelPreset::Gpt3Xl, strategy, 8).with_seq(256)
    }

    #[test]
    fn fsdp_experiment_runs_end_to_end() {
        let r = small(SkuKind::H100, Strategy::Fsdp).run().expect("runs");
        assert!(r.metrics.e2e_overlapped_s > 0.0);
        assert!(r.metrics.overlap_ratio > 0.0);
        assert!(r.sampled_peak_w > 0.0);
    }

    #[test]
    fn pipeline_experiment_runs_end_to_end() {
        let r = small(SkuKind::A100, Strategy::Pipeline { microbatch_size: 2 })
            .run()
            .expect("runs");
        assert!(r.metrics.e2e_overlapped_s > 0.0);
    }

    #[test]
    fn samples_per_iteration_follows_the_sharding_layout() {
        // FSDP's batch is per-rank; model parallelism splits one global batch.
        assert_eq!(
            small(SkuKind::H100, Strategy::Fsdp).samples_per_iteration(),
            32
        );
        assert_eq!(
            small(SkuKind::H100, Strategy::Pipeline { microbatch_size: 2 }).samples_per_iteration(),
            8
        );
        assert_eq!(
            small(SkuKind::H100, Strategy::TensorParallel).samples_per_iteration(),
            8
        );
    }

    #[test]
    fn ideal_simulation_brackets_derived_ideal() {
        let r = small(SkuKind::Mi210, Strategy::Fsdp).run().expect("runs");
        // The Eq. 4 derivation and the direct contention-free simulation
        // should roughly agree.
        let ratio = r.metrics.e2e_ideal_s / r.ideal_simulated_e2e_s;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn oversized_model_reports_oom() {
        let e = Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3_13B, Strategy::Fsdp, 8);
        match e.run() {
            Err(ExperimentError::OutOfMemory {
                needed_gib,
                budget_gib,
            }) => {
                assert!(needed_gib > budget_gib);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn indivisible_microbatch_is_invalid() {
        let e = Experiment::new(
            SkuKind::A100,
            4,
            ModelPreset::Gpt3Xl,
            Strategy::Pipeline { microbatch_size: 3 },
            8,
        );
        assert!(matches!(e.run(), Err(ExperimentError::InvalidConfig(_))));
    }

    #[test]
    fn power_cap_slows_the_iteration() {
        let stock = small(SkuKind::A100, Strategy::Fsdp).run().unwrap();
        let capped = small(SkuKind::A100, Strategy::Fsdp)
            .with_power_cap(150.0)
            .run()
            .unwrap();
        assert!(
            capped.metrics.e2e_overlapped_s > 1.2 * stock.metrics.e2e_overlapped_s,
            "capped {} vs stock {}",
            capped.metrics.e2e_overlapped_s,
            stock.metrics.e2e_overlapped_s
        );
    }

    #[test]
    fn jittered_runs_vary_but_stay_near_the_deterministic_result() {
        let exp = small(SkuKind::H100, Strategy::Fsdp);
        let deterministic = exp.run().unwrap().metrics.e2e_overlapped_s;
        let stats = exp.run_n(5, 0.05).expect("multi-run succeeds");
        assert_eq!(stats.runs.len(), 5);
        let (mean, std) = stats.e2e_overlapped();
        assert!(std > 0.0, "noise must produce spread");
        assert!(
            (mean / deterministic - 1.0).abs() < 0.05,
            "mean {mean} vs deterministic {deterministic}"
        );
        assert!(stats.e2e_cv() < 0.05, "cv {}", stats.e2e_cv());
    }

    #[test]
    fn same_seed_reproduces_the_same_jittered_run() {
        let exp = small(SkuKind::A100, Strategy::Fsdp);
        let a = exp.run_jittered(7, 0.05).unwrap();
        let b = exp.run_jittered(7, 0.05).unwrap();
        assert_eq!(a.metrics.e2e_overlapped_s, b.metrics.e2e_overlapped_s);
        let c = exp.run_jittered(8, 0.05).unwrap();
        assert_ne!(a.metrics.e2e_overlapped_s, c.metrics.e2e_overlapped_s);
    }

    #[test]
    fn zero_batch_is_a_typed_error() {
        for strategy in [
            Strategy::Fsdp,
            Strategy::TensorParallel,
            Strategy::Pipeline { microbatch_size: 2 },
        ] {
            let e = Experiment::new(SkuKind::A100, 4, ModelPreset::Gpt3Xl, strategy, 0);
            assert!(
                matches!(e.run(), Err(ExperimentError::InvalidConfig(_))),
                "{strategy:?} must reject batch 0"
            );
        }
    }

    #[test]
    fn zero_seq_is_a_typed_error() {
        let e = small(SkuKind::A100, Strategy::Fsdp).with_seq(0);
        assert!(matches!(e.run(), Err(ExperimentError::InvalidConfig(_))));
    }

    #[test]
    fn zero_gpus_is_a_typed_error() {
        let e = Experiment::new(SkuKind::A100, 0, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8);
        assert!(matches!(e.run(), Err(ExperimentError::InvalidConfig(_))));
    }

    #[test]
    fn microbatch_larger_than_batch_is_a_typed_error() {
        let e = Experiment::new(
            SkuKind::A100,
            4,
            ModelPreset::Gpt3Xl,
            Strategy::Pipeline {
                microbatch_size: 16,
            },
            8,
        );
        match e.run() {
            Err(ExperimentError::InvalidConfig(msg)) => {
                assert!(msg.contains("exceeds batch"), "message: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn seq_length_one_produces_finite_metrics() {
        // The degenerate single-token sequence must run without panicking
        // and without NaN/inf leaking into any derived metric.
        for strategy in [Strategy::Fsdp, Strategy::Pipeline { microbatch_size: 2 }] {
            let r = small(SkuKind::H100, strategy)
                .with_seq(1)
                .run()
                .expect("seq=1 must run");
            let m = &r.metrics;
            for (name, v) in [
                ("compute_slowdown", m.compute_slowdown),
                ("overlap_ratio", m.overlap_ratio),
                ("e2e_overlapped_s", m.e2e_overlapped_s),
                ("e2e_ideal_s", m.e2e_ideal_s),
                ("e2e_sequential_derived_s", m.e2e_sequential_derived_s),
                ("e2e_sequential_measured_s", m.e2e_sequential_measured_s),
                ("avg_power_w", m.avg_power_w),
                ("peak_power_w", m.peak_power_w),
                ("energy_j", m.energy_j),
            ] {
                assert!(v.is_finite(), "{strategy:?}: {name} = {v} is not finite");
            }
            assert!(m.e2e_overlapped_s > 0.0);
        }
    }

    #[test]
    fn labels_identify_the_cell() {
        let e = small(SkuKind::H100, Strategy::Fsdp);
        assert_eq!(e.label(), "H100x4 GPT-3 XL FSDP b8");
    }
}
