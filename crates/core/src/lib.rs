//! # olab-core — the compute/communication-overlap characterization harness
//!
//! Reproduction of *"Characterizing Compute-Communication Overlap in
//! GPU-Accelerated Distributed Deep Learning: Performance and Power
//! Implications"* (ISPASS 2025) on a simulated multi-GPU node.
//!
//! The crate ties the substrates together:
//!
//! * [`Machine`] — the contention model: a [`olab_sim::RateModel`] that
//!   prices compute kernels and collectives sharing a GPU (SM occupancy,
//!   HBM bandwidth, cache interference, DVFS under power limits) and
//!   reports instantaneous board power;
//! * [`execute`] — runs a schedule (from `olab-parallel`) on a [`Machine`]
//!   and collects per-GPU compute/comm/overlap times and power traces;
//! * [`OverlapMetrics`] — the paper's metrics, Eqs. (1)–(5): compute
//!   slowdown, overlapped-computation ratio, and the
//!   ideal/overlapped/sequential end-to-end times;
//! * [`Experiment`] — one cell of the paper's evaluation grid (SKU × model
//!   × batch × strategy × precision × datapath × power limit), validated
//!   against device memory and run in all three execution modes;
//! * [`registry`] — the sweeps behind every figure and table;
//! * [`sweep`] — parallel, cached grid execution on the `olab-grid`
//!   engine: every regenerator and CLI sweep fans cells across a
//!   work-stealing pool and serves repeats from a content-addressed
//!   result cache;
//! * [`microbench`] — the Fig. 8 microbenchmark (N×N GEMM concurrent with
//!   a 1 GB all-reduce);
//! * [`report`] — markdown/CSV table rendering shared by the `olab-bench`
//!   regenerators.
//!
//! ## Quickstart
//!
//! ```rust
//! use olab_core::{Experiment, Strategy};
//! use olab_gpu::{Datapath, Precision, SkuKind};
//! use olab_models::ModelPreset;
//!
//! let exp = Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8)
//!     .with_seq(256); // keep the doctest fast
//! let report = exp.run()?;
//! assert!(report.metrics.e2e_overlapped_s < report.metrics.e2e_sequential_measured_s);
//! # Ok::<(), olab_core::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analytic;
pub mod chrome_trace;
mod executor;
mod experiment;
pub mod fastpath;
pub mod fmtutil;
mod machine;
mod metrics;
pub mod microbench;
pub mod registry;
pub mod report;
pub mod sweep;

pub use chrome_trace::{
    to_chrome_trace, to_chrome_trace_annotated, to_chrome_trace_full, CounterTrack, TraceAnnotation,
};
pub use executor::{
    execute, execute_event_loop, execute_lean, execute_model, execute_model_observed,
    execute_observed, GpuRunStats, LeanGpuStats, LeanRun, RunResult,
};
pub use experiment::{Experiment, ExperimentError, ExperimentReport, MultiRunStats, Strategy};
pub use fastpath::{CellClassifier, FastPathDecision};
pub use machine::{Jitter, Machine, MachineConfig};
pub use metrics::{goodput_samples_per_s, OverlapMetrics};
pub use sweep::{CellError, CellMetrics, CellOutcome, Sweep, SweepOutcome};
