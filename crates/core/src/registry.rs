//! The experiment grids behind every figure and table of the paper.
//!
//! Each function returns the full grid, including configurations that will
//! fail memory validation — the regenerators print those as the paper's
//! missing bars (e.g. GPT-3 6.7B on the 40 GB A100).

use crate::{Experiment, Strategy};
use olab_gpu::{Datapath, Precision, SkuKind};
use olab_models::ModelPreset;

/// Batch sizes swept for FSDP experiments (per-rank).
pub const FSDP_BATCHES: [u64; 4] = [8, 16, 32, 64];

/// Global batch sizes swept for pipeline experiments.
pub const PP_BATCHES: [u64; 4] = [8, 16, 32, 64];

/// Microbatch size used by all pipeline experiments.
pub const PP_MICROBATCH: u64 = 8;

/// GPUs per node in the paper's main grid.
pub const NODE_GPUS: usize = 4;

/// Strict power caps swept in Fig. 9, watts (A100).
pub const FIG9_CAPS: [f64; 6] = [400.0, 300.0, 250.0, 200.0, 150.0, 100.0];

/// Fig. 1(a): overlap amount across model and batch sizes, FSDP on an
/// 8×H100 node.
pub fn fig1a() -> Vec<Experiment> {
    let mut out = Vec::new();
    for model in ModelPreset::ALL {
        for batch in FSDP_BATCHES {
            out.push(Experiment::new(
                SkuKind::H100,
                8,
                model,
                Strategy::Fsdp,
                batch,
            ));
        }
    }
    out
}

/// Fig. 1(b): overlap amount across batch sizes, pipeline parallelism on a
/// 4×A100 node with GPT-3 2.7B.
pub fn fig1b() -> Vec<Experiment> {
    PP_BATCHES
        .iter()
        .map(|&batch| {
            Experiment::new(
                SkuKind::A100,
                NODE_GPUS,
                ModelPreset::Gpt3_2_7B,
                Strategy::Pipeline {
                    microbatch_size: PP_MICROBATCH,
                },
                batch,
            )
        })
        .collect()
}

/// The main grid shared by Figs. 4, 5 and 6: every SKU × strategy × model ×
/// batch size.
pub fn main_grid() -> Vec<Experiment> {
    let mut out = Vec::new();
    for sku in SkuKind::ALL {
        for model in ModelPreset::ALL {
            for batch in FSDP_BATCHES {
                out.push(Experiment::new(
                    sku,
                    NODE_GPUS,
                    model,
                    Strategy::Fsdp,
                    batch,
                ));
            }
            for batch in PP_BATCHES {
                out.push(Experiment::new(
                    sku,
                    NODE_GPUS,
                    model,
                    Strategy::Pipeline {
                        microbatch_size: PP_MICROBATCH,
                    },
                    batch,
                ));
            }
        }
    }
    out
}

/// Fig. 7: the fine-grained power trace — LLaMA-2 13B FSDP on 4×MI250.
pub fn fig7() -> Experiment {
    Experiment::new(
        SkuKind::Mi250,
        NODE_GPUS,
        ModelPreset::Llama2_13B,
        Strategy::Fsdp,
        8,
    )
}

/// Fig. 9: power capping on 4×A100, GPT-3 2.7B FSDP.
pub fn fig9() -> Vec<Experiment> {
    FIG9_CAPS
        .iter()
        .map(|&cap| {
            Experiment::new(
                SkuKind::A100,
                NODE_GPUS,
                ModelPreset::Gpt3_2_7B,
                Strategy::Fsdp,
                8,
            )
            .with_power_cap(cap)
        })
        .collect()
}

/// Fig. 10: numeric precision (FP32 vs FP16) on 4×H100 across workloads.
/// Returns (FP32 experiment, FP16 experiment) pairs.
pub fn fig10() -> Vec<(Experiment, Experiment)> {
    let mut out = Vec::new();
    for model in [
        ModelPreset::Gpt3Xl,
        ModelPreset::Gpt3_2_7B,
        ModelPreset::Gpt3_6_7B,
    ] {
        for batch in [8, 16] {
            let base = Experiment::new(SkuKind::H100, NODE_GPUS, model, Strategy::Fsdp, batch);
            out.push((
                base.clone()
                    .with_precision(Precision::Fp32)
                    .with_datapath(Datapath::Vector),
                base.with_precision(Precision::Fp16)
                    .with_datapath(Datapath::TensorCore),
            ));
        }
    }
    out
}

/// Fig. 11: FP32 on the vector path vs TF32 on tensor cores, 4×H100.
/// Returns (FP32-vector experiment, TF32-tensor experiment) pairs.
pub fn fig11() -> Vec<(Experiment, Experiment)> {
    let mut out = Vec::new();
    for model in [
        ModelPreset::Gpt3Xl,
        ModelPreset::Gpt3_2_7B,
        ModelPreset::Gpt3_6_7B,
    ] {
        for batch in [8, 16] {
            let base = Experiment::new(SkuKind::H100, NODE_GPUS, model, Strategy::Fsdp, batch)
                .with_precision(Precision::Fp32);
            out.push((
                base.clone().with_datapath(Datapath::Vector),
                base.with_precision(Precision::Tf32)
                    .with_datapath(Datapath::TensorCore),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_covers_all_models_and_batches() {
        let g = fig1a();
        assert_eq!(g.len(), ModelPreset::ALL.len() * FSDP_BATCHES.len());
        assert!(g.iter().all(|e| e.n_gpus == 8 && e.sku == SkuKind::H100));
    }

    #[test]
    fn main_grid_covers_every_sku() {
        let g = main_grid();
        assert_eq!(
            g.len(),
            SkuKind::ALL.len() * ModelPreset::ALL.len() * (FSDP_BATCHES.len() + PP_BATCHES.len())
        );
        for sku in SkuKind::ALL {
            assert!(g.iter().any(|e| e.sku == sku));
        }
    }

    #[test]
    fn fig9_applies_decreasing_caps() {
        let g = fig9();
        assert_eq!(g.len(), FIG9_CAPS.len());
        assert!(g.iter().all(|e| e.power_cap_w.is_some()));
    }

    #[test]
    fn fig10_pairs_differ_only_in_numerics() {
        for (fp32, fp16) in fig10() {
            assert_eq!(fp32.model, fp16.model);
            assert_eq!(fp32.batch, fp16.batch);
            assert_eq!(fp32.precision, Precision::Fp32);
            assert_eq!(fp16.precision, Precision::Fp16);
        }
    }

    #[test]
    fn fig11_compares_datapaths() {
        for (vector, tensor) in fig11() {
            assert_eq!(vector.datapath, Datapath::Vector);
            assert_eq!(tensor.datapath, Datapath::TensorCore);
            assert_eq!(tensor.precision, Precision::Tf32);
        }
    }

    #[test]
    fn some_main_grid_cells_are_infeasible_like_the_paper() {
        // The A100 cannot run the 13B models: those cells must fail
        // validation, mirroring the paper's missing bars.
        let infeasible = main_grid()
            .iter()
            .filter(|e| e.sku == SkuKind::A100 && e.model == ModelPreset::Gpt3_13B)
            .filter(|e| matches!(e.strategy, Strategy::Fsdp))
            .all(|e| e.validate().is_err());
        assert!(infeasible);
    }
}
