//! Shared text-format helpers for the exporters: JSON string escaping
//! (Chrome traces, manifests, event logs), CSV cell escaping (report
//! tables, counter series), and a minimal JSON well-formedness checker
//! used by tests and smoke gates to validate exporter output end-to-end.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal (without
/// the surrounding quotes): `"` and `\` are backslash-escaped and control
/// characters become `\uXXXX`. All other characters — including non-ASCII
/// UTF-8 — pass through unchanged, which JSON permits.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes one CSV cell: cells containing a comma, a double quote, or a
/// line break are wrapped in double quotes with embedded quotes doubled
/// (RFC 4180); everything else is returned verbatim.
pub fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Checks that `s` is one well-formed JSON value (object, array, string,
/// number, `true`/`false`/`null`) with nothing but whitespace after it.
///
/// This is a validator, not a parser: it builds no value tree and exists
/// so tests and CI smoke steps can assert that hand-assembled exporter
/// output (Chrome traces with counter tracks, manifests, JSONL lines)
/// actually parses — catching escaping and comma regressions substring
/// assertions miss.
///
/// # Errors
///
/// A human-readable description of the first defect, with its byte
/// offset.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos:?}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {}", *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {}", *pos)),
            },
            c if c < 0x20 => {
                return Err(format!("raw control character at byte {}", *pos));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("malformed fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("malformed exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_escape_passes_utf8_through() {
        assert_eq!(json_escape("gpu⇄link µs"), "gpu⇄link µs");
        assert_eq!(json_escape("日本語"), "日本語");
    }

    #[test]
    fn json_escaped_strings_validate() {
        for raw in ["plain", "q\"q", "back\\slash", "ctl\n\t\r", "µ⇄日本語"] {
            let doc = format!("{{\"k\": \"{}\"}}", json_escape(raw));
            validate_json(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn csv_escape_wraps_commas_quotes_and_newlines() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_escape("µ-日本語"), "µ-日本語");
    }

    #[test]
    fn validator_accepts_wellformed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "false",
            "0",
            "-12.5e-3",
            "\"s\"",
            "[1, 2.5, \"x\", {\"a\": [true, null]}]",
            "  {\"k\": \"v\"}  ",
            "\"esc \\\" \\\\ \\u00e9\"",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"k\": }",
            "{\"k\" 1}",
            "{k: 1}",
            "[1,]",
            "\"unterminated",
            "\"raw\ncontrol\"",
            "\"bad \\x escape\"",
            "\"bad \\u00 escape\"",
            "01 extra",
            "1.",
            "-",
            "1e",
            "{} {}",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn validator_reports_byte_offsets() {
        let err = validate_json("[1, oops]").unwrap_err();
        assert!(err.contains("4"), "unexpected message: {err}");
    }
}
