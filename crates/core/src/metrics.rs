//! The paper's metrics (Section IV-D, Eqs. 1–5).

use crate::RunResult;

/// All metrics for one experiment cell, derived exactly as the paper
/// derives them from measured quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapMetrics {
    /// Eq. 1: `(Compute_overlapping - Compute_sequential) / Compute_sequential`.
    pub compute_slowdown: f64,
    /// Eq. 2: fraction of compute time co-active with communication in the
    /// overlapped run.
    pub overlap_ratio: f64,
    /// Measured end-to-end latency of the overlapped run, seconds.
    pub e2e_overlapped_s: f64,
    /// Eq. 4: `E2E_overlapping - Slowdown_compute` (per-GPU average of the
    /// compute-time inflation), seconds.
    pub e2e_ideal_s: f64,
    /// Eq. 5: `E2E_ideal + hidden communication`, seconds.
    pub e2e_sequential_derived_s: f64,
    /// Directly measured sequential run, seconds (the simulator can measure
    /// what the paper had to derive; both are reported).
    pub e2e_sequential_measured_s: f64,
    /// Mean board power of the overlapped run, watts.
    pub avg_power_w: f64,
    /// Peak instantaneous board power of the overlapped run, watts.
    pub peak_power_w: f64,
    /// Mean board power of the sequential run, watts.
    pub avg_power_sequential_w: f64,
    /// Peak board power of the sequential run, watts.
    pub peak_power_sequential_w: f64,
    /// Energy of one overlapped iteration, joules.
    pub energy_j: f64,
}

impl OverlapMetrics {
    /// Derives all metrics from the overlapped and sequential runs.
    ///
    /// Per-GPU sums are averaged over GPUs (the node is symmetric), matching
    /// the paper's per-device measurement methodology.
    pub fn derive(overlapped: &RunResult, sequential: &RunResult) -> Self {
        let n = overlapped.gpus.len().max(1) as f64;
        let compute_ovl = overlapped.compute_s() / n;
        let compute_seq = sequential.compute_s() / n;
        let compute_slowdown = if compute_seq > 0.0 {
            (compute_ovl - compute_seq) / compute_seq
        } else {
            0.0
        };

        // Eq. 3/4: the compute-time inflation, as wall-clock per GPU.
        let slowdown_s = (compute_ovl - compute_seq).max(0.0);
        let e2e_ideal_s = (overlapped.e2e_s - slowdown_s).max(0.0);
        // Eq. 5: sequential = ideal + the communication that overlap hid.
        let hidden_comm_s = overlapped.hidden_comm_s() / n;
        let e2e_sequential_derived_s = e2e_ideal_s + hidden_comm_s;

        let (avg_power_w, peak_power_w, energy_j) = overlapped.power_summary();
        let (avg_power_sequential_w, peak_power_sequential_w, _) = sequential.power_summary();
        OverlapMetrics {
            compute_slowdown,
            overlap_ratio: overlapped.overlap_ratio(),
            e2e_overlapped_s: overlapped.e2e_s,
            e2e_ideal_s,
            e2e_sequential_derived_s,
            e2e_sequential_measured_s: sequential.e2e_s,
            avg_power_w,
            peak_power_w,
            avg_power_sequential_w,
            peak_power_sequential_w,
            energy_j,
        }
    }

    /// Overlapped-vs-ideal degradation (the paper's "45% higher than ideal"
    /// style numbers): `E2E_overlapping / E2E_ideal - 1`.
    pub fn overlap_vs_ideal(&self) -> f64 {
        if self.e2e_ideal_s > 0.0 {
            self.e2e_overlapped_s / self.e2e_ideal_s - 1.0
        } else {
            0.0
        }
    }

    /// Sequential-vs-overlapped degradation (the paper's headline 10.2%
    /// mean): `E2E_sequential / E2E_overlapping - 1`.
    pub fn sequential_vs_overlapped(&self) -> f64 {
        if self.e2e_overlapped_s > 0.0 {
            self.e2e_sequential_measured_s / self.e2e_overlapped_s - 1.0
        } else {
            0.0
        }
    }
}

/// Goodput: training samples actually committed per wall-clock second.
///
/// Unlike raw throughput, the wall-clock here includes everything the job
/// paid for — stalls, checkpoint writes, restarts, re-sharding — and the
/// numerator only counts samples whose work survived (lost-to-rollback
/// iterations don't). A job that aborts with nothing durable has goodput 0
/// no matter how fast it was running when it died.
pub fn goodput_samples_per_s(committed_samples: f64, wall_s: f64) -> f64 {
    if wall_s > 0.0 && committed_samples > 0.0 {
        committed_samples / wall_s
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, Machine};
    use olab_gpu::{Datapath, GpuSku, Precision};
    use olab_models::{memory::ActivationPolicy, ModelPreset};
    use olab_parallel::{fsdp, ExecutionMode};

    fn metrics() -> OverlapMetrics {
        let sku = GpuSku::mi250();
        let machine = Machine::stock(sku.clone(), 4);
        let plan = fsdp::FsdpPlan {
            model: ModelPreset::Gpt3Xl.config(),
            ranks: 4,
            batch_per_rank: 2,
            seq: 128,
            precision: Precision::Fp16,
            datapath: Datapath::TensorCore,
            activation_policy: ActivationPolicy::Full,
            grad_accum_steps: 1,
            overlap: Default::default(),
        };
        let topo = machine.config().topology.clone();
        let ovl = execute(
            &fsdp::fsdp_timeline(&plan, &sku, &topo, ExecutionMode::Overlapped),
            &machine,
        )
        .unwrap();
        let seq = execute(
            &fsdp::fsdp_timeline(&plan, &sku, &topo, ExecutionMode::Sequential),
            &machine,
        )
        .unwrap();
        OverlapMetrics::derive(&ovl, &seq)
    }

    #[test]
    fn ordering_ideal_overlapped_sequential() {
        let m = metrics();
        assert!(m.e2e_ideal_s <= m.e2e_overlapped_s);
        assert!(m.e2e_overlapped_s < m.e2e_sequential_measured_s);
    }

    #[test]
    fn compute_slowdown_is_positive_under_contention() {
        let m = metrics();
        assert!(m.compute_slowdown > 0.0, "got {}", m.compute_slowdown);
        assert!(m.compute_slowdown < 1.0, "got {}", m.compute_slowdown);
    }

    #[test]
    fn derived_sequential_approximates_measured_sequential() {
        // Eq. 5 is the paper's estimate of what we can actually measure in
        // the simulator: they should agree to first order.
        let m = metrics();
        let ratio = m.e2e_sequential_derived_s / m.e2e_sequential_measured_s;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn degradation_helpers_are_consistent() {
        let m = metrics();
        assert!(m.overlap_vs_ideal() >= 0.0);
        assert!(m.sequential_vs_overlapped() > 0.0);
    }

    #[test]
    fn goodput_is_zero_without_committed_work_or_wall_clock() {
        assert_eq!(goodput_samples_per_s(0.0, 10.0), 0.0);
        assert_eq!(goodput_samples_per_s(100.0, 0.0), 0.0);
        assert!((goodput_samples_per_s(100.0, 4.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_power_exceeds_sequential_power() {
        let m = metrics();
        assert!(
            m.peak_power_w >= m.peak_power_sequential_w,
            "{} vs {}",
            m.peak_power_w,
            m.peak_power_sequential_w
        );
    }
}
