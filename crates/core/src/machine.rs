//! The machine model: pricing compute and communication sharing a GPU.
//!
//! This is the paper's core phenomenon rendered as a rate model. Each epoch
//! (whenever the running-task set changes) the model decides, per GPU:
//!
//! 1. **SM occupancy** — a co-resident collective's channel kernels occupy
//!    `sm_fraction` of the SMs; the compute kernel's FLOP side slows by
//!    `1/(1 - sm_fraction)`.
//! 2. **HBM sharing** — the collective streams `hbm_bytes_per_wire_byte`
//!    bytes of device memory per wire byte; if combined demand exceeds the
//!    effective HBM bandwidth, both sides are scaled proportionally.
//! 3. **Cache interference** — a fixed multiplicative penalty
//!    (`l2_interference`) applies to compute while communication is
//!    co-resident.
//! 4. **Power / DVFS** — component power is summed; the governor throttles
//!    the core clock if the (strict or transient) limit is exceeded,
//!    slowing the FLOP side of every kernel.
//!
//! With `contended = false` the model prices every task as if it ran alone
//! (used to cross-check the paper's Eq. 4 "ideal" derivation).

use olab_ccl::CommOp;
use olab_gpu::power::Utilization;
use olab_gpu::roofline::KernelDemand;
use olab_gpu::{roofline, ContentionProfile, DvfsGovernor, GpuSku, PowerProfile};
use olab_net::Topology;
use olab_parallel::{ComputeOp, Op};
use olab_sim::{GpuCounters, GpuId, RateModel, RunningTask, SeededRng};

/// Fraction of datasheet HBM bandwidth usable when compute and
/// communication interleave access streams.
const SHARED_HBM_EFFICIENCY: f64 = 0.88;

/// Run-to-run measurement noise, mirroring the variability real systems
/// show (clock jitter, scheduling noise, thermal state). The paper averages
/// every metric over 25 runs for exactly this reason.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// RNG seed (same seed => identical run).
    pub seed: u64,
    /// Relative rate noise per task-epoch (~coefficient of variation).
    pub sigma: f64,
}

/// Configuration of a simulated node.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// The GPU SKU populating the node (homogeneous).
    pub sku: GpuSku,
    /// The interconnect.
    pub topology: Topology,
    /// The DVFS governor (power limit + frequency cap).
    pub governor: DvfsGovernor,
    /// Whether co-resident tasks contend for resources.
    pub contended: bool,
    /// Optional per-epoch rate noise (None = fully deterministic).
    pub jitter: Option<Jitter>,
}

impl MachineConfig {
    /// Stock configuration for a SKU: vendor-appropriate topology, stock
    /// power limit, contention on.
    pub fn stock(sku: GpuSku, n_gpus: usize) -> Self {
        let topology = match sku.vendor {
            olab_gpu::Vendor::Nvidia => {
                Topology::nvswitch(n_gpus, sku.link_bw_unidir_gbs, sku.link_latency_us)
            }
            olab_gpu::Vendor::Amd => {
                Topology::full_mesh(n_gpus, sku.link_bw_unidir_gbs, sku.link_latency_us)
            }
        };
        let governor = DvfsGovernor::stock(sku.tdp_w);
        MachineConfig {
            sku,
            topology,
            governor,
            contended: true,
            jitter: None,
        }
    }
}

/// The rate model for one node.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    power_profile: PowerProfile,
    contention: ContentionProfile,
    rng: Option<SeededRng>,
    /// Transient per-GPU frequency caps in `(0, 1]` (empty = none). Fault
    /// layers update these at epoch boundaries to model thermal throttle
    /// windows; the governor then prices both the slower clock and its
    /// lower dynamic power.
    gpu_freq_caps: Vec<f64>,
    /// Telemetry for the epoch whose rates were last assigned, indexed by
    /// GPU — what the simulated NVML poll reads through
    /// [`RateModel::counters`].
    last_counters: Vec<GpuCounters>,
    /// Per-epoch scratch (reused across epochs to keep the rate-assignment
    /// hot path allocation-free once warm).
    scratch_compute_on: Vec<Option<usize>>,
    scratch_comm_on: Vec<Option<usize>>,
    scratch_epochs: Vec<GpuEpoch>,
}

#[derive(Debug, Clone, Copy)]
struct GpuEpoch {
    /// Available SM fraction for the compute kernel.
    sm_avail: f64,
    /// Fraction of the compute kernel's achievable bandwidth it gets.
    compute_bw_fraction: f64,
    /// Rate factor applied to a co-resident collective.
    comm_factor: f64,
    /// Cache-interference multiplier on compute duration.
    l2: f64,
    /// Selected core-clock factor.
    freq: f64,
    /// Board power this epoch, watts.
    power_w: f64,
    /// Demand decomposition of the co-resident compute kernel, if any
    /// (computed once per epoch and reused by the rate loop).
    demand: Option<KernelDemand>,
}

impl Default for GpuEpoch {
    fn default() -> Self {
        GpuEpoch {
            sm_avail: 1.0,
            compute_bw_fraction: 1.0,
            comm_factor: 1.0,
            l2: 1.0,
            freq: 1.0,
            power_w: 0.0,
            demand: None,
        }
    }
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let power_profile = config.sku.power();
        let contention = config.sku.contention();
        let rng = config.jitter.map(|j| SeededRng::seed_from_u64(j.seed));
        Machine {
            config,
            power_profile,
            contention,
            rng,
            gpu_freq_caps: Vec::new(),
            last_counters: Vec::new(),
            scratch_compute_on: Vec::new(),
            scratch_comm_on: Vec::new(),
            scratch_epochs: Vec::new(),
        }
    }

    /// Replaces the transient per-GPU frequency caps: `caps[g]` caps GPU
    /// `g`'s clock factor this epoch (values `>= 1.0` and missing entries
    /// mean uncapped; an empty vector clears all caps).
    pub fn set_gpu_freq_caps(&mut self, caps: Vec<f64>) {
        self.gpu_freq_caps = caps;
    }

    /// The same machine with per-epoch measurement noise.
    pub fn with_jitter(&self, jitter: Jitter) -> Self {
        let mut config = self.config.clone();
        config.jitter = Some(jitter);
        Self::new(config)
    }

    /// Stock machine for a SKU (see [`MachineConfig::stock`]).
    pub fn stock(sku: GpuSku, n_gpus: usize) -> Self {
        Self::new(MachineConfig::stock(sku, n_gpus))
    }

    /// The same machine with contention disabled (each task priced alone).
    pub fn uncontended(&self) -> Self {
        let mut config = self.config.clone();
        config.contended = false;
        Self::new(config)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Effective HBM byte rate of a co-resident collective, bytes/s
    /// (its wire rate amplified by staging traffic).
    fn comm_hbm_demand(&self, op: &CommOp) -> f64 {
        if op.wire_bytes_per_rank <= 0.0 {
            return 0.0;
        }
        let amplification = op.hbm_bytes_per_rank / op.wire_bytes_per_rank;
        op.wire_rate_bytes_per_sec * amplification
    }

    /// Prices one GPU for an epoch in which `kernel` and/or `comm` are
    /// co-resident on it: contention factors, DVFS decision, board power,
    /// and telemetry counters.
    ///
    /// This is the single source of pricing truth. [`Machine::assign_rates`]
    /// calls it per GPU per epoch; the analytic fast path
    /// (`olab_core::analytic`) calls it per schedule segment, which is what
    /// guarantees the two execution paths agree by construction.
    fn gpu_epoch(
        &self,
        g: usize,
        kernel: Option<&ComputeOp>,
        comm: Option<&CommOp>,
    ) -> (GpuEpoch, GpuCounters) {
        let sku = &self.config.sku;
        let raw_bw = sku.mem_bw_gbs * 1e9;
        let capacity = raw_bw * SHARED_HBM_EFFICIENCY;
        let contended = self.config.contended;
        let mut epoch = GpuEpoch {
            demand: kernel.map(|c| roofline::demand(&c.kernel, sku, c.precision, c.datapath)),
            ..GpuEpoch::default()
        };

        // SM occupancy + cache interference.
        if let (true, Some(op)) = (contended && kernel.is_some(), comm) {
            epoch.sm_avail = (1.0 - op.sm_fraction).max(0.05);
            epoch.l2 = self.contention.l2_interference;
        }

        // HBM sharing.
        let comm_demand = comm.map_or(0.0, |op| self.comm_hbm_demand(op));
        let compute_demand = epoch.demand.as_ref().map_or(0.0, |d| d.bandwidth_demand());
        if contended && comm_demand + compute_demand > capacity && comm_demand > 0.0 {
            let scale = capacity / (comm_demand + compute_demand);
            epoch.comm_factor = scale;
            if let Some(d) = &epoch.demand {
                epoch.compute_bw_fraction =
                    (compute_demand * scale / d.bytes_per_sec).clamp(0.05, 1.0);
            }
        }

        // Power components.
        let mut util = Utilization::idle();
        let mut flop_busy = 0.0;
        if let Some(d) = &epoch.demand {
            let t_flop = d.compute_time(1.0) / epoch.sm_avail;
            let t_mem = d.memory_time(epoch.compute_bw_fraction);
            let span = t_flop.max(t_mem) + d.launch_s;
            flop_busy = (t_flop / span).clamp(0.0, 1.0);
            if d.on_tensor_core {
                util.tensor = flop_busy;
                util.vector = 0.15 * flop_busy; // address gen, epilogues
            } else {
                util.vector = flop_busy;
            }
            util.mem += (d.bytes / span) / raw_bw;
        }
        if let Some(op) = comm {
            // Links, PHYs and copy engines are busy for the whole
            // transfer even when protocol overheads cap the *useful*
            // rate, so comm-engine activity tracks the share factor,
            // not the bus efficiency.
            util.comm = epoch.comm_factor.clamp(0.0, 1.0);
            util.mem += self.comm_hbm_demand(op) * epoch.comm_factor / raw_bw;
        }
        util.mem = util.mem.clamp(0.0, 1.0);

        let governor = match self.gpu_freq_caps.get(g) {
            Some(&cap) if cap < 1.0 => self.config.governor.capped(cap),
            _ => self.config.governor,
        };
        if contended {
            let decision = governor.decide(&self.power_profile, &util);
            epoch.freq = decision.freq_factor;
            epoch.power_w = decision.power_w;
        } else {
            epoch.freq = governor.max_freq_factor;
            epoch.power_w = self.power_profile.instantaneous(&util, epoch.freq);
        }

        // Telemetry: compute kernels occupy their busy share of the
        // SMs they were granted; a co-resident collective's channel
        // kernels pin `sm_fraction` on top.
        let comm_sm = comm.map_or(0.0, |op| op.sm_fraction);
        let counters = GpuCounters {
            sm_occupancy: (flop_busy * epoch.sm_avail + comm_sm).clamp(0.0, 1.0),
            hbm_util: util.mem,
            link_util: util.comm,
            freq_factor: epoch.freq,
            power_w: epoch.power_w,
        };
        (epoch, counters)
    }

    /// Duration of a compute op running with nothing co-resident on GPU
    /// `g`, priced exactly as [`Machine::assign_rates`] would price it
    /// (including DVFS and any transient frequency cap on `g`).
    pub(crate) fn solo_compute_duration(&self, g: usize, c: &ComputeOp) -> f64 {
        let (epoch, _) = self.gpu_epoch(g, Some(c), None);
        let d = epoch.demand.expect("kernel demand computed");
        let t_flop = d.compute_time(epoch.freq) / epoch.sm_avail;
        let t_mem = d.memory_time(epoch.compute_bw_fraction);
        (t_flop.max(t_mem) + d.launch_s) * epoch.l2
    }

    /// Duration of a collective running with nothing co-resident on any
    /// participant, priced exactly as [`Machine::assign_rates`] would.
    ///
    /// Note this is *not* always `op.isolated_duration_s()`: on a contended
    /// machine a collective's HBM staging traffic alone can oversubscribe
    /// the shared-bandwidth capacity and throttle its own wire rate.
    pub(crate) fn solo_comm_duration(&self, participants: &[GpuId], op: &CommOp) -> f64 {
        let factor = participants
            .iter()
            .map(|g| self.gpu_epoch(g.index(), None, Some(op)).0.comm_factor)
            .fold(1.0_f64, f64::min);
        op.latency_s + op.wire_bytes_per_rank / (op.wire_rate_bytes_per_sec * factor.max(0.05))
    }

    /// Board power of GPU `g` for a segment with the given co-resident set,
    /// matching the engine's per-epoch power assignment (idle draw when
    /// nothing runs).
    pub(crate) fn segment_power_w(
        &self,
        g: usize,
        kernel: Option<&ComputeOp>,
        comm: Option<&CommOp>,
    ) -> f64 {
        if kernel.is_none() && comm.is_none() {
            self.power_profile.idle_w
        } else {
            self.gpu_epoch(g, kernel, comm).0.power_w
        }
    }

    /// Whether per-epoch rate noise is configured.
    pub(crate) fn has_jitter(&self) -> bool {
        self.config.jitter.is_some()
    }

    /// Whether any transient per-GPU frequency cap is active.
    pub(crate) fn has_gpu_freq_caps(&self) -> bool {
        self.gpu_freq_caps.iter().any(|&c| c < 1.0)
    }

    /// Whether co-resident tasks contend for resources.
    pub(crate) fn is_contended(&self) -> bool {
        self.config.contended
    }
}

impl RateModel for Machine {
    type Payload = Op;

    fn assign_rates(
        &mut self,
        running: &[RunningTask<'_, Op>],
        rates: &mut [f64],
        power: &mut [f64],
    ) {
        let n_gpus = power.len();

        // Index the (at most one) compute and comm task per GPU. The index
        // and epoch buffers are machine-owned scratch, reused every epoch.
        let mut compute_on = std::mem::take(&mut self.scratch_compute_on);
        let mut comm_on = std::mem::take(&mut self.scratch_comm_on);
        let mut epochs = std::mem::take(&mut self.scratch_epochs);
        compute_on.clear();
        compute_on.resize(n_gpus, None);
        comm_on.clear();
        comm_on.resize(n_gpus, None);
        epochs.clear();
        epochs.resize(n_gpus, GpuEpoch::default());
        for (i, task) in running.iter().enumerate() {
            match task.payload {
                Op::Compute(_) => {
                    for g in task.participants {
                        debug_assert!(compute_on[g.index()].is_none());
                        compute_on[g.index()] = Some(i);
                    }
                }
                Op::Comm(_) => {
                    for g in task.participants {
                        debug_assert!(comm_on[g.index()].is_none());
                        comm_on[g.index()] = Some(i);
                    }
                }
            }
        }

        // Per-GPU epoch state: contention factors, frequency, power.
        self.last_counters.clear();
        self.last_counters.resize(n_gpus, GpuCounters::default());
        for g in 0..n_gpus {
            let comm = comm_on[g].and_then(|i| running[i].payload.as_comm());
            let kernel = compute_on[g].and_then(|i| running[i].payload.as_compute());
            let (epoch, counters) = self.gpu_epoch(g, kernel, comm);
            self.last_counters[g] = counters;
            epochs[g] = epoch;
        }

        // Rates.
        for (i, task) in running.iter().enumerate() {
            rates[i] = match task.payload {
                Op::Compute(_) => {
                    let g = task.participants[0].index();
                    let epoch = &epochs[g];
                    let d = epoch.demand.expect("kernel demand computed");
                    let t_flop = d.compute_time(epoch.freq) / epoch.sm_avail;
                    let t_mem = d.memory_time(epoch.compute_bw_fraction);
                    let duration = (t_flop.max(t_mem) + d.launch_s) * epoch.l2;
                    1.0 / duration
                }
                Op::Comm(ref op) => {
                    let factor = task
                        .participants
                        .iter()
                        .map(|g| epochs[g.index()].comm_factor)
                        .fold(1.0_f64, f64::min);
                    let duration = op.latency_s
                        + op.wire_bytes_per_rank / (op.wire_rate_bytes_per_sec * factor.max(0.05));
                    1.0 / duration
                }
            };
        }

        // Measurement noise: an approximately-Gaussian multiplicative
        // factor per task-epoch (sum of four uniforms), clamped so rates
        // stay positive.
        if let Some(rng) = &mut self.rng {
            let sigma = self.config.jitter.map(|j| j.sigma).unwrap_or(0.0);
            for rate in rates.iter_mut() {
                let u: f64 = (0..4).map(|_| rng.next_f64() - 0.5).sum::<f64>() / 2.0;
                *rate *= (1.0 + sigma * u * 3.464).clamp(0.7, 1.3);
            }
        }

        for g in 0..n_gpus {
            power[g] = if compute_on[g].is_some() || comm_on[g].is_some() {
                epochs[g].power_w
            } else {
                self.power_profile.idle_w
            };
        }

        self.scratch_compute_on = compute_on;
        self.scratch_comm_on = comm_on;
        self.scratch_epochs = epochs;
    }

    fn counters(&self, gpu: usize) -> GpuCounters {
        self.last_counters.get(gpu).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_ccl::{lower, Algorithm, Collective};
    use olab_gpu::{Datapath, KernelKind, Precision};
    use olab_parallel::ComputeOp;
    use olab_sim::{Engine, GpuId, StreamKind, TaskSpec, Workload};

    fn h100_machine() -> Machine {
        Machine::stock(GpuSku::h100(), 4)
    }

    fn gemm_op() -> Op {
        Op::Compute(ComputeOp::new(
            KernelKind::gemm(8192, 8192, 8192),
            Precision::Fp16,
            Datapath::TensorCore,
        ))
    }

    fn allreduce_op(machine: &Machine, bytes: u64) -> Op {
        let group: Vec<GpuId> = (0..4).map(GpuId).collect();
        let c = Collective::all_reduce(bytes, group);
        Op::Comm(lower(
            &c,
            Algorithm::Ring,
            &machine.config().sku,
            &machine.config().topology,
            Precision::Fp16,
        ))
    }

    /// Runs a two-task workload (one GEMM on gpu0, optionally a concurrent
    /// all-reduce) and returns the GEMM's duration.
    fn gemm_duration(machine: &Machine, with_comm: bool) -> f64 {
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        if with_comm {
            w.push(TaskSpec::new(
                "ar",
                (0..4).map(GpuId).collect(),
                StreamKind::Comm,
                allreduce_op(machine, 1 << 30),
            ));
        }
        let trace = Engine::new(machine.clone()).run(&w).unwrap();
        trace.records()[0].duration().as_secs()
    }

    #[test]
    fn overlap_slows_compute() {
        let m = h100_machine();
        let alone = gemm_duration(&m, false);
        let overlapped = gemm_duration(&m, true);
        let slowdown = overlapped / alone - 1.0;
        assert!(
            slowdown > 0.05 && slowdown < 0.5,
            "H100 GEMM slowdown under a 1 GiB all-reduce: {slowdown}"
        );
    }

    #[test]
    fn uncontended_machine_shows_no_slowdown() {
        let m = h100_machine().uncontended();
        let alone = gemm_duration(&m, false);
        let overlapped = gemm_duration(&m, true);
        assert!((overlapped / alone - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amd_interference_exceeds_nvidia_interference() {
        let h = h100_machine();
        let m = Machine::stock(GpuSku::mi250(), 4);
        let h_slow = gemm_duration(&h, true) / gemm_duration(&h, false);
        let m_slow = gemm_duration(&m, true) / gemm_duration(&m, false);
        assert!(m_slow > h_slow, "MI250 {m_slow} vs H100 {h_slow}");
    }

    #[test]
    fn power_rises_when_comm_joins_compute() {
        let m = h100_machine();
        // Compute alone.
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        let alone = Engine::new(m.clone()).run(&w).unwrap();
        let p_alone = alone
            .gpu(GpuId(0))
            .power
            .iter()
            .map(|s| s.watts)
            .fold(0.0, f64::max);

        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        w.push(TaskSpec::new(
            "ar",
            (0..4).map(GpuId).collect(),
            StreamKind::Comm,
            allreduce_op(&m, 1 << 30),
        ));
        let both = Engine::new(m.clone()).run(&w).unwrap();
        let p_both = both
            .gpu(GpuId(0))
            .power
            .iter()
            .map(|s| s.watts)
            .fold(0.0, f64::max);
        assert!(p_both > p_alone + 30.0, "{p_both} vs {p_alone}");
    }

    #[test]
    fn strict_power_cap_throttles_compute() {
        let sku = GpuSku::a100();
        let mut config = MachineConfig::stock(sku, 4);
        config.governor.limit = olab_gpu::PowerLimit::strict(150.0);
        let capped = Machine::new(config);
        let stock = Machine::stock(GpuSku::a100(), 4);
        let t_capped = gemm_duration(&capped, false);
        let t_stock = gemm_duration(&stock, false);
        assert!(
            t_capped > 1.3 * t_stock,
            "150 W cap must slow the A100 GEMM: {t_capped} vs {t_stock}"
        );
    }

    #[test]
    fn per_gpu_freq_caps_slow_only_the_capped_gpu() {
        let healthy = h100_machine();
        let mut throttled = h100_machine();
        throttled.set_gpu_freq_caps(vec![0.5, 1.0, 1.0, 1.0]);

        let durations = |m: &Machine| {
            let mut w = Workload::new(4);
            w.push(TaskSpec::compute("g0", GpuId(0), gemm_op()));
            w.push(TaskSpec::compute("g1", GpuId(1), gemm_op()));
            let trace = Engine::new(m.clone()).run(&w).unwrap();
            (
                trace.records()[0].duration().as_secs(),
                trace.records()[1].duration().as_secs(),
            )
        };
        let (h0, h1) = durations(&healthy);
        let (t0, t1) = durations(&throttled);
        assert!(t0 > 1.5 * h0, "capped GPU must slow: {t0} vs {h0}");
        assert!((t1 - h1).abs() < 1e-12, "uncapped GPU must be untouched");
    }

    #[derive(Default)]
    struct FirstEpoch {
        counters: Option<Vec<GpuCounters>>,
    }

    impl olab_sim::EngineObserver for FirstEpoch {
        fn on_epoch(&mut self, _start_s: f64, _end_s: f64, counters: &[GpuCounters]) {
            if self.counters.is_none() {
                self.counters = Some(counters.to_vec());
            }
        }
    }

    #[test]
    fn telemetry_counters_track_overlap_contention() {
        let m = h100_machine();
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        w.push(TaskSpec::new(
            "ar",
            (0..4).map(GpuId).collect(),
            StreamKind::Comm,
            allreduce_op(&m, 1 << 30),
        ));
        let mut obs = FirstEpoch::default();
        Engine::new(m.clone()).run_observed(&w, &mut obs).unwrap();
        let counters = obs.counters.expect("at least one epoch");
        assert_eq!(counters.len(), 4);
        // gpu0 runs GEMM + collective: all counters engaged.
        let c0 = &counters[0];
        assert!(c0.sm_occupancy > 0.5, "occupancy {}", c0.sm_occupancy);
        assert!(c0.hbm_util > 0.0 && c0.hbm_util <= 1.0);
        assert!(c0.link_util > 0.0 && c0.link_util <= 1.0);
        assert!(c0.freq_factor > 0.0 && c0.freq_factor <= 1.0);
        assert!(c0.power_w > GpuSku::h100().idle_w);
        // gpu3 only participates in the collective: link busy, SMs only
        // carry the channel kernels.
        let c3 = &counters[3];
        assert!(c3.link_util > 0.0);
        assert!(c3.sm_occupancy < c0.sm_occupancy);
    }

    #[test]
    fn telemetry_counters_are_idle_defaults_for_idle_gpus() {
        let m = h100_machine();
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        let mut obs = FirstEpoch::default();
        Engine::new(m.clone()).run_observed(&w, &mut obs).unwrap();
        let counters = obs.counters.unwrap();
        let c3 = &counters[3];
        assert_eq!(c3.sm_occupancy, 0.0);
        assert_eq!(c3.hbm_util, 0.0);
        assert_eq!(c3.link_util, 0.0);
        // Engine fills power with the model's idle draw.
        assert_eq!(c3.power_w, GpuSku::h100().power().idle_w);
    }

    #[test]
    fn idle_gpus_report_idle_power() {
        let m = h100_machine();
        let mut w = Workload::new(4);
        w.push(TaskSpec::compute("gemm", GpuId(0), gemm_op()));
        let trace = Engine::new(m.clone()).run(&w).unwrap();
        let idle = trace.gpu(GpuId(3)).power[0].watts;
        assert_eq!(idle, GpuSku::h100().power().idle_w);
    }

    /// An H100 with artificially narrow HBM, so a collective's staging
    /// traffic oversubscribes the shared bandwidth deterministically.
    fn narrow_hbm_machine() -> Machine {
        let mut sku = GpuSku::h100();
        sku.mem_bw_gbs = 600.0;
        Machine::stock(sku, 4)
    }

    #[test]
    fn memory_bound_kernels_slow_under_hbm_contention() {
        // A streaming kernel saturates its share of HBM; a co-resident
        // collective's staging traffic pushes combined demand past the
        // shared capacity and the kernel must slow by more than the
        // SM-occupancy/cache terms alone explain.
        let m = narrow_hbm_machine();
        let streaming = Op::Compute(ComputeOp::new(
            KernelKind::Elementwise {
                elems: 1 << 28,
                flops_per_elem: 1,
                streams: 3,
            },
            Precision::Fp16,
            Datapath::Vector,
        ));
        let duration = |with_comm: bool| {
            let mut w = Workload::new(4);
            w.push(TaskSpec::compute("stream", GpuId(0), streaming.clone()));
            if with_comm {
                w.push(TaskSpec::new(
                    "ar",
                    (0..4).map(GpuId).collect(),
                    StreamKind::Comm,
                    allreduce_op(&m, 1 << 30),
                ));
            }
            let trace = Engine::new(m.clone()).run(&w).unwrap();
            trace.records()[0].duration().as_secs()
        };
        let alone = duration(false);
        let contended = duration(true);
        let profile = m.config().sku.contention();
        // Pure cache interference would be l2_interference; HBM sharing
        // must add on top for a bandwidth-saturating kernel.
        assert!(
            contended / alone > profile.l2_interference * 1.1,
            "contended {contended} vs alone {alone}"
        );
    }

    #[test]
    fn collective_rate_is_limited_by_its_slowest_rank() {
        // A collective shared with a busy GPU runs slower than the same
        // collective over idle GPUs, because the busy rank's HBM share
        // throttles everyone (min-over-ranks).
        let m = narrow_hbm_machine();
        let streaming = Op::Compute(ComputeOp::new(
            KernelKind::Elementwise {
                elems: 1 << 29,
                flops_per_elem: 1,
                streams: 3,
            },
            Precision::Fp16,
            Datapath::Vector,
        ));
        let ar_duration = |busy_rank: bool| {
            let mut w = Workload::new(4);
            if busy_rank {
                w.push(TaskSpec::compute("stream", GpuId(0), streaming.clone()));
            }
            let id = w.push(TaskSpec::new(
                "ar",
                (0..4).map(GpuId).collect(),
                StreamKind::Comm,
                allreduce_op(&m, 1 << 30),
            ));
            let trace = Engine::new(m.clone()).run(&w).unwrap();
            trace.record(id).unwrap().duration().as_secs()
        };
        assert!(ar_duration(true) > ar_duration(false) * 1.01);
    }

    #[test]
    fn collectives_finish_at_their_isolated_speed_when_alone() {
        let m = h100_machine();
        let op = allreduce_op(&m, 1 << 28);
        let isolated = op.as_comm().unwrap().isolated_duration_s();
        let mut w = Workload::new(4);
        w.push(TaskSpec::new(
            "ar",
            (0..4).map(GpuId).collect(),
            StreamKind::Comm,
            op,
        ));
        let trace = Engine::new(m.clone()).run(&w).unwrap();
        let simulated = trace.records()[0].duration().as_secs();
        assert!((simulated / isolated - 1.0).abs() < 1e-6);
    }
}
