//! The contention-free analytic fast path: classifier, switch, counters.
//!
//! The paper's core claim is that real overlap diverges from the "constant
//! compute/communication latency" assumption *only under contention*. The
//! contrapositive is an optimization: a cell with no contention, no faults,
//! and no observer attached can legally skip the event loop, because every
//! task then runs at the rate [`Machine`](crate::Machine) would assign it in
//! isolation and the whole schedule collapses to a closed form
//! (`crate::analytic::execute_fast`). This module decides when that is safe
//! and keeps the process-wide accounting honest.
//!
//! Routing is semantic-free by construction: the fast path prices tasks
//! through the *same* per-GPU pricing code the event loop uses
//! (`Machine::gpu_epoch`), so both paths agree to floating-point rounding.
//! The differential suite in `olab-oracle` pins that equivalence; see
//! `docs/FASTPATH.md` for the rules and the guarantee.
//!
//! The enable switch and the run counters are process-wide atomics: cache
//! keys in `olab-grid` must *not* depend on the execution path (the answers
//! are the same), but [`SweepStats`](crate::SweepStats) reports how many
//! cells took which path so artifacts stay auditable.

use crate::Machine;
use olab_metrics::{counter, Counter, Determinism, Histogram};
use olab_parallel::Op;
use olab_sim::Workload;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);
static FAST_RUNS: AtomicU64 = AtomicU64::new(0);
static EVENT_LOOP_RUNS: AtomicU64 = AtomicU64::new(0);

/// Registry-backed route attribution: per-route cell counts (cross-run
/// deterministic) and per-route cell-latency histograms (wall-clock), for
/// the `olab-metrics` expositions. The legacy `fast_runs`/`event_loop_runs`
/// atomics above stay authoritative for [`SweepStats`](crate::SweepStats).
pub(crate) struct RouteMetrics {
    pub fast_full: &'static Counter,
    pub fast_lean: &'static Counter,
    pub event_loop_full: &'static Counter,
    pub event_loop_lean: &'static Counter,
    pub fast_full_ns: &'static Histogram,
    pub fast_lean_ns: &'static Histogram,
    pub event_loop_full_ns: &'static Histogram,
    pub event_loop_lean_ns: &'static Histogram,
}

pub(crate) fn route_metrics() -> &'static RouteMetrics {
    static M: OnceLock<RouteMetrics> = OnceLock::new();
    M.get_or_init(|| RouteMetrics {
        fast_full: counter(
            "olab_core_route_fast_full_total",
            Determinism::CrossRun,
            "Cells served by the analytic fast path with full statistics.",
        ),
        fast_lean: counter(
            "olab_core_route_fast_lean_total",
            Determinism::CrossRun,
            "Cells served by the analytic fast path with lean (scalar) statistics.",
        ),
        event_loop_full: counter(
            "olab_core_route_event_loop_full_total",
            Determinism::CrossRun,
            "Cells that fell back to the event loop with full statistics.",
        ),
        event_loop_lean: counter(
            "olab_core_route_event_loop_lean_total",
            Determinism::CrossRun,
            "Cells that fell back to the event loop with lean (scalar) statistics.",
        ),
        fast_full_ns: olab_metrics::histogram(
            "olab_core_cell_fast_full_ns",
            "Cell latency through the fast path, full statistics.",
        ),
        fast_lean_ns: olab_metrics::histogram(
            "olab_core_cell_fast_lean_ns",
            "Cell latency through the fast path, lean statistics.",
        ),
        event_loop_full_ns: olab_metrics::histogram(
            "olab_core_cell_event_loop_full_ns",
            "Cell latency through the event loop, full statistics.",
        ),
        event_loop_lean_ns: olab_metrics::histogram(
            "olab_core_cell_event_loop_lean_ns",
            "Cell latency through the event loop, lean statistics.",
        ),
    })
}

/// Forces registration of this crate's engine-telemetry families (and those
/// of the crates underneath) so expositions are complete even before any
/// cell executes.
pub fn touch_metrics() {
    let _ = route_metrics();
    olab_sim::metrics::touch();
    olab_grid::metrics::touch();
}

/// Enables or disables the fast path process-wide (default: enabled).
///
/// Disabling forces every cell through the event loop — the differential
/// harness and the `cell_cost` benchmark use this to obtain the reference
/// timings.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the fast path is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of executions served by the analytic fast path since process
/// start. Monotone (process-wide, shared by every thread).
pub fn fast_runs() -> u64 {
    FAST_RUNS.load(Ordering::Relaxed)
}

/// Number of classified executions that went through the event loop since
/// process start. Monotone (process-wide, shared by every thread).
pub fn event_loop_runs() -> u64 {
    EVENT_LOOP_RUNS.load(Ordering::Relaxed)
}

/// The O(1) machine-level gate the executor checks before attempting the
/// analytic schedule: switch on, no jitter, no transient frequency caps.
/// The per-task rules ([`FastPathDecision::ForwardDep`],
/// [`FastPathDecision::MixedStream`]) are enforced inside the schedule
/// builder itself, which bails to the event loop on first violation — so
/// the executor never pays a separate O(n) classification pass. The public
/// [`CellClassifier`] reports the same decisions for diagnostics.
pub(crate) fn machine_eligible(machine: &Machine) -> bool {
    enabled() && !machine.has_jitter() && !machine.has_gpu_freq_caps()
}

pub(crate) fn note_fast_run() {
    FAST_RUNS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_event_loop_run() {
    EVENT_LOOP_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Why a cell did or did not qualify for the analytic fast path.
///
/// `Eligible` is necessary but not sufficient: on a contended machine the
/// closed form additionally requires that the schedule exhibit no actual
/// co-residency, which is only known after the speculative schedule is
/// built — `execute_fast` returns `None` in that case and the cell falls
/// back to the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathDecision {
    /// All static preconditions hold; the analytic schedule may be used.
    Eligible,
    /// The process-wide switch is off ([`set_enabled`]).
    Disabled,
    /// An observer is attached; the event loop is the only path that can
    /// drive task-edge and epoch callbacks.
    Observed,
    /// The machine adds per-epoch measurement noise, which only exists
    /// epoch by epoch.
    Jittered,
    /// Transient per-GPU frequency caps are active (fault layers mutate
    /// these at epoch boundaries).
    FreqCapped,
    /// A task depends on a later-pushed task; the one-pass schedule
    /// requires backward dependencies.
    ForwardDep,
    /// A task's payload kind disagrees with its stream (a compute op on
    /// the comm stream or vice versa). The engine prices by payload while
    /// the closed form's co-residency sweep walks streams, so such hybrids
    /// stay on the event loop.
    MixedStream,
}

impl FastPathDecision {
    /// Whether the decision permits the analytic schedule.
    pub fn is_eligible(self) -> bool {
        self == FastPathDecision::Eligible
    }
}

/// Decides whether a (workload, machine) cell may skip the event loop.
///
/// The rules, in order:
///
/// 1. the process-wide switch must be on;
/// 2. no observer may be attached (`observed == false`);
/// 3. the machine must be deterministic: no jitter, no transient per-GPU
///    frequency caps (fault wrappers are excluded at the type level — only
///    `Machine`-typed execution reaches this classifier at all);
/// 4. every dependency must point backward in push order;
/// 5. every task's payload kind must match its stream (compute payloads on
///    the compute stream, comm payloads on the comm stream).
///
/// Contention is *not* a static disqualifier: a contended machine is fine
/// as long as the resulting schedule has no co-resident compute/comm pair,
/// which `execute_fast` verifies a posteriori.
#[derive(Debug, Clone, Copy)]
pub struct CellClassifier;

impl CellClassifier {
    /// Classifies one cell. See the type-level docs for the rules.
    pub fn classify(
        workload: &Workload<Op>,
        machine: &Machine,
        observed: bool,
    ) -> FastPathDecision {
        if observed {
            return FastPathDecision::Observed;
        }
        if !enabled() {
            return FastPathDecision::Disabled;
        }
        if machine.has_jitter() {
            return FastPathDecision::Jittered;
        }
        if machine.has_gpu_freq_caps() {
            return FastPathDecision::FreqCapped;
        }
        for (i, task) in workload.tasks().iter().enumerate() {
            if task.deps.iter().any(|d| d.index() >= i) {
                return FastPathDecision::ForwardDep;
            }
            let stream_matches = match &task.payload {
                Op::Compute(_) => task.stream == olab_sim::StreamKind::Compute,
                Op::Comm(_) => task.stream == olab_sim::StreamKind::Comm,
            };
            if !stream_matches {
                return FastPathDecision::MixedStream;
            }
        }
        FastPathDecision::Eligible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Jitter;
    use olab_gpu::GpuSku;
    use olab_sim::{GpuId, TaskId, TaskSpec};

    fn machine() -> Machine {
        Machine::stock(GpuSku::h100(), 2)
    }

    fn tiny_workload() -> Workload<Op> {
        let mut w = Workload::new(2);
        w.push(TaskSpec::compute(
            "k",
            GpuId(0),
            Op::Compute(olab_parallel::ComputeOp::new(
                olab_gpu::KernelKind::gemm(256, 256, 256),
                olab_gpu::Precision::Fp16,
                olab_gpu::Datapath::TensorCore,
            )),
        ));
        w
    }

    #[test]
    fn classifier_screens_static_disqualifiers() {
        let w = tiny_workload();
        let m = machine();
        assert!(CellClassifier::classify(&w, &m, false).is_eligible());
        assert_eq!(
            CellClassifier::classify(&w, &m, true),
            FastPathDecision::Observed
        );
        let jittered = m.with_jitter(Jitter {
            seed: 7,
            sigma: 0.01,
        });
        assert_eq!(
            CellClassifier::classify(&w, &jittered, false),
            FastPathDecision::Jittered
        );
        let mut capped = machine();
        capped.set_gpu_freq_caps(vec![0.5, 1.0]);
        assert_eq!(
            CellClassifier::classify(&w, &capped, false),
            FastPathDecision::FreqCapped
        );
        // A cap of exactly 1.0 is a no-op and must not disqualify.
        let mut uncapped = machine();
        uncapped.set_gpu_freq_caps(vec![1.0, 1.0]);
        assert!(CellClassifier::classify(&w, &uncapped, false).is_eligible());

        let mut fwd = tiny_workload();
        let mut t = TaskSpec::comm("c", GpuId(1), dummy_comm());
        t.deps.push(TaskId(2));
        fwd.push(t);
        fwd.push(TaskSpec::compute(
            "k2",
            GpuId(1),
            Op::Compute(olab_parallel::ComputeOp::new(
                olab_gpu::KernelKind::gemm(256, 256, 256),
                olab_gpu::Precision::Fp16,
                olab_gpu::Datapath::TensorCore,
            )),
        ));
        assert_eq!(
            CellClassifier::classify(&fwd, &m, false),
            FastPathDecision::ForwardDep
        );

        // A comm payload pushed onto the compute stream is priced by
        // payload in the engine but walked by stream in the closed form.
        let mut mixed = tiny_workload();
        mixed.push(TaskSpec::compute("hybrid", GpuId(1), dummy_comm()));
        assert_eq!(
            CellClassifier::classify(&mixed, &m, false),
            FastPathDecision::MixedStream
        );
    }

    fn dummy_comm() -> Op {
        use olab_ccl::{lower, Algorithm, Collective};
        let m = machine();
        let group: Vec<GpuId> = (0..2).map(GpuId).collect();
        Op::Comm(lower(
            &Collective::all_reduce(1 << 20, group),
            Algorithm::Ring,
            &m.config().sku,
            &m.config().topology,
            olab_gpu::Precision::Fp16,
        ))
    }
}
