//! Property-based tests for workload models and memory estimation.

use olab_gpu::Precision;
use olab_models::memory::{self, ActivationPolicy, Sharding};
use olab_models::{ops, ModelPreset};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = ModelPreset> {
    prop_oneof![
        Just(ModelPreset::Gpt3Xl),
        Just(ModelPreset::Gpt3_2_7B),
        Just(ModelPreset::Gpt3_6_7B),
        Just(ModelPreset::Gpt3_13B),
        Just(ModelPreset::Llama2_13B),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Iteration FLOPs stay near the 6·params·tokens rule across the whole
    /// configuration space (attention adds a bounded seq-dependent term).
    #[test]
    fn flops_track_the_6pt_rule(
        model in any_model(),
        batch in 1u64..32,
        seq_pow in 7u32..12, // 128..2048
    ) {
        let cfg = model.config();
        let seq = 1u64 << seq_pow;
        let flops = ops::iteration_flops(&cfg, batch, seq);
        let rule = 6.0 * cfg.param_count() as f64 * (batch * seq) as f64;
        let ratio = flops / rule;
        prop_assert!((0.7..1.8).contains(&ratio), "{model} b{batch} s{seq}: {ratio}");
    }

    /// Kernel graphs scale linearly with batch.
    #[test]
    fn layer_flops_scale_linearly_with_batch(
        model in any_model(),
        batch in 1u64..16,
    ) {
        let cfg = model.config();
        let one = ops::layer_kernels(&cfg, batch, 512).forward_flops();
        let two = ops::layer_kernels(&cfg, batch * 2, 512).forward_flops();
        prop_assert!((two / one - 2.0).abs() < 0.01);
    }

    /// Memory estimates are monotone in batch, and recomputation never
    /// increases the footprint.
    #[test]
    fn memory_is_monotone_in_batch_and_recompute_shrinks(
        model in any_model(),
        batch in 1u64..32,
        ranks in 2usize..9,
    ) {
        let cfg = model.config();
        let shard = Sharding::FsdpZero3 { ranks };
        let small = memory::footprint(&cfg, batch, 1024, Precision::Fp16, shard, ActivationPolicy::Full);
        let large = memory::footprint(&cfg, batch + 1, 1024, Precision::Fp16, shard, ActivationPolicy::Full);
        prop_assert!(large.total() > small.total());
        let ckpt = memory::footprint(&cfg, batch, 1024, Precision::Fp16, shard, ActivationPolicy::Recompute);
        prop_assert!(ckpt.total() <= small.total());
        prop_assert!(small.total() > 0.0 && small.total().is_finite());
    }

    /// More FSDP ranks never increase the per-GPU footprint.
    #[test]
    fn sharding_wider_never_costs_memory(
        model in any_model(),
        batch in 1u64..16,
    ) {
        let cfg = model.config();
        let narrow = memory::footprint(
            &cfg, batch, 1024, Precision::Fp16,
            Sharding::FsdpZero3 { ranks: 2 }, ActivationPolicy::Full,
        );
        let wide = memory::footprint(
            &cfg, batch, 1024, Precision::Fp16,
            Sharding::FsdpZero3 { ranks: 8 }, ActivationPolicy::Full,
        );
        prop_assert!(wide.total() <= narrow.total());
    }

    /// Tensor-parallel sharding sits between replicated and FSDP footprints
    /// for the state components.
    #[test]
    fn tensor_parallel_states_shrink_with_ranks(
        model in any_model(),
        ranks in 2usize..9,
    ) {
        let cfg = model.config();
        let repl = memory::footprint(
            &cfg, 8, 1024, Precision::Fp16, Sharding::Replicated, ActivationPolicy::Full,
        );
        let tp = memory::footprint(
            &cfg, 8, 1024, Precision::Fp16,
            Sharding::TensorParallel { ranks }, ActivationPolicy::Full,
        );
        prop_assert!(tp.weights < repl.weights);
        prop_assert!(tp.optimizer < repl.optimizer);
        prop_assert!(tp.activations <= repl.activations);
    }
}
