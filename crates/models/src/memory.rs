//! Device memory footprint estimation.
//!
//! Reproduces the capacity gating the paper reports: the 40 GB A100 can
//! only train up to GPT-3 2.7B under FSDP on a 4-GPU node, while the 80 GB
//! H100 and 128 GB MI250 reach 13B-class models.

use crate::TransformerConfig;
use olab_gpu::{GpuSku, Precision};
use std::fmt;

/// How model state is distributed across the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Full replica on every GPU (plain data parallelism).
    Replicated,
    /// ZeRO-3/FSDP: parameters, gradients and optimizer state sharded
    /// across `n` ranks.
    FsdpZero3 {
        /// Number of ranks sharing the states.
        ranks: usize,
    },
    /// Pipeline parallelism: each of `stages` GPUs holds `layers/stages`
    /// layers, with `in_flight` microbatches of activations resident.
    Pipeline {
        /// Number of pipeline stages.
        stages: usize,
        /// Microbatches resident per stage.
        in_flight: usize,
    },
    /// Megatron tensor parallelism: weights/gradients/optimizer sharded
    /// `1/ranks`; roughly half the activations (the sharded blocks) shrink
    /// with the rank count, the layer boundaries stay replicated.
    TensorParallel {
        /// Tensor-parallel ranks.
        ranks: usize,
    },
}

/// Whether activations are kept or recomputed in the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationPolicy {
    /// Keep all activations (fastest, largest).
    Full,
    /// Checkpoint layer boundaries and recompute inside the backward pass
    /// (adds one forward recomputation per layer).
    Recompute,
}

/// Per-component memory footprint on one GPU, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Model weights resident on the device.
    pub weights: f64,
    /// Gradients resident on the device.
    pub gradients: f64,
    /// Optimizer state (Adam mixed precision: FP32 master + two moments).
    pub optimizer: f64,
    /// Activations and attention working set.
    pub activations: f64,
    /// Transient working buffers (unsharded FSDP layers, comm staging).
    pub workspace: f64,
}

impl MemoryEstimate {
    /// Total bytes on the device.
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations + self.workspace
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() / (1u64 << 30) as f64
    }
}

impl fmt::Display for MemoryEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gib = (1u64 << 30) as f64;
        write!(
            f,
            "{:.1} GiB (w {:.1} + g {:.1} + opt {:.1} + act {:.1} + ws {:.1})",
            self.total() / gib,
            self.weights / gib,
            self.gradients / gib,
            self.optimizer / gib,
            self.activations / gib,
            self.workspace / gib
        )
    }
}

/// Bytes of Adam optimizer state per parameter under mixed precision:
/// FP32 master copy + FP32 momentum + FP32 variance.
pub const ADAM_BYTES_PER_PARAM: f64 = 12.0;

/// Bytes of the FP32 gradient-accumulation buffer per parameter.
pub const GRAD_ACCUM_BYTES_PER_PARAM: f64 = 4.0;

/// Fraction of HBM usable for training state (the rest goes to the CUDA/HIP
/// context, fragmentation, and library workspaces).
pub const USABLE_FRACTION: f64 = 0.87;

/// Estimates the per-GPU footprint of one training iteration.
pub fn footprint(
    cfg: &TransformerConfig,
    batch: u64,
    seq: u64,
    precision: Precision,
    sharding: Sharding,
    activations: ActivationPolicy,
) -> MemoryEstimate {
    let eb = precision.bytes() as f64;
    let params = cfg.param_count() as f64;
    let layer_params = cfg.layer_params() as f64;
    let t = (batch * seq) as f64;
    let h = cfg.hidden as f64;
    let heads = f64::from(cfg.heads);
    let seq_f = seq as f64;

    // Full activation working set of one layer: inputs to every kernel, plus
    // the attention score matrix.
    // Attention scores are materialized in FP32 for softmax stability.
    let layer_act_full = t * h * 16.0 * eb / 2.0 + t * seq_f * heads * 4.0;
    // Checkpointed: only the layer-boundary activation.
    let layer_act_ckpt = t * h * eb;

    let (layers_here, states_divisor, act_copies) = match sharding {
        Sharding::Replicated => (f64::from(cfg.layers), 1.0, 1.0),
        Sharding::FsdpZero3 { ranks } => (f64::from(cfg.layers), ranks as f64, 1.0),
        Sharding::Pipeline { stages, in_flight } => (
            (f64::from(cfg.layers) / stages as f64).ceil(),
            1.0,
            in_flight as f64,
        ),
        Sharding::TensorParallel { ranks } => (
            f64::from(cfg.layers),
            ranks as f64,
            0.5 + 0.5 / ranks as f64,
        ),
    };

    // Embedding/head states live on one stage under pipelining; fold them in
    // everywhere for a slightly conservative estimate.
    let state_params = match sharding {
        Sharding::Pipeline { .. } => layers_here * layer_params + cfg.embedding_params() as f64,
        _ => params,
    };

    let weights = state_params * eb / states_divisor;
    // Low-precision gradients plus the FP32 accumulation buffer mixed
    // precision training maintains.
    let gradients = state_params * (eb + GRAD_ACCUM_BYTES_PER_PARAM) / states_divisor;
    let optimizer = state_params * ADAM_BYTES_PER_PARAM / states_divisor;

    // Per-microbatch activations for the layers on this device.
    let act_per_copy = match activations {
        ActivationPolicy::Full => layers_here * layer_act_full,
        ActivationPolicy::Recompute => layers_here * layer_act_ckpt + layer_act_full,
    };
    let activations_bytes = act_per_copy * act_copies + t * h * 4.0 * eb; // +embedding/logits edge

    // FSDP keeps ~2 layers unsharded (current + prefetched); everything
    // needs some comm staging.
    let workspace = match sharding {
        Sharding::FsdpZero3 { .. } => 2.0 * layer_params * eb * 2.0 + 256.0 * (1 << 20) as f64,
        _ => 256.0 * (1 << 20) as f64,
    };

    MemoryEstimate {
        weights,
        gradients,
        optimizer,
        activations: activations_bytes,
        workspace,
    }
}

/// Picks the cheapest activation policy that fits a SKU, or reports the
/// overflow.
///
/// Returns `Ok((policy, estimate))` with `ActivationPolicy::Full` preferred,
/// or `Err(estimate)` (the recompute-policy estimate) if nothing fits.
pub fn fit(
    cfg: &TransformerConfig,
    batch: u64,
    seq: u64,
    precision: Precision,
    sharding: Sharding,
    sku: &GpuSku,
) -> Result<(ActivationPolicy, MemoryEstimate), MemoryEstimate> {
    let budget = sku.mem_bytes() as f64 * USABLE_FRACTION;
    let full = footprint(cfg, batch, seq, precision, sharding, ActivationPolicy::Full);
    if full.total() <= budget {
        return Ok((ActivationPolicy::Full, full));
    }
    let ckpt = footprint(
        cfg,
        batch,
        seq,
        precision,
        sharding,
        ActivationPolicy::Recompute,
    );
    if ckpt.total() <= budget {
        Ok((ActivationPolicy::Recompute, ckpt))
    } else {
        Err(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelPreset;

    const B: u64 = 8;
    const S: u64 = 1024;

    fn fsdp4() -> Sharding {
        Sharding::FsdpZero3 { ranks: 4 }
    }

    #[test]
    fn a100_fits_2_7b_but_not_6_7b_under_fsdp() {
        // The paper: "the A100 was constrained to models up to GPT-3 2.7B".
        let a100 = GpuSku::a100();
        let ok = fit(
            &ModelPreset::Gpt3_2_7B.config(),
            B,
            S,
            Precision::Fp16,
            fsdp4(),
            &a100,
        );
        assert!(ok.is_ok(), "2.7B must fit on the A100: {:?}", ok.err());
        let too_big = fit(
            &ModelPreset::Gpt3_6_7B.config(),
            B,
            S,
            Precision::Fp16,
            fsdp4(),
            &a100,
        );
        assert!(too_big.is_err(), "6.7B must NOT fit on the 40 GB A100");
    }

    #[test]
    fn h100_and_mi250_fit_13b_under_fsdp() {
        for sku in [GpuSku::h100(), GpuSku::mi250()] {
            let r = fit(
                &ModelPreset::Gpt3_13B.config(),
                B,
                S,
                Precision::Fp16,
                fsdp4(),
                &sku,
            );
            assert!(r.is_ok(), "13B must fit on {}: {:?}", sku.name, r.err());
        }
    }

    #[test]
    fn mi210_tops_out_at_6_7b() {
        let mi210 = GpuSku::mi210();
        assert!(fit(
            &ModelPreset::Gpt3_6_7B.config(),
            B,
            S,
            Precision::Fp16,
            fsdp4(),
            &mi210
        )
        .is_ok());
        assert!(fit(
            &ModelPreset::Gpt3_13B.config(),
            B,
            S,
            Precision::Fp16,
            fsdp4(),
            &mi210
        )
        .is_err());
    }

    #[test]
    fn recompute_shrinks_activations() {
        let cfg = ModelPreset::Gpt3_6_7B.config();
        let full = footprint(&cfg, B, S, Precision::Fp16, fsdp4(), ActivationPolicy::Full);
        let ckpt = footprint(
            &cfg,
            B,
            S,
            Precision::Fp16,
            fsdp4(),
            ActivationPolicy::Recompute,
        );
        assert!(ckpt.activations < full.activations / 2.0);
        assert_eq!(ckpt.weights, full.weights);
    }

    #[test]
    fn fsdp_divides_states_by_rank_count() {
        let cfg = ModelPreset::Gpt3_2_7B.config();
        let repl = footprint(
            &cfg,
            B,
            S,
            Precision::Fp16,
            Sharding::Replicated,
            ActivationPolicy::Full,
        );
        let shard = footprint(&cfg, B, S, Precision::Fp16, fsdp4(), ActivationPolicy::Full);
        assert!((repl.optimizer / shard.optimizer - 4.0).abs() < 1e-9);
        assert_eq!(repl.activations, shard.activations);
    }

    #[test]
    fn pipeline_stages_hold_a_slice_of_layers() {
        let cfg = ModelPreset::Gpt3_2_7B.config();
        let stage = footprint(
            &cfg,
            B,
            S,
            Precision::Fp16,
            Sharding::Pipeline {
                stages: 4,
                in_flight: 4,
            },
            ActivationPolicy::Full,
        );
        let repl = footprint(
            &cfg,
            B,
            S,
            Precision::Fp16,
            Sharding::Replicated,
            ActivationPolicy::Full,
        );
        assert!(stage.weights < repl.weights / 2.0);
    }

    #[test]
    fn fp32_states_are_larger_than_fp16() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let half = footprint(&cfg, B, S, Precision::Fp16, fsdp4(), ActivationPolicy::Full);
        let single = footprint(&cfg, B, S, Precision::Fp32, fsdp4(), ActivationPolicy::Full);
        assert!(single.total() > half.total());
    }

    #[test]
    fn display_reports_components_in_gib() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let e = footprint(&cfg, B, S, Precision::Fp16, fsdp4(), ActivationPolicy::Full);
        let s = e.to_string();
        assert!(s.contains("GiB"), "{s}");
    }
}
