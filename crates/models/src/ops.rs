//! Lowering transformer layers to kernel sequences.

use crate::config::{Family, TransformerConfig};
use olab_gpu::KernelKind;

/// Forward and backward kernel sequences for one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerKernels {
    /// Forward-pass kernels in execution order.
    pub forward: Vec<KernelKind>,
    /// Backward-pass kernels in execution order.
    pub backward: Vec<KernelKind>,
}

impl LayerKernels {
    /// Total FLOPs of the forward pass.
    pub fn forward_flops(&self) -> f64 {
        self.forward.iter().map(|k| k.flops()).sum()
    }

    /// Total FLOPs of the backward pass.
    pub fn backward_flops(&self) -> f64 {
        self.backward.iter().map(|k| k.flops()).sum()
    }
}

/// Backward kernels for one forward kernel: dgrad + wgrad for GEMMs,
/// cost-equivalent kernels otherwise.
fn backward_of(kernel: &KernelKind) -> Vec<KernelKind> {
    match *kernel {
        KernelKind::Gemm { m, n, k } => vec![
            KernelKind::Gemm { m, n: k, k: n }, // dX = dY * W^T
            KernelKind::Gemm { m: k, n, k: m }, // dW = X^T * dY
        ],
        KernelKind::BatchedGemm { batch, m, n, k } => vec![
            KernelKind::BatchedGemm {
                batch,
                m,
                n: k,
                k: n,
            },
            KernelKind::BatchedGemm {
                batch,
                m: k,
                n,
                k: m,
            },
        ],
        KernelKind::Elementwise {
            elems,
            flops_per_elem,
            streams,
        } => vec![KernelKind::Elementwise {
            elems,
            flops_per_elem: flops_per_elem + 1,
            streams,
        }],
        KernelKind::Softmax { rows, cols } => vec![KernelKind::Softmax { rows, cols }],
        KernelKind::LayerNorm { elems } => vec![
            KernelKind::LayerNorm { elems },
            KernelKind::Elementwise {
                elems,
                flops_per_elem: 4,
                streams: 3,
            },
        ],
        KernelKind::Embedding { tokens, hidden } => {
            vec![KernelKind::Embedding { tokens, hidden }]
        }
        // Optimizer / comm-reduction kernels have no backward.
        KernelKind::AdamStep { .. } | KernelKind::CommReduction { .. } => vec![],
    }
}

/// The kernels of one transformer layer for a `batch x seq` input.
pub fn layer_kernels(cfg: &TransformerConfig, batch: u64, seq: u64) -> LayerKernels {
    assert!(batch > 0 && seq > 0, "batch and seq must be positive");
    let t = batch * seq;
    let h = cfg.hidden;
    let hd = cfg.head_dim();
    let bh = batch * u64::from(cfg.heads);

    // Attention block, then the MLP pre-norm; the family-specific MLP
    // kernels are appended below.
    let mut forward: Vec<KernelKind> = vec![
        KernelKind::LayerNorm { elems: t * h },
        // fused QKV
        KernelKind::Gemm {
            m: t,
            n: 3 * h,
            k: h,
        },
        // scores
        KernelKind::BatchedGemm {
            batch: bh,
            m: seq,
            n: seq,
            k: hd,
        },
        KernelKind::Softmax {
            rows: bh * seq,
            cols: seq,
        },
        // context
        KernelKind::BatchedGemm {
            batch: bh,
            m: seq,
            n: hd,
            k: seq,
        },
        // output projection
        KernelKind::Gemm { m: t, n: h, k: h },
        // residual
        KernelKind::Elementwise {
            elems: t * h,
            flops_per_elem: 1,
            streams: 3,
        },
        // MLP pre-norm
        KernelKind::LayerNorm { elems: t * h },
    ];
    match cfg.family {
        Family::Gpt => {
            forward.push(KernelKind::Gemm {
                m: t,
                n: cfg.ffn_hidden,
                k: h,
            });
            forward.push(KernelKind::Elementwise {
                elems: t * cfg.ffn_hidden,
                flops_per_elem: 8, // GELU
                streams: 2,
            });
            forward.push(KernelKind::Gemm {
                m: t,
                n: h,
                k: cfg.ffn_hidden,
            });
        }
        Family::Llama => {
            forward.push(KernelKind::Gemm {
                m: t,
                n: 2 * cfg.ffn_hidden, // gate + up fused
                k: h,
            });
            forward.push(KernelKind::Elementwise {
                elems: t * cfg.ffn_hidden,
                flops_per_elem: 6, // SiLU * gate
                streams: 3,
            });
            forward.push(KernelKind::Gemm {
                m: t,
                n: h,
                k: cfg.ffn_hidden,
            });
        }
    }
    forward.push(KernelKind::Elementwise {
        elems: t * h,
        flops_per_elem: 1,
        streams: 3,
    }); // residual

    let backward = forward.iter().rev().flat_map(backward_of).collect();

    LayerKernels { forward, backward }
}

/// Embedding lookup kernels (start of the forward pass).
pub fn embedding_kernels(cfg: &TransformerConfig, batch: u64, seq: u64) -> Vec<KernelKind> {
    vec![KernelKind::Embedding {
        tokens: batch * seq,
        hidden: cfg.hidden,
    }]
}

/// Final-norm + LM-head kernels (end of the forward pass) and their
/// backward.
pub fn head_kernels(cfg: &TransformerConfig, batch: u64, seq: u64) -> LayerKernels {
    let t = batch * seq;
    let forward = vec![
        KernelKind::LayerNorm {
            elems: t * cfg.hidden,
        },
        KernelKind::Gemm {
            m: t,
            n: cfg.vocab,
            k: cfg.hidden,
        },
        KernelKind::Softmax {
            rows: t,
            cols: cfg.vocab,
        },
    ];
    let backward = forward.iter().rev().flat_map(backward_of).collect();
    LayerKernels { forward, backward }
}

/// The Adam update for `params` locally-owned parameters.
pub fn optimizer_kernel(params: u64) -> KernelKind {
    KernelKind::AdamStep { params }
}

/// Total FLOPs of one training iteration (forward + backward, all layers,
/// embedding + head), for cross-checking against the `6 * params * tokens`
/// rule of thumb.
pub fn iteration_flops(cfg: &TransformerConfig, batch: u64, seq: u64) -> f64 {
    let layer = layer_kernels(cfg, batch, seq);
    let head = head_kernels(cfg, batch, seq);
    let emb: f64 = embedding_kernels(cfg, batch, seq)
        .iter()
        .map(|k| k.flops())
        .sum();
    f64::from(cfg.layers) * (layer.forward_flops() + layer.backward_flops())
        + head.forward_flops()
        + head.backward_flops()
        + emb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelPreset;

    #[test]
    fn backward_is_roughly_twice_forward() {
        let cfg = ModelPreset::Gpt3_6_7B.config();
        let layer = layer_kernels(&cfg, 8, 1024);
        let ratio = layer.backward_flops() / layer.forward_flops();
        assert!((1.8..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn iteration_flops_match_six_p_t_rule() {
        // fwd+bwd ~ 6 * params * tokens for large models (attention adds a
        // seq/hidden-dependent term, so allow generous bounds).
        let cfg = ModelPreset::Gpt3_13B.config();
        let (b, s) = (8, 1024);
        let flops = iteration_flops(&cfg, b, s);
        let rule = 6.0 * cfg.param_count() as f64 * (b * s) as f64;
        let ratio = flops / rule;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let one = layer_kernels(&cfg, 8, 512).forward_flops();
        let two = layer_kernels(&cfg, 16, 512).forward_flops();
        let ratio = two / one;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn attention_flops_scale_quadratically_with_seq() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let s1 = layer_kernels(&cfg, 8, 512);
        let s2 = layer_kernels(&cfg, 8, 1024);
        // Total forward grows superlinearly (GEMMs linear + attention quadratic).
        let ratio = s2.forward_flops() / s1.forward_flops();
        assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn llama_layers_differ_from_gpt_layers() {
        let gpt = layer_kernels(&ModelPreset::Gpt3_13B.config(), 8, 512);
        let llama = layer_kernels(&ModelPreset::Llama2_13B.config(), 8, 512);
        assert_ne!(
            gpt.forward_flops(),
            llama.forward_flops(),
            "gated MLP changes the FLOP count"
        );
    }

    #[test]
    fn head_gemm_touches_the_full_vocabulary() {
        let cfg = ModelPreset::Gpt3Xl.config();
        let head = head_kernels(&cfg, 2, 128);
        let has_vocab_gemm = head
            .forward
            .iter()
            .any(|k| matches!(k, KernelKind::Gemm { n, .. } if *n == cfg.vocab));
        assert!(has_vocab_gemm);
    }

    #[test]
    fn optimizer_kernel_wraps_param_count() {
        assert_eq!(
            optimizer_kernel(100).flops(),
            KernelKind::AdamStep { params: 100 }.flops()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_is_rejected() {
        layer_kernels(&ModelPreset::Gpt3Xl.config(), 0, 128);
    }
}
