//! Model architecture configurations (the paper's Table II).

use std::fmt;

/// The five workloads evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelPreset {
    /// GPT-3 XL, 1.3B parameters.
    Gpt3Xl,
    /// GPT-3 2.7B.
    Gpt3_2_7B,
    /// GPT-3 6.7B.
    Gpt3_6_7B,
    /// GPT-3 13B.
    Gpt3_13B,
    /// LLaMA 2 13B.
    Llama2_13B,
}

impl ModelPreset {
    /// All workloads in Table II order.
    pub const ALL: [ModelPreset; 5] = [
        ModelPreset::Gpt3Xl,
        ModelPreset::Gpt3_2_7B,
        ModelPreset::Gpt3_6_7B,
        ModelPreset::Gpt3_13B,
        ModelPreset::Llama2_13B,
    ];

    /// The architecture for this preset.
    pub fn config(self) -> TransformerConfig {
        match self {
            ModelPreset::Gpt3Xl => TransformerConfig::gpt("GPT-3 XL", 24, 32, 2048),
            ModelPreset::Gpt3_2_7B => TransformerConfig::gpt("GPT-3 2.7B", 32, 32, 2560),
            ModelPreset::Gpt3_6_7B => TransformerConfig::gpt("GPT-3 6.7B", 32, 32, 4096),
            ModelPreset::Gpt3_13B => TransformerConfig::gpt("GPT-3 13B", 40, 40, 5120),
            ModelPreset::Llama2_13B => TransformerConfig::llama("LLaMA 2 13B", 40, 40, 5120, 13824),
        }
    }

    /// Nominal parameter-count label used in the paper ("1.3B", "13B", ...).
    pub fn param_label(self) -> &'static str {
        match self {
            ModelPreset::Gpt3Xl => "1.3B",
            ModelPreset::Gpt3_2_7B => "2.7B",
            ModelPreset::Gpt3_6_7B => "6.7B",
            ModelPreset::Gpt3_13B => "13B",
            ModelPreset::Llama2_13B => "13B",
        }
    }
}

impl fmt::Display for ModelPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.config().name)
    }
}

/// Architecture family, which changes the MLP block shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// GPT-3: fused QKV, 4x MLP, learned positional embeddings, tied
    /// output head.
    Gpt,
    /// LLaMA: gated (SwiGLU) MLP, untied output head.
    Llama,
}

/// A decoder-only transformer architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Human-readable name (Table II).
    pub name: &'static str,
    /// Architecture family.
    pub family: Family,
    /// Number of transformer layers.
    pub layers: u32,
    /// Attention heads.
    pub heads: u32,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// MLP inner dimension.
    pub ffn_hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
}

impl TransformerConfig {
    /// A GPT-3-family configuration (4x MLP, 50257-token vocabulary).
    pub fn gpt(name: &'static str, layers: u32, heads: u32, hidden: u64) -> Self {
        TransformerConfig {
            name,
            family: Family::Gpt,
            layers,
            heads,
            hidden,
            ffn_hidden: 4 * hidden,
            vocab: 50_257,
        }
    }

    /// A LLaMA-family configuration (gated MLP, 32000-token vocabulary).
    pub fn llama(name: &'static str, layers: u32, heads: u32, hidden: u64, ffn: u64) -> Self {
        TransformerConfig {
            name,
            family: Family::Llama,
            layers,
            heads,
            hidden,
            ffn_hidden: ffn,
            vocab: 32_000,
        }
    }

    /// Width of one attention head.
    pub fn head_dim(&self) -> u64 {
        self.hidden / u64::from(self.heads)
    }

    /// Parameters in one transformer layer.
    pub fn layer_params(&self) -> u64 {
        let h = self.hidden;
        let attn = 4 * h * h; // QKV + output projection
        let mlp = match self.family {
            Family::Gpt => 2 * h * self.ffn_hidden,
            Family::Llama => 3 * h * self.ffn_hidden, // gate, up, down
        };
        let norms = 4 * h;
        attn + mlp + norms
    }

    /// Parameters in the embedding (and, for LLaMA, the untied head).
    pub fn embedding_params(&self) -> u64 {
        match self.family {
            Family::Gpt => self.vocab * self.hidden,
            Family::Llama => 2 * self.vocab * self.hidden,
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> u64 {
        u64::from(self.layers) * self.layer_params() + self.embedding_params()
    }
}

impl fmt::Display for TransformerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1}B params, {} layers)",
            self.name,
            self.param_count() as f64 / 1e9,
            self.layers
        )
    }
}

/// Renders the paper's Table II as a markdown table.
pub fn table2_markdown() -> String {
    let mut out = String::from(
        "| Model | Parameters | Layers | Attention Heads | Hidden Dimensions |\n\
         |-------|------------|--------|-----------------|-------------------|\n",
    );
    for preset in ModelPreset::ALL {
        let cfg = preset.config();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            cfg.name,
            preset.param_label(),
            cfg.layers,
            cfg.heads,
            cfg.hidden
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_architectures_match_paper() {
        let cfg = ModelPreset::Gpt3_2_7B.config();
        assert_eq!((cfg.layers, cfg.heads, cfg.hidden), (32, 32, 2560));
        let cfg = ModelPreset::Gpt3_13B.config();
        assert_eq!((cfg.layers, cfg.heads, cfg.hidden), (40, 40, 5120));
        let cfg = ModelPreset::Llama2_13B.config();
        assert_eq!((cfg.layers, cfg.heads, cfg.hidden), (40, 40, 5120));
    }

    #[test]
    fn parameter_counts_land_on_the_nominal_sizes() {
        let expect = [
            (ModelPreset::Gpt3Xl, 1.3e9),
            (ModelPreset::Gpt3_2_7B, 2.7e9),
            (ModelPreset::Gpt3_6_7B, 6.7e9),
            (ModelPreset::Gpt3_13B, 13.0e9),
            (ModelPreset::Llama2_13B, 13.0e9),
        ];
        for (preset, nominal) in expect {
            let actual = preset.config().param_count() as f64;
            let err = (actual - nominal).abs() / nominal;
            assert!(err < 0.06, "{preset}: {actual:.3e} vs {nominal:.1e}");
        }
    }

    #[test]
    fn head_dim_divides_hidden() {
        for preset in ModelPreset::ALL {
            let cfg = preset.config();
            assert_eq!(cfg.head_dim() * u64::from(cfg.heads), cfg.hidden);
        }
    }

    #[test]
    fn llama_mlp_is_gated() {
        let llama = ModelPreset::Llama2_13B.config();
        let gpt = ModelPreset::Gpt3_13B.config();
        // Same hidden size; LLaMA uses 3 matrices of 13824, GPT 2 of 20480.
        assert!(llama.layer_params() != gpt.layer_params());
    }

    #[test]
    fn table2_markdown_lists_all_models() {
        let t = table2_markdown();
        for preset in ModelPreset::ALL {
            assert!(t.contains(preset.config().name), "{preset}");
        }
    }

    #[test]
    fn display_summarizes_size() {
        let s = ModelPreset::Gpt3Xl.config().to_string();
        assert!(s.contains("GPT-3 XL"), "{s}");
        assert!(s.contains("24 layers"), "{s}");
    }
}
