//! # olab-models — transformer training workloads
//!
//! The GPT-3 and LLaMA-2 configurations of the paper's Table II, lowered to
//! analytic kernel graphs:
//!
//! * [`ModelPreset`] / [`TransformerConfig`] — architecture descriptions
//!   with exact parameter counts;
//! * [`ops`] — per-layer forward/backward kernel sequences (GEMMs,
//!   attention, normalization, optimizer) parameterized by batch and
//!   sequence length;
//! * [`memory`] — device memory footprints under replication, FSDP
//!   (ZeRO-3) sharding, or pipeline staging, including the activation
//!   recomputation policy. This is what enforces the paper's observation
//!   that the 40 GB A100 cannot train beyond GPT-3 2.7B under FSDP.
//!
//! ```rust
//! use olab_models::{ModelPreset, ops};
//!
//! let cfg = ModelPreset::Gpt3Xl.config();
//! assert_eq!(cfg.layers, 24);
//! let layer = ops::layer_kernels(&cfg, 8, 1024);
//! assert!(!layer.forward.is_empty());
//! // Backward work is roughly twice forward work.
//! let f: f64 = layer.forward.iter().map(|k| k.flops()).sum();
//! let b: f64 = layer.backward.iter().map(|k| k.flops()).sum();
//! assert!(b > 1.8 * f && b < 2.3 * f);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod memory;
pub mod ops;

pub use config::{table2_markdown, Family, ModelPreset, TransformerConfig};
