//! Running an experiment under a fault scenario *and* a recovery policy.
//!
//! [`run_with_recovery`] drives `olab_faults::run_under_faults` and then
//! decides what an abort means:
//!
//! * **fail-fast** — the job dies; all work since launch is lost and the
//!   goodput is zero,
//! * **checkpoint-restart** — the job restarts from its last completed
//!   checkpoint on a repaired machine, paying restore + re-init + warmup
//!   and re-executing the lost slice,
//! * **elastic-continue** — the failed rank is evicted, its state is
//!   re-sharded onto the survivors via real collective traffic, and the
//!   job finishes at world size N−1.
//!
//! Everything stays a pure function of `(experiment, scenario, policy)`:
//! same inputs, bit-identical report, under any sweep parallelism.

use crate::checkpoint::{mtbf_s, state_bytes_per_gpu, CheckpointModel, RESTART_WARMUP_FRACTION};
use crate::policy::RecoveryPolicy;
use olab_ccl::{relower_surviving, try_lower, Algorithm, Collective};
use olab_core::{execute, goodput_samples_per_s, Experiment, ExperimentError};
use olab_faults::{run_under_faults, FaultRun, FaultScenarioSpec};
use olab_parallel::ExecutionMode;
use olab_sim::{GpuId, SimTime, SimTrace};
use std::error::Error;
use std::fmt;

/// Why a recovery run produced no report.
#[derive(Debug)]
pub enum RecoveryError {
    /// The experiment itself is infeasible or failed to simulate.
    Experiment(ExperimentError),
    /// Elastic continuation cannot shrink this job onto the survivors
    /// (model parallelism that pins the world size, or the shrunken
    /// experiment no longer fits in memory).
    ShrinkInfeasible {
        /// The world size the job tried to shrink to.
        survivors: usize,
        /// Why the shrink is impossible.
        reason: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Experiment(e) => write!(f, "{e}"),
            RecoveryError::ShrinkInfeasible { survivors, reason } => {
                write!(f, "cannot shrink to {survivors} ranks: {reason}")
            }
        }
    }
}

impl Error for RecoveryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoveryError::Experiment(e) => Some(e),
            RecoveryError::ShrinkInfeasible { .. } => None,
        }
    }
}

impl From<ExperimentError> for RecoveryError {
    fn from(e: ExperimentError) -> Self {
        RecoveryError::Experiment(e)
    }
}

/// The recovery scorecard for one `(experiment, scenario, policy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMetrics {
    /// Whether the job finished its workload under this policy.
    pub completed: bool,
    /// The healthy baseline makespan, seconds.
    pub fault_free_e2e_s: f64,
    /// Total wall-clock the job occupied (including stalls, checkpoint
    /// writes, recovery, and re-executed work), seconds.
    pub wall_s: f64,
    /// Training samples whose work survived to the end of the job. Zero
    /// for a fail-fast abort; the full workload otherwise.
    pub committed_samples: f64,
    /// Goodput: committed samples per wall-clock second.
    pub goodput_samples_per_s: f64,
    /// Forward progress discarded and re-executed (fail-fast: everything
    /// since launch; checkpointing: since the last checkpoint; elastic:
    /// nothing), seconds of healthy-machine work.
    pub lost_work_s: f64,
    /// Failure-to-resumed-training time: restore + re-init + warmup for a
    /// restart, re-shard + communicator rebuild for an elastic shrink.
    pub time_to_recover_s: f64,
    /// Checkpoints written over the whole job.
    pub checkpoints_written: u32,
    /// Wall-clock spent writing checkpoints, seconds.
    pub checkpoint_overhead_s: f64,
    /// Energy beyond what the fault-free run would have spent, joules.
    /// For a job that dies with nothing committed this is *all* energy
    /// spent (every joule was overhead).
    pub recovery_energy_j: f64,
    /// World size at job end (N−1 after an elastic shrink).
    pub final_world_size: u32,
}

/// What an elastic shrink moved, for byte-conservation checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReshardSummary {
    /// The evicted rank (the higher endpoint of the dead link).
    pub evicted: GpuId,
    /// World size before the shrink.
    pub from_ranks: u32,
    /// World size after the shrink.
    pub to_ranks: u32,
    /// Total durable state (weights + optimizer) across ranks before,
    /// bytes.
    pub bytes_before: f64,
    /// Total durable state across the surviving ranks after, bytes.
    pub bytes_after: f64,
    /// Wall-clock of the re-shard exchange (all-gather + re-scatter over
    /// the survivors), seconds.
    pub reshard_s: f64,
    /// Communicator rebuild cost on the shrunken world, seconds.
    pub rebuild_s: f64,
}

/// Everything one recovery run produced.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The experiment that ran.
    pub experiment: Experiment,
    /// The fault scenario it ran under.
    pub spec: FaultScenarioSpec,
    /// The recovery policy in force.
    pub policy: RecoveryPolicy,
    /// The underlying faulted execution (abort surfaced as data).
    pub run: FaultRun,
    /// The recovery scorecard.
    pub metrics: RecoveryMetrics,
    /// The checkpoint cost model, when the policy writes checkpoints.
    pub checkpoint: Option<CheckpointModel>,
    /// The checkpoint interval actually in force (explicit or Young/Daly;
    /// `None` = the policy never checkpointed).
    pub interval_s: Option<f64>,
    /// The elastic re-shard, when one happened.
    pub reshard: Option<ReshardSummary>,
    /// The job's wall-clock trace under the policy. For a recovered run
    /// this is the faulted phase truncated at the failure, a recovery gap
    /// priced at idle power, then the post-recovery phase — the mid-run
    /// world-size transition is visible as the trace losing a GPU.
    /// Checkpoint writes appear in the metrics, not the trace.
    pub trace: SimTrace,
}

/// Runs `exp` under `spec`, applying `policy` when the watchdog gives up.
///
/// # Errors
///
/// [`RecoveryError::Experiment`] when the experiment is infeasible;
/// [`RecoveryError::ShrinkInfeasible`] when elastic continuation cannot
/// shrink the job (pipeline layouts pin their stage count; the shrunken
/// world may no longer fit in memory).
pub fn run_with_recovery(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
    policy: RecoveryPolicy,
) -> Result<RecoveryReport, RecoveryError> {
    let run = run_under_faults(exp, spec)?;
    let ff = run.fault_free.e2e_s;
    let ff_energy = run.fault_free.energy_j();
    let total_samples = exp.samples_per_iteration() as f64;
    let useful = run.useful_s();
    let idle_w = exp.sku.sku().idle_w;

    match policy {
        RecoveryPolicy::FailFast => {
            let report = match &run.abort {
                None => completed_report(exp, spec, policy, run, total_samples, 0, 0.0, 0.0),
                Some(info) => {
                    let at = info.at_s;
                    let trace = run.faulty.trace.truncated(SimTime::from_secs(at));
                    let metrics = RecoveryMetrics {
                        completed: false,
                        fault_free_e2e_s: ff,
                        wall_s: at,
                        committed_samples: 0.0,
                        goodput_samples_per_s: 0.0,
                        lost_work_s: useful,
                        time_to_recover_s: 0.0,
                        checkpoints_written: 0,
                        checkpoint_overhead_s: 0.0,
                        // Nothing committed: every joule was overhead.
                        recovery_energy_j: run.faulty.energy_j(),
                        final_world_size: exp.n_gpus as u32,
                    };
                    RecoveryReport {
                        experiment: exp.clone(),
                        spec: *spec,
                        policy,
                        run,
                        metrics,
                        checkpoint: None,
                        interval_s: None,
                        reshard: None,
                        trace,
                    }
                }
            };
            Ok(report)
        }

        RecoveryPolicy::CheckpointRestart { interval_s } => {
            let model = CheckpointModel::for_experiment(exp);
            let interval = match interval_s {
                Some(t) => Some(t),
                None => model.young_daly_interval_s(mtbf_s(&run.timeline)),
            };
            let n = exp.n_gpus as f64;
            match run.abort.clone() {
                None => {
                    // Healthy completion: checkpoints are pure overhead,
                    // paced by wall-clock.
                    let ckpts = interval.map_or(0, |t| (run.faulty.e2e_s / t).floor() as u32);
                    let overhead_s = f64::from(ckpts) * model.write_s;
                    let mut report = completed_report(
                        exp,
                        spec,
                        policy,
                        run,
                        total_samples,
                        ckpts,
                        overhead_s,
                        f64::from(ckpts) * model.write_s * model.write_power_w * n,
                    );
                    report.checkpoint = Some(model);
                    report.interval_s = interval;
                    Ok(report)
                }
                Some(info) => {
                    // Checkpoints completed before the failure, paced by
                    // useful (de-stalled) time — the documented
                    // approximation of wall-clock pacing.
                    let done = interval.map_or(0, |t| (useful / t).floor() as u32);
                    let salvaged = interval.map_or(0.0, |t| f64::from(done) * t);
                    let lost = (useful - salvaged).max(0.0);
                    let remaining = ff - salvaged;
                    let restore_s = if done > 0 { model.read_s } else { 0.0 };
                    let ttr = restore_s
                        + run.timeline.watchdog.rebuild_s(exp.n_gpus)
                        + RESTART_WARMUP_FRACTION * ff;
                    let phase2_ckpts = interval.map_or(0, |t| (remaining / t).floor() as u32);
                    let ckpts = done + phase2_ckpts;
                    let ckpt_s = f64::from(ckpts) * model.write_s;
                    let wall = info.at_s
                        + f64::from(done) * model.write_s
                        + ttr
                        + remaining
                        + f64::from(phase2_ckpts) * model.write_s;

                    let energy = run.faulty.energy_j()
                        + ckpt_s * model.write_power_w * n
                        + idle_w * n * ttr
                        + ff_energy * (remaining / ff);
                    let trace = run
                        .faulty
                        .trace
                        .truncated(SimTime::from_secs(info.at_s))
                        .then(
                            SimTime::from_secs(ttr),
                            idle_w,
                            &run.fault_free
                                .trace
                                .truncated(SimTime::from_secs(remaining)),
                        );
                    let metrics = RecoveryMetrics {
                        completed: true,
                        fault_free_e2e_s: ff,
                        wall_s: wall,
                        committed_samples: total_samples,
                        goodput_samples_per_s: goodput_samples_per_s(total_samples, wall),
                        lost_work_s: lost,
                        time_to_recover_s: ttr,
                        checkpoints_written: ckpts,
                        checkpoint_overhead_s: ckpt_s,
                        recovery_energy_j: energy - ff_energy,
                        final_world_size: exp.n_gpus as u32,
                    };
                    Ok(RecoveryReport {
                        experiment: exp.clone(),
                        spec: *spec,
                        policy,
                        run,
                        metrics,
                        checkpoint: Some(model),
                        interval_s: interval,
                        reshard: None,
                        trace,
                    })
                }
            }
        }

        RecoveryPolicy::ElasticContinue => match run.abort.clone() {
            None => Ok(completed_report(
                exp,
                spec,
                policy,
                run,
                total_samples,
                0,
                0.0,
                0.0,
            )),
            Some(info) => elastic_recover(exp, spec, run, &info.at_s, useful, idle_w),
        },
    }
}

/// A job that finished without needing its recovery policy: the wall-clock
/// is the faulted run (plus any checkpoint overhead) and nothing was lost.
#[allow(clippy::too_many_arguments)]
fn completed_report(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
    policy: RecoveryPolicy,
    run: FaultRun,
    total_samples: f64,
    ckpts: u32,
    ckpt_overhead_s: f64,
    ckpt_energy_j: f64,
) -> RecoveryReport {
    let wall = run.faulty.e2e_s + ckpt_overhead_s;
    let metrics = RecoveryMetrics {
        completed: true,
        fault_free_e2e_s: run.fault_free.e2e_s,
        wall_s: wall,
        committed_samples: total_samples,
        goodput_samples_per_s: goodput_samples_per_s(total_samples, wall),
        lost_work_s: 0.0,
        time_to_recover_s: 0.0,
        checkpoints_written: ckpts,
        checkpoint_overhead_s: ckpt_overhead_s,
        recovery_energy_j: run.faulty.energy_j() + ckpt_energy_j - run.fault_free.energy_j(),
        final_world_size: exp.n_gpus as u32,
    };
    let trace = run.faulty.trace.clone();
    RecoveryReport {
        experiment: exp.clone(),
        spec: *spec,
        policy,
        run,
        metrics,
        checkpoint: None,
        interval_s: None,
        reshard: None,
        trace,
    }
}

/// The elastic path: evict the dead link's higher endpoint, re-shard state
/// onto the survivors via real collective traffic, re-lower onto the
/// shrunken world, and finish the remaining samples at world size N−1.
fn elastic_recover(
    exp: &Experiment,
    spec: &FaultScenarioSpec,
    run: FaultRun,
    at_s: &f64,
    useful: f64,
    idle_w: f64,
) -> Result<RecoveryReport, RecoveryError> {
    let n = exp.n_gpus;
    let infeasible = |reason: String| RecoveryError::ShrinkInfeasible {
        survivors: n.saturating_sub(1),
        reason,
    };
    let dead = run
        .timeline
        .permanent_link_outage()
        .ok_or_else(|| infeasible("no permanent link outage to evict a rank for".into()))?;
    if matches!(exp.strategy, olab_core::Strategy::Pipeline { .. }) {
        return Err(infeasible(
            "pipeline stages hold disjoint layers; shrinking requires repartitioning the model"
                .into(),
        ));
    }
    if matches!(exp.strategy, olab_core::Strategy::TensorParallel) {
        // TP shards heads and MLP columns evenly: the shrunken world must
        // still divide them, or the model cannot be re-partitioned.
        let cfg = exp.model.config();
        let survivors_u64 = (n - 1) as u64;
        if !u64::from(cfg.heads).is_multiple_of(survivors_u64)
            || !cfg.ffn_hidden.is_multiple_of(survivors_u64)
        {
            return Err(infeasible(format!(
                "{} heads / {} MLP columns do not divide across {} ranks",
                cfg.heads,
                cfg.ffn_hidden,
                n - 1
            )));
        }
    }

    let (a, b) = dead.link.endpoints();
    let evicted = if a.0 >= b.0 { a } else { b };
    let survivors: Vec<GpuId> = (0..n as u16).map(GpuId).filter(|g| *g != evicted).collect();

    // Price the re-shard as real collective traffic over the survivors on
    // the original fabric: an all-gather reassembling the full durable
    // state, then a re-scatter laying it out 1/(N−1). Both are the
    // original full-group lowering re-lowered onto the surviving ranks.
    let sku = exp.sku.sku();
    let machine = exp.machine();
    let topo = &machine.config().topology;
    let full_group: Vec<GpuId> = (0..n as u16).map(GpuId).collect();
    let state_total = state_bytes_per_gpu(exp) * n as f64;
    let state_bytes = state_total.round() as u64;
    let mut reshard_s = 0.0;
    for coll in [
        Collective::all_gather(state_bytes, full_group.clone()),
        Collective::reduce_scatter(state_bytes, full_group.clone()),
    ] {
        let full_op = try_lower(&coll, Algorithm::Ring, &sku, topo, exp.precision)
            .map_err(|e| infeasible(e.to_string()))?;
        let shrunk_op = relower_surviving(&full_op, &survivors, &sku, topo, exp.precision)
            .map_err(|e| infeasible(e.to_string()))?;
        reshard_s += shrunk_op.isolated_duration_s();
    }
    let rebuild_s = run.timeline.watchdog.rebuild_s(survivors.len());
    let ttr = reshard_s + rebuild_s;

    // Simulate the shrunken world for the remaining samples. Ranks are
    // renumbered 0..N−1 in the shrunken experiment; the survivors keep
    // their shards, just relabeled.
    let mut shrunk = exp.clone();
    shrunk.n_gpus = survivors.len();
    let activation = shrunk.validate().map_err(|e| infeasible(e.to_string()))?;
    let shrunk_machine = shrunk.machine();
    let workload = shrunk
        .timeline(ExecutionMode::Overlapped, activation)
        .map_err(|e| infeasible(e.to_string()))?;
    let shrunk_run = execute(&workload, &shrunk_machine)
        .map_err(|e| RecoveryError::Experiment(ExperimentError::from(e)))?;

    let ff = run.fault_free.e2e_s;
    let total_samples = exp.samples_per_iteration() as f64;
    let done_frac = (useful / ff).clamp(0.0, 1.0);
    let remaining_samples = total_samples * (1.0 - done_frac);
    let shrunk_tput = shrunk.samples_per_iteration() as f64 / shrunk_run.e2e_s;
    let phase2_s = remaining_samples / shrunk_tput;
    let wall = at_s + ttr + phase2_s;

    let energy = run.faulty.energy_j()
        + idle_w * survivors.len() as f64 * ttr
        + shrunk_run.energy_j() * (phase2_s / shrunk_run.e2e_s);
    let trace = run.faulty.trace.truncated(SimTime::from_secs(*at_s)).then(
        SimTime::from_secs(ttr),
        idle_w,
        &shrunk_run.trace,
    );
    let reshard = ReshardSummary {
        evicted,
        from_ranks: n as u32,
        to_ranks: survivors.len() as u32,
        bytes_before: state_total,
        bytes_after: state_bytes_per_gpu(&shrunk) * survivors.len() as f64,
        reshard_s,
        rebuild_s,
    };
    let metrics = RecoveryMetrics {
        completed: true,
        fault_free_e2e_s: ff,
        wall_s: wall,
        committed_samples: total_samples,
        goodput_samples_per_s: goodput_samples_per_s(total_samples, wall),
        lost_work_s: 0.0,
        time_to_recover_s: ttr,
        checkpoints_written: 0,
        checkpoint_overhead_s: 0.0,
        recovery_energy_j: energy - run.fault_free.energy_j(),
        final_world_size: survivors.len() as u32,
    };
    Ok(RecoveryReport {
        experiment: exp.clone(),
        spec: *spec,
        policy: RecoveryPolicy::ElasticContinue,
        run,
        metrics,
        checkpoint: None,
        interval_s: None,
        reshard: Some(reshard),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::Strategy;
    use olab_faults::Severity;
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn small_experiment() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    /// A seed whose Severe abort-policy scenario reliably kills the job.
    fn killing_spec() -> FaultScenarioSpec {
        FaultScenarioSpec::abort(3, Severity::Severe)
    }

    #[test]
    fn failfast_abort_commits_nothing() {
        let exp = small_experiment();
        let r = run_with_recovery(&exp, &killing_spec(), RecoveryPolicy::FailFast).unwrap();
        assert!(!r.metrics.completed);
        assert_eq!(r.metrics.goodput_samples_per_s, 0.0);
        assert_eq!(r.metrics.committed_samples, 0.0);
        assert!(r.metrics.lost_work_s > 0.0);
        assert!(r.metrics.recovery_energy_j > 0.0, "wasted energy counted");
        let at = r.run.abort.as_ref().unwrap().at_s;
        assert!((r.trace.makespan().as_secs() - at).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_restart_completes_and_bounds_lost_work() {
        let exp = small_experiment();
        let r = run_with_recovery(
            &exp,
            &killing_spec(),
            RecoveryPolicy::CheckpointRestart { interval_s: None },
        )
        .unwrap();
        assert!(r.metrics.completed);
        let interval = r.interval_s.expect("Young/Daly under a dead link");
        assert!(interval > 0.0);
        assert!(
            r.metrics.lost_work_s <= interval + 1e-9,
            "lost work is bounded by one interval: {} vs {}",
            r.metrics.lost_work_s,
            interval
        );
        assert!(r.metrics.wall_s >= r.metrics.fault_free_e2e_s);
        assert!(r.metrics.goodput_samples_per_s > 0.0);
        assert!(r.metrics.time_to_recover_s > 0.0);
    }

    #[test]
    fn elastic_continue_finishes_smaller_with_goodput_between_failfast_and_fault_free() {
        let exp = small_experiment();
        let spec = killing_spec();
        let r = run_with_recovery(&exp, &spec, RecoveryPolicy::ElasticContinue).unwrap();
        assert!(r.metrics.completed, "elastic must not abort");
        assert_eq!(r.metrics.final_world_size, 3);
        assert_eq!(r.metrics.lost_work_s, 0.0);
        let reshard = r.reshard.expect("a shrink happened");
        assert_eq!(reshard.from_ranks, 4);
        assert_eq!(reshard.to_ranks, 3);
        assert!(
            (reshard.bytes_before - reshard.bytes_after).abs() / reshard.bytes_before < 1e-9,
            "re-sharding conserves state bytes: {} vs {}",
            reshard.bytes_before,
            reshard.bytes_after
        );
        assert!(reshard.reshard_s > 0.0);

        let fault_free_goodput = exp.samples_per_iteration() as f64 / r.metrics.fault_free_e2e_s;
        let failfast = run_with_recovery(&exp, &spec, RecoveryPolicy::FailFast).unwrap();
        assert!(failfast.metrics.goodput_samples_per_s < r.metrics.goodput_samples_per_s);
        assert!(r.metrics.goodput_samples_per_s < fault_free_goodput);
    }

    #[test]
    fn the_transition_trace_loses_a_gpu_mid_run() {
        let exp = small_experiment();
        let r = run_with_recovery(&exp, &killing_spec(), RecoveryPolicy::ElasticContinue).unwrap();
        let at = r.run.abort.as_ref().unwrap().at_s;
        // Phase 1 ran 4 GPUs; the stitched trace still carries all 4 (the
        // evicted rank is parked at idle power), and its makespan covers
        // failure + recovery + the shrunken phase.
        assert_eq!(r.trace.gpus().len(), 4);
        assert!(r.trace.makespan().as_secs() > at + r.metrics.time_to_recover_s);
    }

    #[test]
    fn pipeline_jobs_cannot_shrink() {
        let exp = Experiment::new(
            SkuKind::A100,
            4,
            ModelPreset::Gpt3Xl,
            Strategy::Pipeline { microbatch_size: 2 },
            8,
        )
        .with_seq(256);
        match run_with_recovery(&exp, &killing_spec(), RecoveryPolicy::ElasticContinue) {
            Err(RecoveryError::ShrinkInfeasible { survivors: 3, .. }) => {}
            other => panic!("pipeline shrink must be a typed error, got {other:?}"),
        }
    }

    #[test]
    fn healthy_scenarios_make_all_policies_agree_on_completion() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(7, Severity::Mild);
        for policy in [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::CheckpointRestart { interval_s: None },
            RecoveryPolicy::ElasticContinue,
        ] {
            let r = run_with_recovery(&exp, &spec, policy).unwrap();
            assert!(r.metrics.completed, "{policy}: no abort, no recovery");
            assert_eq!(r.metrics.lost_work_s, 0.0);
            assert_eq!(r.metrics.time_to_recover_s, 0.0);
            // Mild scenarios have no permanent fault: auto-interval
            // checkpointing writes nothing.
            assert_eq!(r.metrics.checkpoints_written, 0);
        }
    }

    #[test]
    fn explicit_intervals_charge_checkpoints_even_when_healthy() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::degrade(7, Severity::Mild);
        let base = run_with_recovery(&exp, &spec, RecoveryPolicy::FailFast).unwrap();
        let interval = base.metrics.wall_s / 4.0;
        let r = run_with_recovery(
            &exp,
            &spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(interval),
            },
        )
        .unwrap();
        assert!(r.metrics.checkpoints_written >= 4);
        assert!(r.metrics.checkpoint_overhead_s > 0.0);
        assert!(r.metrics.wall_s > base.metrics.wall_s);
        assert!(r.metrics.goodput_samples_per_s < base.metrics.goodput_samples_per_s);
    }

    #[test]
    fn reports_are_bit_identical_for_the_same_inputs() {
        let exp = small_experiment();
        let spec = killing_spec();
        for policy in [
            RecoveryPolicy::CheckpointRestart { interval_s: None },
            RecoveryPolicy::ElasticContinue,
        ] {
            let a = run_with_recovery(&exp, &spec, policy).unwrap();
            let b = run_with_recovery(&exp, &spec, policy).unwrap();
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.reshard, b.reshard);
            assert_eq!(a.interval_s, b.interval_s);
        }
    }
}
