//! The resilience sweep cell: one `(experiment, scenario, policy)` triple
//! as a cacheable [`GridJob`].
//!
//! The cache descriptor is the experiment's canonical cell descriptor
//! joined with the scenario descriptor *and* the recovery-policy
//! descriptor — so the same faulted cell under two policies (or two
//! checkpoint intervals) can never share a cache entry, while the same
//! policy + seed always hits.

use crate::policy::RecoveryPolicy;
use crate::recover::{run_with_recovery, RecoveryError, RecoveryMetrics};
use olab_core::sweep::cell_descriptor;
use olab_core::Experiment;
use olab_faults::FaultScenarioSpec;
use olab_grid::{CacheValue, GridJob, Reader, Writer};

/// One cell of a resilience sweep.
#[derive(Debug, Clone)]
pub struct ResilienceCell {
    /// The experiment to run.
    pub experiment: Experiment,
    /// The fault scenario to inject.
    pub spec: FaultScenarioSpec,
    /// The recovery policy in force.
    pub policy: RecoveryPolicy,
}

impl ResilienceCell {
    /// Triples an experiment with a scenario and a policy.
    pub fn new(experiment: Experiment, spec: FaultScenarioSpec, policy: RecoveryPolicy) -> Self {
        ResilienceCell {
            experiment,
            spec,
            policy,
        }
    }
}

/// The cacheable outcome of one resilience cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedRecoveryCell {
    /// The policy produced a scorecard (including fail-fast's zero-goodput
    /// death — that *is* its scorecard).
    Ok(RecoveryMetrics),
    /// The experiment or the recovery itself was infeasible (OOM, pinned
    /// world size, …).
    Infeasible(String),
}

impl CacheValue for CachedRecoveryCell {
    fn encode(&self, w: &mut Writer) {
        match self {
            CachedRecoveryCell::Ok(m) => {
                w.put_u8(0);
                w.put_u8(u8::from(m.completed));
                w.put_f64(m.fault_free_e2e_s);
                w.put_f64(m.wall_s);
                w.put_f64(m.committed_samples);
                w.put_f64(m.goodput_samples_per_s);
                w.put_f64(m.lost_work_s);
                w.put_f64(m.time_to_recover_s);
                w.put_u32(m.checkpoints_written);
                w.put_f64(m.checkpoint_overhead_s);
                w.put_f64(m.recovery_energy_j);
                w.put_u32(m.final_world_size);
            }
            CachedRecoveryCell::Infeasible(msg) => {
                w.put_u8(1);
                w.put_str(msg);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.get_u8()? {
            0 => Some(CachedRecoveryCell::Ok(RecoveryMetrics {
                completed: r.get_u8()? != 0,
                fault_free_e2e_s: r.get_f64()?,
                wall_s: r.get_f64()?,
                committed_samples: r.get_f64()?,
                goodput_samples_per_s: r.get_f64()?,
                lost_work_s: r.get_f64()?,
                time_to_recover_s: r.get_f64()?,
                checkpoints_written: r.get_u32()?,
                checkpoint_overhead_s: r.get_f64()?,
                recovery_energy_j: r.get_f64()?,
                final_world_size: r.get_u32()?,
            })),
            1 => Some(CachedRecoveryCell::Infeasible(r.get_str()?)),
            _ => None,
        }
    }
}

impl GridJob for ResilienceCell {
    type Output = CachedRecoveryCell;

    fn descriptor(&self) -> String {
        format!(
            "{} | {} | {}",
            cell_descriptor(&self.experiment),
            self.spec.descriptor(),
            self.policy.descriptor()
        )
    }

    fn execute(&self) -> CachedRecoveryCell {
        match run_with_recovery(&self.experiment, &self.spec, self.policy) {
            Ok(report) => CachedRecoveryCell::Ok(report.metrics),
            Err(RecoveryError::Experiment(e)) => CachedRecoveryCell::Infeasible(e.to_string()),
            Err(e @ RecoveryError::ShrinkInfeasible { .. }) => {
                CachedRecoveryCell::Infeasible(e.to_string())
            }
        }
    }
}

/// The three-policy comparison grid behind the CLI `resilience` table and
/// the CI smoke step: `base` × every seed × fail-fast, auto-interval
/// checkpointing, and elastic continuation.
pub fn policy_grid(
    base: &Experiment,
    spec_of: impl Fn(u64) -> FaultScenarioSpec,
    seeds: &[u64],
) -> Vec<ResilienceCell> {
    let policies = [
        RecoveryPolicy::FailFast,
        RecoveryPolicy::CheckpointRestart { interval_s: None },
        RecoveryPolicy::ElasticContinue,
    ];
    let mut cells = Vec::with_capacity(seeds.len() * policies.len());
    for &seed in seeds {
        for policy in policies {
            cells.push(ResilienceCell::new(base.clone(), spec_of(seed), policy));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_core::Strategy;
    use olab_faults::Severity;
    use olab_gpu::SkuKind;
    use olab_grid::Executor;
    use olab_models::ModelPreset;

    fn small_experiment() -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, Strategy::Fsdp, 8).with_seq(256)
    }

    fn sample_metrics() -> RecoveryMetrics {
        RecoveryMetrics {
            completed: true,
            fault_free_e2e_s: 1.5,
            wall_s: 2.25,
            committed_samples: 32.0,
            goodput_samples_per_s: 32.0 / 2.25,
            lost_work_s: 0.125,
            time_to_recover_s: 0.5,
            checkpoints_written: 3,
            checkpoint_overhead_s: 0.03,
            recovery_energy_j: 421.0,
            final_world_size: 4,
        }
    }

    #[test]
    fn cached_cells_roundtrip_through_the_codec() {
        for value in [
            CachedRecoveryCell::Ok(sample_metrics()),
            CachedRecoveryCell::Infeasible("cannot shrink to 3 ranks: pinned".into()),
        ] {
            let mut w = Writer::new();
            value.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(CachedRecoveryCell::decode(&mut r).expect("decodes"), value);
        }
    }

    #[test]
    fn policy_is_part_of_the_cache_key() {
        let exp = small_experiment();
        let spec = FaultScenarioSpec::abort(3, Severity::Severe);
        let fault_only = format!("{} | {}", cell_descriptor(&exp), spec.descriptor());
        let cells = policy_grid(
            &exp,
            |s| FaultScenarioSpec::abort(s, Severity::Severe),
            &[3],
        );
        let descs: Vec<String> = cells.iter().map(|c| c.descriptor()).collect();
        for (i, d) in descs.iter().enumerate() {
            assert_ne!(d, &fault_only, "policy must extend the faults key");
            assert!(d.contains("recovery schema="));
            for (j, other) in descs.iter().enumerate() {
                if i != j {
                    assert_ne!(d, other, "each policy gets its own key");
                }
            }
        }
        // Same policy + seed → same key (a cache hit), different interval
        // → a miss.
        let a = ResilienceCell::new(
            exp.clone(),
            spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(0.5),
            },
        );
        let b = ResilienceCell::new(
            exp.clone(),
            spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(0.5),
            },
        );
        let c = ResilienceCell::new(
            exp,
            spec,
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(0.25),
            },
        );
        assert_eq!(a.descriptor(), b.descriptor());
        assert_ne!(a.descriptor(), c.descriptor());
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_bit_for_bit() {
        let cells = policy_grid(
            &small_experiment(),
            |s| FaultScenarioSpec::abort(s, Severity::Severe),
            &[3, 11],
        );
        let serial: Vec<_> = Executor::new()
            .with_jobs(1)
            .run(&cells)
            .outputs
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        let parallel: Vec<_> = Executor::new()
            .with_jobs(4)
            .run(&cells)
            .outputs
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        assert_eq!(serial, parallel);
        assert!(serial
            .iter()
            .all(|c| matches!(c, CachedRecoveryCell::Ok(_))));
    }
}
