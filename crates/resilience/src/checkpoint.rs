//! The checkpoint cost model and the Young/Daly interval.
//!
//! A checkpoint drains every rank's resident model + optimizer state to
//! host storage over the PCIe host link (the slower of the host link and
//! HBM — in practice always the host link). Writes are synchronous and
//! collective: training pauses for the duration, every GPU pays a modest
//! copy-engine power draw, and the wall-clock cost is charged against the
//! job. The optimal interval between checkpoints follows Young/Daly:
//! `τ* = sqrt(2 · δ · MTBF)` for write cost `δ`.

use olab_core::{Experiment, Strategy};
use olab_faults::FaultTimeline;
use olab_models::memory::{footprint, ActivationPolicy, Sharding};

/// Fraction of the dynamic power range (TDP − idle) a GPU draws while its
/// copy engines drain state to the host: compute is quiesced, only DMA and
/// HBM reads are active.
pub const CHECKPOINT_POWER_FRACTION: f64 = 0.2;

/// Fixed per-checkpoint quiesce + barrier cost, seconds: every rank must
/// reach the same step before state is consistent enough to snapshot.
pub const CHECKPOINT_BARRIER_S: f64 = 0.01;

/// Fraction of the fault-free makespan a restarted job spends warming up
/// (JIT caches, allocator pools, NCCL communicator bring-up ramps).
pub const RESTART_WARMUP_FRACTION: f64 = 0.05;

/// Per-rank checkpoint sizing and timing for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointModel {
    /// Model weights + optimizer state resident on one rank, bytes. The
    /// sum across ranks is the durable job state.
    pub bytes_per_gpu: f64,
    /// Wall-clock to write one checkpoint (all ranks in parallel), seconds.
    pub write_s: f64,
    /// Wall-clock to restore one checkpoint on restart, seconds.
    pub read_s: f64,
    /// Per-GPU power while a checkpoint drains, watts.
    pub write_power_w: f64,
}

/// The sharding layout an experiment's state lives in, mirroring the
/// mapping `Experiment::validate` applies. Weights and optimizer bytes do
/// not depend on in-flight microbatch count, so `in_flight = 1` is exact.
pub(crate) fn state_sharding(exp: &Experiment) -> Sharding {
    match exp.strategy {
        Strategy::Fsdp => Sharding::FsdpZero3 { ranks: exp.n_gpus },
        Strategy::TensorParallel => Sharding::TensorParallel { ranks: exp.n_gpus },
        Strategy::Pipeline { .. } => Sharding::Pipeline {
            stages: exp.n_gpus,
            in_flight: 1,
        },
    }
}

/// Per-rank durable state (weights + optimizer) under `exp`'s layout,
/// bytes.
pub fn state_bytes_per_gpu(exp: &Experiment) -> f64 {
    let est = footprint(
        &exp.model.config(),
        exp.batch,
        exp.seq,
        exp.precision,
        state_sharding(exp),
        ActivationPolicy::Full,
    );
    est.weights + est.optimizer
}

impl CheckpointModel {
    /// Sizes the checkpoint for one experiment from its memory footprint
    /// and the SKU's host-link bandwidth.
    pub fn for_experiment(exp: &Experiment) -> Self {
        let sku = exp.sku.sku();
        let bytes = state_bytes_per_gpu(exp);
        let lane_bytes_per_s = sku.host_link_gbs().min(sku.mem_bw_gbs) * 1e9;
        let write_s = bytes / lane_bytes_per_s + CHECKPOINT_BARRIER_S;
        CheckpointModel {
            bytes_per_gpu: bytes,
            write_s,
            read_s: write_s,
            write_power_w: sku.idle_w + CHECKPOINT_POWER_FRACTION * (sku.tdp_w - sku.idle_w),
        }
    }

    /// The Young/Daly optimum `sqrt(2 · δ · MTBF)`, or `None` when the
    /// MTBF is infinite (no fault pressure → never checkpoint).
    pub fn young_daly_interval_s(&self, mtbf_s: f64) -> Option<f64> {
        if mtbf_s.is_finite() && mtbf_s > 0.0 {
            Some((2.0 * self.write_s * mtbf_s).sqrt())
        } else {
            None
        }
    }
}

/// Mean time between *unrecoverable* failures implied by a fault timeline:
/// the generator plants at most one permanent link outage per horizon, so
/// the MTBF is the horizon when one exists and infinite otherwise.
/// Transient faults (throttles, flaps, ECC retries) never kill the job and
/// therefore don't count.
pub fn mtbf_s(timeline: &FaultTimeline) -> f64 {
    if timeline.permanent_link_outage().is_some() {
        timeline.horizon_s
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olab_faults::{FaultScenarioSpec, Severity};
    use olab_gpu::SkuKind;
    use olab_models::ModelPreset;

    fn exp(strategy: Strategy) -> Experiment {
        Experiment::new(SkuKind::H100, 4, ModelPreset::Gpt3Xl, strategy, 8).with_seq(256)
    }

    #[test]
    fn sharded_layouts_sum_to_the_unsharded_state() {
        // FSDP and TP shard weights/optimizer 1/ranks: per-rank bytes times
        // ranks must equal the replicated total.
        let full = {
            let e = exp(Strategy::Fsdp);
            let est = footprint(
                &e.model.config(),
                e.batch,
                e.seq,
                e.precision,
                Sharding::Replicated,
                ActivationPolicy::Full,
            );
            est.weights + est.optimizer
        };
        for strategy in [Strategy::Fsdp, Strategy::TensorParallel] {
            let e = exp(strategy);
            let total = state_bytes_per_gpu(&e) * e.n_gpus as f64;
            assert!(
                (total - full).abs() < 1.0,
                "{strategy:?}: {total} vs {full}"
            );
        }
    }

    #[test]
    fn checkpoints_take_milliseconds_to_seconds() {
        let m = CheckpointModel::for_experiment(&exp(Strategy::Fsdp));
        assert!(m.bytes_per_gpu > 1e6, "GPT-3 XL state is MBs per rank");
        assert!(m.write_s > CHECKPOINT_BARRIER_S);
        assert!(m.write_s < 60.0);
        assert_eq!(m.write_s, m.read_s);
        let sku = SkuKind::H100.sku();
        assert!(m.write_power_w > sku.idle_w && m.write_power_w < sku.tdp_w);
    }

    #[test]
    fn young_daly_grows_with_the_root_of_mtbf() {
        let m = CheckpointModel::for_experiment(&exp(Strategy::Fsdp));
        let t1 = m.young_daly_interval_s(100.0).unwrap();
        let t4 = m.young_daly_interval_s(400.0).unwrap();
        assert!((t4 / t1 - 2.0).abs() < 1e-9, "sqrt scaling");
        assert_eq!(m.young_daly_interval_s(f64::INFINITY), None);
        assert_eq!(m.young_daly_interval_s(0.0), None);
    }

    #[test]
    fn mtbf_is_the_horizon_only_under_permanent_faults() {
        let severe =
            FaultTimeline::generate(&FaultScenarioSpec::degrade(3, Severity::Severe), 4, 100.0);
        assert_eq!(mtbf_s(&severe), severe.horizon_s);
        let mild =
            FaultTimeline::generate(&FaultScenarioSpec::degrade(3, Severity::Mild), 4, 100.0);
        assert_eq!(mtbf_s(&mild), f64::INFINITY);
    }
}
