//! # olab-resilience — recovery policies over the fault layer
//!
//! The fault layer (`olab-faults`) decides *what breaks*; this crate
//! decides *what the job does about it*. Three policies, all pure
//! functions of `(experiment, scenario, policy)`:
//!
//! * [`RecoveryPolicy::FailFast`] — the first unrecoverable fault kills
//!   the job; all work is lost and goodput is zero (NCCL's default).
//! * [`RecoveryPolicy::CheckpointRestart`] — periodic checkpoints drain
//!   model + optimizer state to host over the PCIe link; on failure the
//!   job restarts from the last checkpoint, paying restore + re-init +
//!   warmup and re-executing the lost slice. The auto interval is the
//!   Young/Daly optimum `sqrt(2 · δ · MTBF)`.
//! * [`RecoveryPolicy::ElasticContinue`] — the dead rank is evicted, its
//!   state re-sharded onto the survivors via real collective traffic
//!   (priced through `olab-ccl`), every collective re-lowered onto the
//!   shrunken world, and the job finishes at world size N−1.
//!
//! The headline metric is **goodput** — committed samples per wall-clock
//! second — which cleanly separates the policies: a killed fail-fast job
//! has goodput zero no matter how fast it was running, checkpointing
//! trades steady-state overhead for bounded lost work, and elastic trades
//! nothing lost for a permanently slower tail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod checkpoint;
mod policy;
mod recover;

pub use cell::{policy_grid, CachedRecoveryCell, ResilienceCell};
pub use checkpoint::{
    mtbf_s, state_bytes_per_gpu, CheckpointModel, CHECKPOINT_BARRIER_S, CHECKPOINT_POWER_FRACTION,
    RESTART_WARMUP_FRACTION,
};
pub use policy::{RecoveryPolicy, RECOVERY_SCHEMA_VERSION};
pub use recover::{
    run_with_recovery, RecoveryError, RecoveryMetrics, RecoveryReport, ReshardSummary,
};
