//! Recovery policies and their cache-key descriptors.

use std::fmt;

/// Version of the recovery model baked into cached results. Bump whenever
/// the policy semantics, checkpoint cost model, or metric derivations
/// change meaning — cached cells keyed on the old version then miss
/// instead of serving stale numbers.
pub const RECOVERY_SCHEMA_VERSION: u32 = 1;

/// What the job does when the fault layer's watchdog gives up.
///
/// All three policies run the *same* faulted simulation underneath (see
/// `olab_faults::run_under_faults`); they differ only in what an abort
/// means and what overhead the job pays while healthy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryPolicy {
    /// NCCL's default: the first unrecoverable fault kills the job and all
    /// work since launch is lost. Goodput of a killed job is zero.
    FailFast,
    /// Periodic checkpoints to host storage while healthy; on failure,
    /// restart the (repaired) job from the last completed checkpoint.
    CheckpointRestart {
        /// Seconds between checkpoint *starts*. `None` derives the
        /// Young/Daly optimum from the cell's fault rate — which means *no*
        /// checkpoints when the scenario has no permanent fault.
        interval_s: Option<f64>,
    },
    /// torch-elastic style shrink-and-continue: on a dead GPU/link, evict
    /// the failed rank, re-shard model/optimizer state onto the surviving
    /// world via real collective traffic, and finish at the smaller world
    /// size. No work is lost, but the survivors run slower.
    ElasticContinue,
}

impl RecoveryPolicy {
    /// Short CLI-facing name (`failfast` / `ckpt` / `elastic`).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::FailFast => "failfast",
            RecoveryPolicy::CheckpointRestart { .. } => "ckpt",
            RecoveryPolicy::ElasticContinue => "elastic",
        }
    }

    /// The policy's contribution to a cache descriptor. Carries the
    /// recovery schema version and every semantic knob, so two runs that
    /// differ only in policy (or checkpoint interval) can never share a
    /// cache entry.
    pub fn descriptor(&self) -> String {
        let detail = match self {
            RecoveryPolicy::FailFast => "failfast".to_string(),
            RecoveryPolicy::CheckpointRestart { interval_s: None } => {
                "ckpt interval=auto".to_string()
            }
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(t),
            } => format!("ckpt interval={t:.6}"),
            RecoveryPolicy::ElasticContinue => "elastic".to_string(),
        };
        format!("recovery schema={RECOVERY_SCHEMA_VERSION} policy={detail}")
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::FailFast => write!(f, "fail-fast"),
            RecoveryPolicy::CheckpointRestart { interval_s: None } => {
                write!(f, "checkpoint-restart (auto interval)")
            }
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(t),
            } => write!(f, "checkpoint-restart (every {t:.1}s)"),
            RecoveryPolicy::ElasticContinue => write!(f, "elastic-continue"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_separate_every_policy_variant() {
        let policies = [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::CheckpointRestart { interval_s: None },
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(1.0),
            },
            RecoveryPolicy::CheckpointRestart {
                interval_s: Some(2.0),
            },
            RecoveryPolicy::ElasticContinue,
        ];
        for (i, a) in policies.iter().enumerate() {
            assert!(a.descriptor().contains("schema=1"));
            for (j, b) in policies.iter().enumerate() {
                if i != j {
                    assert_ne!(a.descriptor(), b.descriptor());
                }
            }
        }
    }

    #[test]
    fn names_are_the_cli_spellings() {
        assert_eq!(RecoveryPolicy::FailFast.name(), "failfast");
        assert_eq!(
            RecoveryPolicy::CheckpointRestart { interval_s: None }.name(),
            "ckpt"
        );
        assert_eq!(RecoveryPolicy::ElasticContinue.name(), "elastic");
    }
}
