//! Exposition: Prometheus text format and a JSON snapshot.
//!
//! Both renderings walk the registry in name order, **deterministic
//! (cross-run) families first**, then wall-clock families, each section
//! introduced by a marker line. That layout is the machine-checkable half
//! of the determinism contract: CI extracts everything up to the wall
//! marker from a `--jobs 1` and a `--jobs 8` exposition and compares the
//! bytes.

use crate::hist::{bucket_index, bucket_lower, HistogramSnapshot, N_BUCKETS};
use crate::registry::{with_entries, Determinism, Entry, Metric};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// The marker line separating the two sections in both formats.
const PROM_WALL_MARKER: &str = "# ==== wall-clock (schedule-dependent) ====";

/// Registry entries paired with their registered names, in name order.
type Families = Vec<(&'static str, Entry)>;

fn partitioned() -> (Families, Families) {
    with_entries(|reg| {
        let mut cross = Vec::new();
        let mut wall = Vec::new();
        for (&name, &entry) in reg {
            match entry.determinism {
                Determinism::CrossRun => cross.push((name, entry)),
                Determinism::Wall => wall.push((name, entry)),
            }
        }
        (cross, wall)
    })
}

fn prom_family(out: &mut String, name: &str, entry: &Entry) {
    let kind = match entry.metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    };
    let _ = writeln!(out, "# HELP {name} {}", entry.help);
    let _ = writeln!(out, "# TYPE {name} {kind}");
    match entry.metric {
        Metric::Counter(c) => {
            let _ = writeln!(out, "{name} {}", c.get());
        }
        Metric::Gauge(g) => {
            let _ = writeln!(out, "{name} {}", g.get());
        }
        Metric::Histogram(h) => {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "# quantiles: p50={} p90={} p99={} max={}",
                s.p50(),
                s.p90(),
                s.p99(),
                s.max
            );
            let mut cumulative = 0u64;
            for &(lower, n) in &s.buckets {
                cumulative += n;
                let i = bucket_index(lower);
                if i + 1 < N_BUCKETS {
                    // `le` is the bucket's inclusive upper bound — values
                    // are integers, so "≤ next lower − 1" is exact.
                    let le = bucket_lower(i + 1) - 1;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
            let _ = writeln!(out, "{name}_sum {}", s.sum);
            let _ = writeln!(out, "{name}_count {}", s.count);
        }
    }
}

/// Renders the whole registry in Prometheus text exposition format.
pub fn render_prom() -> String {
    let (cross, wall) = partitioned();
    let mut out = String::new();
    out.push_str("# olab engine self-telemetry (Prometheus text exposition)\n");
    out.push_str("# ==== deterministic (cross-run) ====\n");
    for (name, entry) in &cross {
        prom_family(&mut out, name, entry);
    }
    out.push_str(PROM_WALL_MARKER);
    out.push('\n');
    for (name, entry) in &wall {
        prom_family(&mut out, name, entry);
    }
    out
}

/// Renders only the deterministic (cross-run) families — no wall section
/// and no wall marker, so two whole files from schedules of the same
/// sweep can be compared byte-for-byte (`cmp`) without any extraction.
pub fn render_prom_deterministic() -> String {
    let (cross, _) = partitioned();
    let mut out = String::new();
    out.push_str("# olab engine self-telemetry (deterministic families only)\n");
    for (name, entry) in &cross {
        prom_family(&mut out, name, entry);
    }
    out
}

/// The JSON counterpart of [`render_prom_deterministic`]: the snapshot
/// with the `wall` object omitted entirely.
pub fn render_json_deterministic() -> String {
    let (cross, _) = partitioned();
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"deterministic\": {");
    json_section(&mut out, &cross);
    out.push_str("}\n}\n");
    out
}

fn json_hist(out: &mut String, s: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
        s.count,
        s.sum,
        s.max,
        s.p50(),
        s.p90(),
        s.p99()
    );
    for (i, &(lower, n)) in s.buckets.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}[{lower}, {n}]");
    }
    out.push_str("]}");
}

fn json_section(out: &mut String, entries: &[(&'static str, Entry)]) {
    for (i, (name, entry)) in entries.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{name}\": ");
        match entry.metric {
            Metric::Counter(c) => {
                let _ = write!(out, "{}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, "{}", g.get());
            }
            Metric::Histogram(h) => json_hist(out, &h.snapshot()),
        }
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

/// Renders the whole registry as a JSON snapshot: metric names are keys,
/// split into a `deterministic` and a `wall` object (see module docs).
/// Histograms appear as `{count, sum, max, p50, p90, p99, buckets}` with
/// buckets as `[lower_bound, count]` pairs — bucketed, never per-sample.
pub fn render_json() -> String {
    let (cross, wall) = partitioned();
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"deterministic\": {");
    json_section(&mut out, &cross);
    out.push_str("},\n  \"wall\": {");
    json_section(&mut out, &wall);
    out.push_str("}\n}\n");
    out
}

/// Writes both expositions — `metrics.prom` and `metrics.json` — into
/// `dir`, creating it if needed. This is what the CLI's `--metrics <dir>`
/// flag calls at the end of a run.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_files(dir: &Path) -> io::Result<()> {
    write_files_mode(dir, false)
}

/// Like [`write_files`], but the files carry **only the deterministic
/// section** (no wall-clock families, no marker line). CI scripts can
/// `cmp` the whole files from a `--jobs 1` and a `--jobs 8` run directly
/// instead of sed-extracting the prefix above the wall marker.
///
/// # Errors
///
/// As [`write_files`].
pub fn write_files_deterministic(dir: &Path) -> io::Result<()> {
    write_files_mode(dir, true)
}

fn write_files_mode(dir: &Path, deterministic_only: bool) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let (prom, json) = if deterministic_only {
        (render_prom_deterministic(), render_json_deterministic())
    } else {
        (render_prom(), render_json())
    };
    std::fs::write(dir.join("metrics.prom"), prom)?;
    std::fs::write(dir.join("metrics.json"), json)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, gauge, histogram, reset, set_enabled};

    #[test]
    fn both_formats_partition_by_determinism_class() {
        let _guard = crate::testlock::lock();
        let c = counter(
            "olab_test_expose_total",
            Determinism::CrossRun,
            "a cross-run counter",
        );
        let g = gauge("olab_test_expose_gauge", Determinism::Wall, "a wall gauge");
        let h = histogram("olab_test_expose_ns", "a wall histogram");
        set_enabled(true);
        c.add(3);
        g.set(-2);
        h.observe(5);
        h.observe(100);

        let prom = render_prom();
        let json = render_json();
        set_enabled(false);
        reset();

        let wall_at = prom.find(PROM_WALL_MARKER).expect("wall marker present");
        let (det, wall) = prom.split_at(wall_at);
        assert!(det.contains("olab_test_expose_total 3"));
        assert!(det.contains("# TYPE olab_test_expose_total counter"));
        assert!(!det.contains("olab_test_expose_gauge"));
        assert!(wall.contains("olab_test_expose_gauge -2"));
        assert!(wall.contains("# TYPE olab_test_expose_ns histogram"));
        assert!(wall.contains("olab_test_expose_ns_bucket{le=\"+Inf\"} 2"));
        assert!(wall.contains("olab_test_expose_ns_sum 105"));
        assert!(wall.contains("# quantiles: p50=5 p90=96 p99=96 max=100"));

        let det_obj = json
            .split("\"wall\"")
            .next()
            .expect("deterministic block first");
        assert!(det_obj.contains("\"olab_test_expose_total\": 3"));
        assert!(!det_obj.contains("olab_test_expose_gauge"));
        assert!(json.contains("\"olab_test_expose_gauge\": -2"));
        assert!(json.contains("\"count\": 2, \"sum\": 105, \"max\": 100"));
        assert!(json.contains("\"buckets\": [[5, 1], [96, 1]]"));
    }

    #[test]
    fn deterministic_only_renderings_carry_no_wall_families_or_marker() {
        let _guard = crate::testlock::lock();
        let c = counter(
            "olab_test_det_only_total",
            Determinism::CrossRun,
            "cross-run",
        );
        let g = gauge("olab_test_det_only_gauge", Determinism::Wall, "wall");
        set_enabled(true);
        c.add(2);
        g.set(7);

        let prom = render_prom_deterministic();
        let json = render_json_deterministic();
        set_enabled(false);
        reset();

        assert!(prom.contains("olab_test_det_only_total 2"), "{prom}");
        assert!(!prom.contains(PROM_WALL_MARKER), "{prom}");
        assert!(!prom.contains("olab_test_det_only_gauge"), "{prom}");
        assert!(json.contains("\"olab_test_det_only_total\": 2"), "{json}");
        assert!(!json.contains("\"wall\""), "{json}");
        assert!(!json.contains("olab_test_det_only_gauge"), "{json}");
    }

    #[test]
    fn write_files_deterministic_drops_cmp_ready_files() {
        let _guard = crate::testlock::lock();
        let dir = std::env::temp_dir().join(format!("olab-metrics-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_files_deterministic(&dir).expect("write succeeds");
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert_eq!(prom, render_prom_deterministic());
        assert_eq!(json, render_json_deterministic());
        assert!(!prom.contains("wall-clock"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cumulative_buckets_end_at_the_total_count() {
        let _guard = crate::testlock::lock();
        let h = histogram("olab_test_cumulative_ns", "cumulative check");
        set_enabled(true);
        for v in [1u64, 2, 2, 9, 40, 1 << 50] {
            h.observe(v);
        }
        let prom = render_prom();
        set_enabled(false);
        reset();
        // The +Inf bucket always equals _count, and the saturated sample
        // appears only there (its bucket is the table's last).
        assert!(prom.contains("olab_test_cumulative_ns_bucket{le=\"+Inf\"} 6"));
        assert!(prom.contains("olab_test_cumulative_ns_count 6"));
    }
}
