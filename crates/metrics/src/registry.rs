//! The process-wide metric registry and the scalar metric types.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// The global enable flag. Off by default: an uninstrumented process pays
/// one relaxed load and a branch per record site, nothing more.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// True while recording is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a metric's value is part of the engine's determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Identical between `--jobs 1` and `--jobs N` runs of the same sweep
    /// (route counts, cache hit/miss/eviction totals): exposed in the
    /// byte-comparable `deterministic` block.
    CrossRun,
    /// Schedule- or clock-dependent (latencies, steals, busy/idle time):
    /// exposed in the `wall` block, excluded from determinism comparisons.
    Wall,
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1. A no-op while metrics are disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while metrics are disabled.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value. A no-op while metrics are disabled.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the value by `d`. A no-op while metrics are disabled.
    pub fn add(&self, d: i64) {
        if enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub determinism: Determinism,
    pub help: &'static str,
    pub metric: Metric,
}

static REGISTRY: Mutex<BTreeMap<&'static str, Entry>> = Mutex::new(BTreeMap::new());

pub(crate) fn with_entries<R>(f: impl FnOnce(&BTreeMap<&'static str, Entry>) -> R) -> R {
    f(&REGISTRY.lock().expect("metrics registry poisoned"))
}

/// Validated at registration (a cold path) so exposition never needs to
/// escape: Prometheus metric-name charset, no leading digit.
fn assert_valid_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
}

fn register(name: &'static str, make: impl FnOnce() -> Entry) -> Entry {
    assert_valid_name(name);
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    *reg.entry(name).or_insert_with(make)
}

/// Registers (or finds) the counter `name`. Idempotent: repeated calls with
/// the same name return the same handle; instrument sites should cache the
/// result in a `OnceLock` so the lock is taken once.
///
/// # Panics
///
/// If `name` is not a valid Prometheus metric name, or is already
/// registered as a different metric type.
pub fn counter(
    name: &'static str,
    determinism: Determinism,
    help: &'static str,
) -> &'static Counter {
    let entry = register(name, || Entry {
        determinism,
        help,
        metric: Metric::Counter(Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        }))),
    });
    match entry.metric {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Registers (or finds) the gauge `name`. Semantics as [`counter`].
///
/// # Panics
///
/// As [`counter`].
pub fn gauge(name: &'static str, determinism: Determinism, help: &'static str) -> &'static Gauge {
    let entry = register(name, || Entry {
        determinism,
        help,
        metric: Metric::Gauge(Box::leak(Box::new(Gauge {
            value: AtomicI64::new(0),
        }))),
    });
    match entry.metric {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Registers (or finds) the histogram `name`. Histograms record timings and
/// other schedule-dependent samples, so they are always [`Determinism::Wall`]
/// — the determinism class is fixed rather than a parameter.
///
/// # Panics
///
/// As [`counter`].
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    let entry = register(name, || Entry {
        determinism: Determinism::Wall,
        help,
        metric: Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
    });
    match entry.metric {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Zeroes every registered metric (registrations themselves persist).
///
/// For tests and tooling that compare runs within one process; production
/// expositions snapshot cumulative totals instead.
pub fn reset() {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    for entry in reg.values() {
        match entry.metric {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_counters_gate_on_enabled() {
        let _guard = crate::testlock::lock();
        let a = counter("olab_test_reg_total", Determinism::CrossRun, "test");
        let b = counter("olab_test_reg_total", Determinism::CrossRun, "test");
        assert!(std::ptr::eq(a, b), "same handle for the same name");

        set_enabled(false);
        a.inc();
        assert_eq!(a.get(), 0, "disabled counters do not move");
        set_enabled(true);
        a.inc();
        a.add(4);
        assert_eq!(b.get(), 5);
        set_enabled(false);
        reset();
        assert_eq!(a.get(), 0, "reset rewinds values");
    }

    #[test]
    fn gauges_set_and_add_only_while_enabled() {
        let _guard = crate::testlock::lock();
        let g = gauge("olab_test_gauge", Determinism::Wall, "test");
        set_enabled(false);
        g.set(9);
        assert_eq!(g.get(), 0);
        set_enabled(true);
        g.set(9);
        g.add(-2);
        assert_eq!(g.get(), 7);
        set_enabled(false);
        reset();
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        counter("olab_test_confused", Determinism::Wall, "test");
        gauge("olab_test_confused", Determinism::Wall, "test");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        counter("9starts_with_digit", Determinism::Wall, "test");
    }
}
