//! Log-linear (HDR-style) histograms.
//!
//! Values (typically nanoseconds) are binned into buckets whose width grows
//! with magnitude: each power-of-two octave is split into `8` linear
//! sub-buckets, giving a constant ~12.5% relative resolution across the
//! whole range with a small fixed table — the same layout HdrHistogram uses
//! with 3 significant sub-bucket bits. The top bucket saturates, so any
//! value fits; the exact maximum is tracked separately.

use crate::registry::enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total buckets per histogram. With 8 sub-buckets per octave this covers
/// values up to `8 << 39` (~73 minutes in nanoseconds) before the final
/// bucket saturates.
pub const N_BUCKETS: usize = 320;

/// The bucket index a value lands in (saturating at the top bucket).
///
/// Values below `8` get their own unit-width bucket; above that, a value
/// with highest set bit `e` lands in octave `e - 2`, sub-bucket given by
/// the 3 bits below the leading one.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let idx = ((e - SUB_BITS + 1) as usize) * SUB + ((v >> (e - SUB_BITS)) as usize & (SUB - 1));
    idx.min(N_BUCKETS - 1)
}

/// The smallest value that lands in bucket `i` — the inverse of
/// [`bucket_index`] on bucket boundaries, used as the representative value
/// when estimating quantiles and as the `le` label base in exposition.
pub fn bucket_lower(i: usize) -> u64 {
    let o = i / SUB;
    let r = (i % SUB) as u64;
    if o == 0 {
        r
    } else {
        (SUB as u64 + r) << (o - 1)
    }
}

/// A concurrent log-linear histogram with total count, sum, and exact max.
///
/// All mutation is relaxed atomics: recording from many workers at once is
/// safe and allocation-free. Snapshots are meant to be taken at quiescent
/// points (end of a run); a snapshot raced with writers is merely slightly
/// stale, never corrupt.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. A no-op while metrics are disabled.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the elapsed nanoseconds since `start`, when `start` is
    /// `Some` — the companion to [`crate::now_if_enabled`], so a disabled
    /// run never reads the clock at all.
    pub fn observe_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.observe(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// A consistent-enough copy of the current state (see type docs).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_lower(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`]: totals plus the non-empty
/// buckets as `(lower_bound, count)` pairs in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, which a ns-scale
    /// histogram does not reach in practice).
    pub sum: u64,
    /// Exact largest sample (not bucketed).
    pub max: u64,
    /// Non-empty buckets: `(bucket lower bound, sample count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (`0.0..=1.0`): the lower bound of the
    /// bucket containing the sample of rank `ceil(q * count)`. Zero when
    /// empty. Deterministic given identical bucket contents.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lower;
            }
        }
        self.buckets.last().map_or(0, |&(lower, _)| lower)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_eight() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn bucket_lower_inverts_bucket_index_on_boundaries() {
        for i in 0..N_BUCKETS {
            let lower = bucket_lower(i);
            assert_eq!(bucket_index(lower), i, "bucket {i} lower {lower}");
            if i > 0 {
                assert!(bucket_lower(i) > bucket_lower(i - 1), "monotone at {i}");
            }
        }
    }

    #[test]
    fn edge_values_straddle_bucket_boundaries() {
        // One below each octave boundary stays in the previous bucket; the
        // boundary itself starts a new one.
        for e in 3..40u32 {
            let boundary = 1u64 << e;
            let hi = bucket_index(boundary);
            let lo = bucket_index(boundary - 1);
            if hi < N_BUCKETS - 1 {
                assert_eq!(hi, lo + 1, "boundary 2^{e}");
                assert_eq!(bucket_lower(hi), boundary, "boundary 2^{e}");
            }
        }
        // Within an octave, the 8 sub-buckets are linear and equal-width.
        let w = bucket_lower(17) - bucket_lower(16);
        for i in 16..24 {
            assert_eq!(bucket_lower(i + 1) - bucket_lower(i), w, "sub-bucket {i}");
        }
    }

    #[test]
    fn top_bucket_saturates() {
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_index(bucket_lower(N_BUCKETS - 1)), N_BUCKETS - 1);
        // Far past the table's range, still the top bucket — never a panic.
        assert_eq!(bucket_index(1u64 << 60), N_BUCKETS - 1);
    }

    #[test]
    fn quantiles_and_max_track_recorded_values() {
        let _guard = crate::testlock::lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        crate::set_enabled(false);
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Bucketed quantiles are lower bounds with ~12.5% resolution.
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = s.quantile(q);
            assert!(est <= exact, "q{q}: {est} > {exact}");
            assert!(est as f64 >= exact as f64 * 0.85, "q{q}: {est} « {exact}");
        }
        assert_eq!(s.quantile(0.0), s.buckets[0].0);
        assert_eq!(s.quantile(1.0), s.buckets.last().unwrap().0);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let _guard = crate::testlock::lock();
        crate::set_enabled(false);
        let h = Histogram::new();
        h.observe(42);
        h.observe_since(None);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn saturated_samples_keep_exact_max() {
        let _guard = crate::testlock::lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        let big = 1u64 << 55;
        h.observe(big);
        h.observe(big + 7);
        let s = h.snapshot();
        crate::set_enabled(false);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, big + 7);
        assert_eq!(s.buckets, vec![(bucket_lower(N_BUCKETS - 1), 2)]);
    }
}
