//! # olab-metrics — engine self-telemetry
//!
//! The simulator reproduces the paper's *GPU* telemetry (`olab-obs`); this
//! crate is telemetry for the *engine itself* — the sweep pool, the result
//! cache, the fast-path router — so a long-lived service can expose latency
//! distributions and utilization the way NVML exposes power.
//!
//! ## Design
//!
//! * **Process-wide registry.** Metrics are registered once by name
//!   ([`counter`], [`gauge`], [`histogram`]) and return `&'static` handles;
//!   instrument sites cache the handle in a `OnceLock` so the steady state
//!   is one atomic op per event — no locks, no allocation.
//! * **Zero-cost when disabled.** Recording is gated on one global
//!   `AtomicBool` (default **off**), the runtime analogue of the
//!   `EngineObserver::ENABLED` const pattern: a disabled counter bump is a
//!   relaxed load and a branch, and [`now_if_enabled`] skips even the
//!   `Instant::now` for timing sites. The counting-allocator test in
//!   `olab-sim` pins that neither state allocates on the hot path.
//! * **Determinism partition.** Every metric carries a [`Determinism`]
//!   class. `CrossRun` metrics (route counts, cache hit/miss/eviction
//!   totals) are identical between `--jobs 1` and `--jobs N` by the grid
//!   engine's determinism contract and are exposed first, in a separately
//!   comparable block; `Wall` metrics (latencies, steal counts, busy/idle
//!   time) are schedule- and clock-dependent. Timing fields are only ever
//!   exposed **bucketed** (log-linear histogram buckets plus
//!   p50/p90/p99/max), never per-sample.
//! * **Two expositions.** [`render_prom`] emits Prometheus text format and
//!   [`render_json`] a JSON snapshot; [`write_files`] drops both
//!   (`metrics.prom`, `metrics.json`) into a directory, which is what the
//!   CLI's `--metrics <dir>` flag does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod hist;
mod registry;

pub use expose::{
    render_json, render_json_deterministic, render_prom, render_prom_deterministic, write_files,
    write_files_deterministic,
};
pub use hist::{bucket_index, bucket_lower, Histogram, HistogramSnapshot, N_BUCKETS};
pub use registry::{
    counter, enabled, gauge, histogram, reset, set_enabled, Counter, Determinism, Gauge,
};

use std::time::Instant;

/// `Some(Instant::now())` while metrics are enabled, `None` otherwise.
///
/// The idiom for timing sites: grab the start with this, do the work, then
/// `hist.observe_since(start)` — a disabled run never reads the clock.
pub fn now_if_enabled() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
pub(crate) mod testlock {
    //! The enable flag and registry are process-global; unit tests that
    //! toggle or reset them serialize on this lock.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
