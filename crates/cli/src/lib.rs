//! # olab-cli — command-line interface to overlap-lab
//!
//! ```text
//! olab list                                  # SKUs and models
//! olab run   --sku h100 --model gpt3-2.7b --strategy fsdp --batch 8
//! olab sweep --sku mi250 --model gpt3-13b --strategy fsdp --batches 8,16,32 \
//!            --jobs 8 --cache ~/.cache/olab   # parallel + persistent results
//! olab trace --sku mi250 --model llama2-13b --batch 8 --interval-ms 1
//! olab tune  --sku mi250 --model gpt3-2.7b --batch 8 --objective energy
//! olab observe --cell fig7 --out-dir runs/fig7  # self-describing run artifact
//! olab faults --seeds 1,2 --recovery elastic    # recover instead of dying
//! olab resilience --seed 3 --severity severe    # three-policy comparison
//! olab serve --addr 127.0.0.1:7979 --cache ~/.cache/olab  # sweep-as-a-service
//! ```
//!
//! The argument parser is hand-rolled (the workspace keeps its dependency
//! set minimal) and lives in [`args`]; subcommand implementations are in
//! [`commands`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{
    parse, CliError, Command, FaultsArgs, ObserveArgs, ResilienceArgs, RunArgs, ServeArgs,
    SweepArgs,
};

/// Entry point shared by the binary and the tests.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad arguments or a
/// failed experiment.
pub fn main_with(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::List => Ok(commands::list()),
        Command::Run(run) => commands::run(&run),
        Command::Sweep(run, sweep) => commands::sweep(&run, &sweep),
        Command::Trace(run, interval_ms) => commands::trace(&run, interval_ms),
        Command::Tune(run, objective) => commands::tune(&run, objective),
        Command::Chrome(run) => commands::chrome(&run),
        Command::Faults(run, faults) => commands::faults(&run, &faults),
        Command::Resilience(run, res) => commands::resilience(&run, &res),
        Command::Observe(run, obs) => commands::observe(&run, &obs),
        Command::Serve(serve) => commands::serve(&serve),
        Command::Help => Ok(commands::help()),
    }
}
