//! The `olab` binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match olab_cli::main_with(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `olab help` for usage");
            std::process::exit(2);
        }
    }
}
